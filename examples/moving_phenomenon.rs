//! Continuous monitoring of a moving phenomenon: each sampling round
//! triggers one execution of the task graph (§4.1: "every 'round' of
//! sampling triggers one execution"), and the in-network result tracks a
//! hot blob drifting across the terrain.
//!
//! ```text
//! cargo run --release --example moving_phenomenon
//! ```

use wsn::core::GridCoord;
use wsn::topoquery::{label_regions, render_labeling, run_dandc_vm, Field, Implementation};

/// A blob field whose center moves along the diagonal with `t`.
fn field_at(side: u32, t: f64) -> Field {
    // Synthesize by sampling a Gaussian around the moving center.
    let cx = 2.0 + t;
    let cy = 2.0 + 0.7 * t;
    Field::from_fn(side, move |c: GridCoord| {
        let (x, y) = (f64::from(c.col) + 0.5, f64::from(c.row) + 0.5);
        let d2 = (x - cx).powi(2) + (y - cy).powi(2);
        10.0 * (-d2 / 8.0).exp()
    })
}

fn main() {
    let side = 16u32;
    let threshold = 5.0;
    println!("round | regions | area | largest | latency | energy");
    for round in 0..8 {
        let t = round as f64 * 1.5;
        let field = field_at(side, t);
        let out = run_dandc_vm(side, &field, threshold, 1, Implementation::Native);
        let summary = out.summary.expect("completed");
        let truth = label_regions(&field.threshold(threshold));
        assert_eq!(summary.region_count(), truth.region_count());
        println!(
            "{round:>5} | {:>7} | {:>4} | {:>7} | {:>7} | {:.0}",
            summary.region_count(),
            summary.feature_area(),
            wsn::topoquery::queries::largest_region_area(&summary).unwrap_or(0),
            out.metrics.latency_ticks,
            out.metrics.total_energy,
        );
        if round == 0 || round == 7 {
            println!("{}", render_labeling(&truth, side));
        }
    }
    println!("the labeled region follows the blob across the terrain ✓");
}
