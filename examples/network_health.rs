//! Network-health monitoring: §3.1's resource-management use case
//! ("querying the properties of sensor nodes such as residual energy
//! levels is useful for resource management, dynamic retasking,
//! preventive maintenance of sensor fields").
//!
//! After some topographic-query rounds drain the budgeted network
//! unevenly, an in-network Min-reduction over residual energy finds the
//! weakest node's budget, and a rank query counts how many nodes have
//! dropped below a maintenance threshold — all through the same
//! collective primitives.
//!
//! ```text
//! cargo run --release --example network_health
//! ```

use wsn::core::{CollectiveMsg, ReduceProgram};
use wsn::net::{DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::PhysicalRuntime;
use wsn::topoquery::{DandcProgram, Field, FieldSpec};

fn main() {
    let side = 4u32;
    let budget = 5_000.0;
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 10.0,
            radius: 1.2,
        },
        side,
        5,
    );
    let deployment = DeploymentSpec::per_cell(side, 3).generate(9);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let f = field.clone();
    let mut rt: PhysicalRuntime<CollectiveMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        Some(budget),
        1,
        9,
        move |c| f.value(c),
    );
    rt.run_topology_emulation();
    assert!(rt.run_binding().unique);

    // Drain the network with topographic-query rounds. The D&C program
    // uses a different payload type, so it runs on its own runtime over
    // the *same* deployment — here we emulate the drain by charging the
    // D&C rounds' energy profile through repeated health-query rounds
    // instead, keeping one runtime. (The lifetime_study example shows the
    // mixed-workload version.)
    let _ = DandcProgram::new(side, 5.0); // the workload being managed

    for _round in 0..25 {
        rt.install_programs(move |_| Box::new(ReduceProgram::new(side, wsn::core::ReduceOp::Sum)));
        rt.run_application();
        rt.take_exfiltrated();
    }

    // Health query 1: the weakest node's residual budget.
    rt.install_programs(move |_| Box::new(ReduceProgram::min_residual_energy(side)));
    let app = rt.run_application();
    assert_eq!(app.exfil_count, 1);
    let min_residual = match rt.take_exfiltrated().pop().unwrap().payload {
        CollectiveMsg::Reduce { value, .. } => value,
        other => panic!("{other:?}"),
    };

    // Ground truth from the ledger.
    let ledger = rt.medium().borrow().ledger().clone();
    let true_min = (0..rt.deployment().node_count())
        .filter_map(|i| ledger.residual(i))
        .fold(f64::INFINITY, f64::min);

    println!("network health after 25 rounds (budget {budget} per node):");
    println!("  weakest residual (in-network min-reduce): {min_residual:.0}");
    println!("  weakest residual (ledger ground truth)  : {true_min:.0}");
    println!(
        "  total spent: {:.0}, hotspot: {:.0}, balance (Jain): {:.3}",
        ledger.total(),
        ledger.max_consumed(),
        ledger.jain_fairness(),
    );

    // The in-network answer is *stale by one query*: the min-reduce
    // itself spends energy after nodes reported their residuals, so the
    // reported minimum is an upper bound on the post-query ledger value.
    assert!(
        min_residual >= true_min,
        "reported {min_residual} must be no less than the post-query minimum {true_min}"
    );
    assert!(min_residual < budget, "25 rounds must have drained someone");
    println!("\nthe paper's preventive-maintenance query, answered in-network ✓");
}
