//! The virtual architecture's collective computation primitives (§2:
//! "summing, sorting, or ranking a set of data values"): hierarchical
//! reduce, dissemination, rank query, and in-network odd-even
//! transposition sort.
//!
//! ```text
//! cargo run --release --example collective_primitives
//! ```

use wsn::core::{
    snake_index, CollectiveMsg, CostModel, DisseminateProgram, ReduceOp, ReduceProgram,
    SortProgram, VirtualGrid, Vm,
};

fn main() {
    let side = 8u32;
    let grid = VirtualGrid::new(side);
    let reading = move |c: wsn::core::GridCoord| f64::from((c.col * 13 + c.row * 29) % 50);

    // Sum-reduce up the leader hierarchy.
    let mut vm: Vm<CollectiveMsg> = Vm::new(side, CostModel::uniform(), 1, reading, move |_| {
        Box::new(ReduceProgram::new(side, ReduceOp::Sum))
    });
    vm.run();
    let metrics = vm.metrics();
    if let CollectiveMsg::Reduce { value, count, .. } = vm.take_exfiltrated().pop().unwrap().payload
    {
        println!(
            "sum-reduce      : Σ = {value} over {count} nodes   ({} ticks, {:.0} energy)",
            metrics.latency_ticks, metrics.total_energy
        );
    }

    // Rank query: how many readings lie strictly below 25?
    let mut vm: Vm<CollectiveMsg> = Vm::new(side, CostModel::uniform(), 1, reading, move |_| {
        Box::new(ReduceProgram::rank(side, 25.0))
    });
    vm.run();
    if let CollectiveMsg::Reduce { value, .. } = vm.take_exfiltrated().pop().unwrap().payload {
        println!("rank(25.0)      : {value} readings below the query");
    }

    // Disseminate a retasking parameter from the root to everyone.
    let mut vm: Vm<CollectiveMsg> = Vm::new(
        side,
        CostModel::uniform(),
        1,
        |_| 0.0,
        move |_| Box::new(DisseminateProgram::new(side, 3.25)),
    );
    vm.run();
    let metrics = vm.metrics();
    let reached = vm.take_exfiltrated().len();
    println!(
        "disseminate     : value 3.25 reached {reached}/{} nodes ({} ticks, {:.0} energy)",
        grid.node_count(),
        metrics.latency_ticks,
        metrics.total_energy
    );

    // In-network sort: node i of the snake order ends with the i-th
    // smallest reading.
    let mut vm: Vm<CollectiveMsg> = Vm::new(side, CostModel::uniform(), 1, reading, move |_| {
        Box::new(SortProgram::new(side))
    });
    vm.run();
    let metrics = vm.metrics();
    let mut sorted = vec![0.0f64; grid.node_count()];
    for e in vm.take_exfiltrated() {
        if let CollectiveMsg::Sort { phase, value } = e.payload {
            sorted[phase as usize] = value;
        }
    }
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    println!(
        "odd-even sort   : {} values sorted in-network ({} ticks, {:.0} energy, {} msgs)",
        sorted.len(),
        metrics.latency_ticks,
        metrics.total_energy,
        metrics.messages
    );
    println!(
        "  min {} … median {} … max {}",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1]
    );

    // Sanity: the readings really were scattered over the grid.
    let first_linear = snake_index(grid, wsn::core::GridCoord::new(0, 0));
    assert_eq!(first_linear, 0);
}
