//! System-lifetime study: run rounds of the topographic query on a
//! deployment whose nodes carry finite energy budgets, until the first
//! node dies — the paper's "system lifetime" metric (§2, §3.2).
//!
//! ```text
//! cargo run --release --example lifetime_study
//! ```

use wsn::core::GridCoord;
use wsn::net::{DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::PhysicalRuntime;
use wsn::synth::SummaryMsg;
use wsn::topoquery::{DandcProgram, Field, FieldSpec, RegionSummary};

fn main() {
    let side = 4u32;
    let budget = 2_000.0;
    let deployment = DeploymentSpec::per_cell(side, 3).generate(31);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 10.0,
            radius: 1.0,
        },
        side,
        5,
    );
    let f = field.clone();
    let mut rt: PhysicalRuntime<SummaryMsg<RegionSummary>> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        Some(budget),
        1,
        31,
        move |c| f.value(c),
    );

    let topo = rt.run_topology_emulation();
    let bind = rt.run_binding();
    assert!(topo.complete && bind.unique);
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
    // Capture roles before anyone dies; leader_of skips dead nodes.
    let leaders: Vec<usize> = (0..rt.deployment().node_count())
        .filter(|&i| rt.node(i).ldr)
        .collect();

    println!("per-node budget: {budget} energy units");
    println!("round | exfil | total E spent | hotspot E | first death");
    let mut rounds = 0u32;
    loop {
        // Each sampling round triggers one execution of the task graph
        // (§4.1: "every round of sampling triggers one execution").
        rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
        let app = rt.run_application();
        rounds += 1;
        let ledger_total = rt.medium().borrow().ledger().total();
        let hotspot = rt.medium().borrow().ledger().max_consumed();
        let death = rt.medium().borrow().first_death();
        println!(
            "{rounds:>5} | {:>5} | {ledger_total:>13.0} | {hotspot:>9.0} | {death:?}",
            app.exfil_count,
        );
        if death.is_some() || rounds >= 200 {
            break;
        }
    }
    let dead: Vec<usize> = (0..rt.deployment().node_count())
        .filter(|&i| !rt.medium().borrow().is_alive(i))
        .collect();
    println!("\nsystem lifetime: {rounds} rounds until first death");
    for i in dead {
        let cell = rt.deployment().cell_of_node(i);
        let role = if leaders.contains(&i) {
            "leader"
        } else {
            "relay/follower"
        };
        println!(
            "  node {i} died in cell ({}, {}) — {role}",
            cell.col, cell.row
        );
    }
    // The paper's prediction: traffic concentrates around the root cell.
    let root_cell = GridCoord::new(0, 0);
    let root_members = rt.deployment().nodes_in_cell(root_cell);
    println!("  (root cell hosts nodes {root_members:?})");
}
