//! The full Figure-1 design flow, end to end (experiment EXP-F1):
//!
//! 1. define the virtual architecture (network model + cost model +
//!    middleware + primitives);
//! 2. analyze candidate algorithms against it and pick the winner;
//! 3. specify the chosen algorithm as an annotated task graph;
//! 4. map tasks to virtual nodes under the coverage and
//!    spatial-correlation constraints;
//! 5. synthesize the per-node program and print it (Figure 4);
//! 6. execute on the virtual machine and compare against the estimate.
//!
//! ```text
//! cargo run --release --example design_flow
//! ```

use std::rc::Rc;
use wsn::core::{
    centralized_collection_estimate, quadtree_merge_estimate, CostModel, VirtualArchitecture, Vm,
};
use wsn::synth::{
    first_violation, quadtree_task_graph, render_figure4, synthesize_from_mapping, Mapper,
    MappingCost, QuadrantMapper, SynthesizedNode,
};
use wsn::topoquery::{label_regions, Field, FieldSpec, RegionSemantics};

fn boundary_units(level: u8) -> u64 {
    if level == 0 {
        2
    } else {
        4 * (1u64 << level) - 3
    }
}

fn main() {
    // Side 16: large enough that in-network merging beats centralized
    // collection even under worst-case (full-boundary) summary sizes —
    // the crossover the analysis is for sits between side 8 and 16.
    let side = 16u32;

    println!("=== 1. define the virtual architecture ===");
    let arch = VirtualArchitecture::grid_uniform(side);
    println!("{arch}\n");

    println!("=== 2. analyze candidate algorithms ===");
    let dandc = quadtree_merge_estimate(
        side,
        &arch.cost,
        &boundary_units,
        &|level| 4 * boundary_units(level - 1),
        1,
    );
    let central = centralized_collection_estimate(side, &arch.cost, 1, 1, 1);
    println!(
        "divide & conquer : energy {:>8.0}  latency {:>5} ticks",
        dandc.total_energy, dandc.latency_ticks
    );
    println!(
        "centralized      : energy {:>8.0}  latency {:>5} ticks",
        central.total_energy, central.latency_ticks
    );
    let choose_dandc = dandc.total_energy < central.total_energy;
    println!(
        "=> choosing {} (total-energy objective)\n",
        if choose_dandc {
            "divide & conquer"
        } else {
            "centralized"
        }
    );
    assert!(choose_dandc, "at this scale the paper's choice holds");

    println!("=== 3. specify as an annotated task graph ===");
    let qt = quadtree_task_graph(side, &boundary_units, &|_| 1);
    println!(
        "quad-tree task graph: {} tasks, {} edges, {} levels\n",
        qt.graph.task_count(),
        qt.graph.edges().len(),
        qt.ids_by_level.len()
    );

    println!("=== 4. map under coverage + spatial-correlation constraints ===");
    let mapping = QuadrantMapper.map(&qt);
    first_violation(&qt, &mapping).expect("the paper's mapping is feasible");
    let cost = MappingCost::evaluate(&qt, &mapping, &arch.cost);
    println!(
        "quadrant mapping: total energy {:.0}, hotspot {:.0}, critical path {} ticks\n",
        cost.total_energy, cost.max_node_energy, cost.critical_path_ticks
    );

    println!("=== 5. synthesize the per-node program from the mapping ===");
    let program = synthesize_from_mapping(&qt, &mapping)
        .expect("the quadrant mapping is middleware-realizable");
    println!("{}\n", render_figure4(&program));

    println!("=== 6. execute on the virtual machine ===");
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 10.0,
            radius: 1.5,
        },
        side,
        7,
    );
    let program = Rc::new(program);
    let semantics = Rc::new(RegionSemantics { threshold: 5.0 });
    let f = field.clone();
    let mut vm = Vm::new(
        side,
        CostModel::uniform(),
        1,
        move |c| f.value(c),
        move |_| {
            Box::new(SynthesizedNode::new(
                program.clone(),
                semantics.clone(),
                side,
            ))
        },
    );
    vm.run();
    let metrics = vm.metrics();
    let result = vm.take_exfiltrated().pop().expect("root exfiltrated");
    let summary = result.payload.data.expect_complete().clone();
    let truth = label_regions(&field.threshold(5.0));
    println!(
        "measured: {} regions (truth {}), latency {} ticks (estimate {}), energy {:.0} (estimate {:.0})",
        summary.region_count(),
        truth.region_count(),
        metrics.latency_ticks,
        dandc.latency_ticks,
        metrics.total_energy,
        dandc.total_energy,
    );
    assert_eq!(summary.region_count(), truth.region_count());
    println!("\ndesign-flow round trip complete ✓");
}
