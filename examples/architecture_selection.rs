//! Architecture selection for a non-uniform deployment (§3.2: "for
//! non-uniform deployments, other virtual topologies such as a tree could
//! be more appropriate"): build both virtual architectures over the same
//! clustered deployment, estimate, and measure.
//!
//! ```text
//! cargo run --release --example architecture_selection
//! ```

use wsn::core::{
    quadtree_merge_estimate, spanning_tree_from_positions, tree_convergecast_estimate,
    CollectiveMsg, ConvergecastSum, CostModel, ReduceOp, ReduceProgram, TreeVm, Vm,
};
use wsn::net::{DeploymentSpec, Placement};

fn main() {
    // A clustered (airdropped) deployment: 4 clumps over a 40×40 terrain.
    let side = 4u32;
    let spec = DeploymentSpec {
        terrain_side: 40.0,
        cells_per_side: side,
        placement: Placement::Clustered {
            clusters: 4,
            per_cluster: 16,
            spread: 3.5,
        },
        ensure_coverage: true, // the grid architecture needs every cell manned
    };
    let deployment = spec.generate(21);
    let (min_occ, max_occ) = deployment.cell_occupancy_range();
    println!(
        "clustered deployment: {} nodes, cell occupancy {min_occ}..{max_occ} (non-uniform)",
        deployment.node_count(),
    );

    let cost = CostModel::uniform();

    // Option A: the grid architecture — one virtual node per cell,
    // hierarchical reduce.
    let grid_est = quadtree_merge_estimate(side, &cost, &|_| 1, &|_| 4, 1);
    let mut vm: Vm<CollectiveMsg> = Vm::new(
        side,
        cost,
        1,
        |_| 1.0,
        move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)),
    );
    vm.run();
    let gm = vm.metrics();
    println!("\ngrid {side}x{side} architecture (one virtual node per cell):");
    println!(
        "  estimate: {} ticks, {:.0} energy | measured: {} ticks, {:.0} energy",
        grid_est.latency_ticks, grid_est.total_energy, gm.latency_ticks, gm.total_energy,
    );

    // Option B: the tree architecture — a spanning tree of the *actual*
    // radio graph, so every virtual hop is one physical hop.
    let tree =
        spanning_tree_from_positions(deployment.positions(), 12.0).expect("connected at range 12");
    println!(
        "\ntree architecture (radio spanning tree over all {} nodes): height {}",
        tree.node_count(),
        tree.height(),
    );
    let tree_est = tree_convergecast_estimate(&tree, &cost, 1);
    let t2 = tree.clone();
    let mut tvm = TreeVm::new(
        tree,
        cost,
        1,
        |_| 1.0,
        move |id| Box::new(ConvergecastSum::new(t2.children(id).len())),
    );
    let (latency, energy, _) = tvm.run();
    let (_, _, (sum, count)) = tvm.take_exfiltrated().pop().unwrap();
    println!(
        "  estimate: {} ticks, {:.0} energy | measured: {} ticks, {:.0} energy",
        tree_est.latency_ticks, tree_est.total_energy, latency, energy,
    );
    println!("  aggregate: sum {sum} over {count} physical nodes");

    println!(
        "\ndecision: the tree aggregates every *physical* node's reading in {} ticks;\n\
         the grid aggregates one reading per cell in {} ticks after the runtime\n\
         emulates cells on this irregular deployment. For clustered deployments the\n\
         paper's guidance holds: pick the topology that matches the deployment.",
        latency, gm.latency_ticks,
    );
}
