//! Quickstart: run the in-network topographic query on the virtual
//! architecture and check it against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wsn::core::VirtualArchitecture;
use wsn::topoquery::{label_regions, run_dandc_vm, Field, FieldSpec, Implementation};

fn main() {
    // 1. The virtual architecture for a 16×16-point-of-coverage terrain.
    let arch = VirtualArchitecture::grid_uniform(16);
    println!("{arch}\n");

    // 2. A synthetic phenomenon: three hot blobs over the terrain.
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 3,
            amplitude: 10.0,
            radius: 2.0,
        },
        16,
        42,
    );

    // 3. Run the divide-and-conquer identification-and-labeling algorithm
    //    on the virtual machine.
    let outcome = run_dandc_vm(16, &field, 5.0, 1, Implementation::Native);
    let summary = outcome.summary.expect("root aggregation completed");

    println!("in-network result:");
    println!("  homogeneous feature regions : {}", summary.region_count());
    println!(
        "  total feature area          : {} cells",
        summary.feature_area()
    );
    println!(
        "  latency                     : {} ticks",
        outcome.metrics.latency_ticks
    );
    println!(
        "  total energy                : {:.0} units",
        outcome.metrics.total_energy
    );
    println!(
        "  energy balance (Jain)       : {:.3}",
        outcome.metrics.energy_balance
    );

    // 4. Verify against centralized ground truth.
    let truth = label_regions(&field.threshold(5.0));
    assert_eq!(summary.region_count(), truth.region_count());
    println!("\nground truth agrees: {} regions ✓", truth.region_count());
}
