//! Topographic querying on an emulated physical deployment: 300+ randomly
//! scattered sensor nodes emulate an 8×8 virtual grid, elect leaders, run
//! the synthesized program, and answer queries from the aggregated result.
//!
//! ```text
//! cargo run --release --example topographic_query
//! ```

use wsn::net::{DeploymentSpec, LinkModel, Placement};
use wsn::topoquery::{
    label_regions, queries, render_field, render_labeling, run_dandc_physical, Field, FieldSpec,
    Implementation,
};

fn main() {
    let side = 8u32;

    // An arbitrary (uniform-random) deployment with coverage repair — the
    // paper's "large-scale, homogeneous, dense, arbitrarily deployed".
    let spec = DeploymentSpec {
        terrain_side: f64::from(side) * 10.0,
        cells_per_side: side,
        placement: Placement::UniformRandom { n: 300 },
        ensure_coverage: true,
    };
    let deployment = spec.generate(17);
    println!(
        "deployment: {} nodes over a {:.0}x{:.0} terrain, {} cells, occupancy {:?}",
        deployment.node_count(),
        spec.terrain_side,
        spec.terrain_side,
        deployment.grid().cell_count(),
        deployment.cell_occupancy_range(),
    );

    let field = Field::generate(
        FieldSpec::Blobs {
            count: 3,
            amplitude: 10.0,
            radius: 1.5,
        },
        side,
        23,
    );

    let (outcome, reports) = run_dandc_physical(
        deployment,
        LinkModel::lossy(0.01, 2),
        5.0,
        &field,
        99,
        Implementation::Synthesized,
    );
    println!("\nruntime phases:");
    println!(
        "  topology emulation: {} ticks, {} broadcasts, {} suppressed at boundaries, complete={}",
        reports.topo.elapsed_ticks,
        reports.topo.broadcasts,
        reports.topo.suppressed,
        reports.topo.complete,
    );
    println!(
        "  binding           : {} ticks, unique leaders={}, trees complete={}",
        reports.bind.elapsed_ticks, reports.bind.unique, reports.bind.tree_complete,
    );
    println!(
        "  application       : {} ticks, {} logical msgs over {} physical hops",
        reports.app.elapsed_ticks, reports.app.messages, reports.app.physical_hops,
    );

    println!("\nphenomenon over the terrain (intensity ramp):");
    print!("{}", render_field(&field));
    println!("\nground-truth delineation (region labels):");
    print!(
        "{}",
        render_labeling(&label_regions(&field.threshold(5.0)), side)
    );

    match outcome.summary {
        Some(summary) => {
            println!("\ntopographic queries on the aggregated result:");
            println!(
                "  regions of interest        : {}",
                queries::count_regions(&summary)
            );
            println!(
                "  total feature area         : {} cells",
                queries::total_feature_area(&summary)
            );
            println!(
                "  largest region             : {:?} cells",
                queries::largest_region_area(&summary)
            );
            println!(
                "  regions with area >= 3     : {}",
                queries::count_regions_with_area_at_least(&summary, 3)
            );
            let truth = label_regions(&field.threshold(5.0));
            println!(
                "  ground truth               : {} regions {}",
                truth.region_count(),
                if truth.region_count() == summary.region_count() {
                    "✓"
                } else {
                    "✗ (loss)"
                },
            );
        }
        None => println!("\nthe merge tree stalled under loss — rerun with LinkModel::ideal()"),
    }
    println!(
        "\nenergy: total {:.0}, hotspot {:.0}, Jain balance {:.3}",
        outcome.metrics.total_energy,
        outcome.metrics.max_node_energy,
        outcome.metrics.energy_balance,
    );
}
