//! Churn recovery: kill elected leaders mid-mission and show the runtime
//! re-running topology emulation and binding (§5.1: "the above protocol
//! should execute periodically" because "nodes can leave or fail").
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use wsn::core::GridCoord;
use wsn::net::{DeploymentSpec, LinkModel, RadioModel};
use wsn::runtime::PhysicalRuntime;
use wsn::synth::SummaryMsg;
use wsn::topoquery::{label_regions, DandcProgram, Field, FieldSpec, RegionSummary};

fn main() {
    let side = 4u32;
    let deployment = DeploymentSpec::per_cell(side, 4).generate(77);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let field = Field::generate(
        FieldSpec::Blobs {
            count: 2,
            amplitude: 10.0,
            radius: 1.2,
        },
        side,
        9,
    );
    let truth = label_regions(&field.threshold(5.0)).region_count();
    let f = field.clone();
    let mut rt: PhysicalRuntime<SummaryMsg<RegionSummary>> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        77,
        move |c| f.value(c),
    );

    rt.run_topology_emulation();
    let bind = rt.run_binding();
    println!("initial election: {} unique leaders", bind.leaders.len());
    rt.install_programs(move |_| Box::new(DandcProgram::new(side, 5.0)));
    let app = rt.run_application();
    println!(
        "round 1: {} exfiltration(s), latency {:?} ticks\n",
        app.exfil_count, app.last_exfil_ticks
    );
    let got = rt.take_exfiltrated()[0]
        .payload
        .data
        .expect_complete()
        .region_count();
    assert_eq!(got, truth);

    // Kill three leaders, including the root's.
    for cell in [
        GridCoord::new(0, 0),
        GridCoord::new(2, 1),
        GridCoord::new(3, 3),
    ] {
        let victim = rt.leader_of(cell).expect("leader exists");
        println!(
            "killing node {victim}, leader of cell ({}, {})",
            cell.col, cell.row
        );
        let now = rt.now();
        rt.medium().borrow_mut().kill(victim, now);
    }

    let (topo2, bind2) = rt.refresh_after_churn();
    println!(
        "\nrecovery: topology re-emulated (complete={}), re-election unique={}",
        topo2.complete, bind2.unique
    );
    for cell in [
        GridCoord::new(0, 0),
        GridCoord::new(2, 1),
        GridCoord::new(3, 3),
    ] {
        println!(
            "  cell ({}, {}) new leader: node {:?}",
            cell.col,
            cell.row,
            rt.leader_of(cell)
        );
    }

    let app2 = rt.run_application();
    let got2 = rt.take_exfiltrated()[0]
        .payload
        .data
        .expect_complete()
        .region_count();
    println!(
        "\nround 2 after recovery: {} exfiltration(s), {} regions (truth {}) {}",
        app2.exfil_count,
        got2,
        truth,
        if got2 == truth { "✓" } else { "✗" },
    );
    assert_eq!(got2, truth);
}
