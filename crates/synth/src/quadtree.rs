//! The case study's task graph: a quad-tree over the grid (Figure 2).
//!
//! §4.1: the topographic-querying algorithm "can be represented as a data
//! flow graph structured as a quad-tree. A leaf node corresponds to a task
//! that is linked to the sensing interface, and interior nodes represent
//! in-network processing on the sampled data. At each level of the tree,
//! every node transmits its information to its parent at the next higher
//! level."
//!
//! Leaves are created in the paper's Morton (Z-order) numbering, so task
//! ids 0–15 of the 4×4 instance are exactly the labels of Figure 2, and an
//! interior node's id in the figure equals the id of the first leaf of its
//! subtree.

use crate::taskgraph::{TaskGraph, TaskId, TaskKind};
use wsn_core::{GridCoord, Hierarchy};

/// A quad-tree task graph plus the geometric metadata the mapping stage
/// needs.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// The underlying annotated task graph.
    pub graph: TaskGraph,
    /// Grid side (`√N`, a power of two).
    pub side: u32,
    /// Task ids grouped by level; `ids_by_level[0]` are the leaves in
    /// Morton order.
    pub ids_by_level: Vec<Vec<TaskId>>,
    /// Per task: the north-west corner and side of the square extent its
    /// subtree covers.
    pub extent: Vec<(GridCoord, u32)>,
}

impl QuadTree {
    /// The paper's Figure-2 label of task `t`: the Morton index of the
    /// north-west leaf of its subtree.
    pub fn figure_label(&self, t: TaskId) -> usize {
        let h = Hierarchy::new(self.side);
        h.morton_index(self.extent[t].0)
    }

    /// The grid cell a leaf task samples.
    pub fn leaf_cell(&self, t: TaskId) -> GridCoord {
        assert_eq!(
            self.graph.task(t).kind,
            TaskKind::Sensing,
            "task {t} is not a leaf"
        );
        self.extent[t].0
    }

    /// The root (final aggregation) task.
    pub fn root(&self) -> TaskId {
        *self
            .ids_by_level
            .last()
            .expect("non-empty tree")
            .first()
            .expect("root")
    }
}

/// Builds the quad-tree task graph for a `side × side` grid.
///
/// * `payload_units(level)` annotates the edge from a level-`level` task
///   to its parent (the size of a boundary summary of a `2^level`-sided
///   extent);
/// * `compute_units(level)` annotates each task's processing (level 0 =
///   the threshold comparison at the sensing interface).
pub fn quadtree_task_graph(
    side: u32,
    payload_units: &dyn Fn(u8) -> u64,
    compute_units: &dyn Fn(u8) -> u64,
) -> QuadTree {
    let hierarchy = Hierarchy::new(side); // validates power of two
    let p = hierarchy.max_level();
    let mut graph = TaskGraph::new();
    let mut ids_by_level: Vec<Vec<TaskId>> = Vec::with_capacity(p as usize + 1);
    let mut extent: Vec<(GridCoord, u32)> = Vec::new();

    // Leaves in Morton order (the paper's 0..n²−1 labels).
    let n = (side as usize).pow(2);
    let mut leaves = Vec::with_capacity(n);
    for m in 0..n {
        let id = graph.add_task(TaskKind::Sensing, 0, compute_units(0));
        extent.push((hierarchy.from_morton(m), 1));
        leaves.push(id);
    }
    ids_by_level.push(leaves);

    // Interior levels: one processing task per level-l block, children =
    // the four level-(l−1) tasks of its quadrants.
    for level in 1..=p {
        let blocks = hierarchy.leaders_at(level);
        let mut ids = Vec::with_capacity(blocks.len());
        for origin in blocks {
            let id = graph.add_task(TaskKind::Processing, level, compute_units(level));
            extent.push((origin, hierarchy.block_size(level)));
            for child_origin in hierarchy.children(origin, level) {
                let child = *ids_by_level[level as usize - 1]
                    .iter()
                    .find(|&&c| extent[c].0 == child_origin)
                    .expect("child block exists");
                graph.add_edge(child, id, payload_units(level - 1));
            }
            ids.push(id);
        }
        ids_by_level.push(ids);
    }

    QuadTree {
        graph,
        side,
        ids_by_level,
        extent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qt4() -> QuadTree {
        quadtree_task_graph(4, &|l| u64::from(l) + 1, &|l| u64::from(l))
    }

    #[test]
    fn node_counts_match_quadtree_shape() {
        let qt = qt4();
        assert_eq!(qt.ids_by_level.len(), 3);
        assert_eq!(qt.ids_by_level[0].len(), 16);
        assert_eq!(qt.ids_by_level[1].len(), 4);
        assert_eq!(qt.ids_by_level[2].len(), 1);
        assert_eq!(qt.graph.task_count(), 21);
        assert_eq!(qt.graph.edges().len(), 20);
        assert!(qt.graph.is_dag());
    }

    #[test]
    fn figure2_labels() {
        // Figure 2: level-1 nodes labeled 0, 4, 8, 12; root labeled 0.
        let qt = qt4();
        let level1: Vec<usize> = qt.ids_by_level[1]
            .iter()
            .map(|&t| qt.figure_label(t))
            .collect();
        assert_eq!(level1, vec![0, 4, 8, 12]);
        assert_eq!(qt.figure_label(qt.root()), 0);
        // Leaves are labeled by their own Morton index.
        for (m, &t) in qt.ids_by_level[0].iter().enumerate() {
            assert_eq!(qt.figure_label(t), m);
        }
    }

    #[test]
    fn each_interior_task_has_four_children() {
        let qt = qt4();
        for level in 1..qt.ids_by_level.len() {
            for &t in &qt.ids_by_level[level] {
                assert_eq!(qt.graph.producers(t).len(), 4, "task {t}");
                assert_eq!(qt.graph.task(t).kind, TaskKind::Processing);
            }
        }
        for &t in &qt.ids_by_level[0] {
            assert!(qt.graph.producers(t).is_empty());
        }
    }

    #[test]
    fn extents_nest() {
        let qt = qt4();
        for level in 1..qt.ids_by_level.len() {
            for &t in &qt.ids_by_level[level] {
                let (origin, side) = qt.extent[t];
                for &c in qt.graph.producers(t) {
                    let (corigin, cside) = qt.extent[c];
                    assert_eq!(cside * 2, side);
                    assert!(corigin.col >= origin.col && corigin.col < origin.col + side);
                    assert!(corigin.row >= origin.row && corigin.row < origin.row + side);
                }
            }
        }
    }

    #[test]
    fn annotations_follow_level() {
        let qt = qt4();
        for e in qt.graph.edges() {
            let child_level = qt.graph.task(e.from).level;
            assert_eq!(e.data_units, u64::from(child_level) + 1);
        }
        for t in qt.graph.tasks() {
            assert_eq!(t.compute_units, u64::from(t.level));
        }
    }

    #[test]
    fn trivial_1x1_tree() {
        let qt = quadtree_task_graph(1, &|_| 1, &|_| 1);
        assert_eq!(qt.graph.task_count(), 1);
        assert_eq!(qt.root(), 0);
        assert_eq!(qt.leaf_cell(0), GridCoord::new(0, 0));
    }

    #[test]
    fn side2_has_single_merge() {
        let qt = quadtree_task_graph(2, &|_| 1, &|_| 1);
        assert_eq!(qt.graph.task_count(), 5);
        assert_eq!(qt.graph.producers(qt.root()).len(), 4);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn leaf_cell_of_interior_panics() {
        let qt = qt4();
        qt.leaf_cell(qt.root());
    }
}
