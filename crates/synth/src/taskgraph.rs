//! Architecture-independent application model: annotated task graphs.
//!
//! §2: "the algorithm is specified using an architecture-independent
//! application model such as an annotated task graph. The application
//! graph is used as an input to a mapping tool…". Tasks carry compute
//! annotations; edges carry the data volume exchanged — together with the
//! cost model this is "sufficient information to decide an efficient
//! mapping of application tasks onto sensor nodes".

use serde::{Deserialize, Serialize};

/// Index of a task within its graph.
pub type TaskId = usize;

/// What a task does (§4.1: "a leaf node corresponds to a task that is
/// linked to the sensing interface, and interior nodes represent
/// in-network processing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Samples the sensing interface.
    Sensing,
    /// In-network processing of children's data.
    Processing,
}

/// One task, annotated for cost analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Id (== index in the graph).
    pub id: TaskId,
    /// Sensing or processing.
    pub kind: TaskKind,
    /// Hierarchy level (0 = leaf) when the graph is leveled; free-form
    /// graphs may leave it 0.
    pub level: u8,
    /// Computation annotation in data units.
    pub compute_units: u64,
}

/// A directed data-flow edge with its data-volume annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer.
    pub from: TaskId,
    /// Consumer.
    pub to: TaskId,
    /// Data units flowing along the edge per round.
    pub data_units: u64,
}

/// Why an edge could not be added to a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeError {
    /// An endpoint names no task in the graph.
    OutOfRange {
        /// The offending endpoint.
        endpoint: TaskId,
        /// Number of tasks in the graph.
        tasks: usize,
    },
    /// `from == to`.
    SelfLoop {
        /// The task looping onto itself.
        task: TaskId,
    },
    /// The graph already has an edge `from → to`.
    Duplicate {
        /// Producer.
        from: TaskId,
        /// Consumer.
        to: TaskId,
    },
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::OutOfRange { endpoint, tasks } => {
                write!(
                    f,
                    "edge endpoint {endpoint} out of range (graph has {tasks} tasks)"
                )
            }
            EdgeError::SelfLoop { task } => write!(f, "self-loop on task {task}"),
            EdgeError::Duplicate { from, to } => write!(f, "duplicate edge {from} -> {to}"),
        }
    }
}

impl std::error::Error for EdgeError {}

/// An annotated, directed, acyclic task graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// children[t] = edges *into* t come from these producers.
    producers: Vec<Vec<TaskId>>,
    /// consumers[t] = tasks fed by t.
    consumers: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, kind: TaskKind, level: u8, compute_units: u64) -> TaskId {
        let id = self.tasks.len();
        self.tasks.push(Task {
            id,
            kind,
            level,
            compute_units,
        });
        self.producers.push(Vec::new());
        self.consumers.push(Vec::new());
        id
    }

    /// Adds a data-flow edge `from → to`, rejecting malformed edges with a
    /// typed error instead of panicking.
    pub fn try_add_edge(
        &mut self,
        from: TaskId,
        to: TaskId,
        data_units: u64,
    ) -> Result<(), EdgeError> {
        let tasks = self.tasks.len();
        for endpoint in [from, to] {
            if endpoint >= tasks {
                return Err(EdgeError::OutOfRange { endpoint, tasks });
            }
        }
        if from == to {
            return Err(EdgeError::SelfLoop { task: from });
        }
        if self.producers[to].contains(&from) {
            return Err(EdgeError::Duplicate { from, to });
        }
        self.edges.push(Edge {
            from,
            to,
            data_units,
        });
        self.producers[to].push(from);
        self.consumers[from].push(to);
        Ok(())
    }

    /// Adds a data-flow edge `from → to`, panicking on malformed edges —
    /// the convenient wrapper for graph builders with edges known valid by
    /// construction.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, data_units: u64) {
        if let Err(e) = self.try_add_edge(from, to, data_units) {
            panic!("{e}");
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// One task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Producers feeding `t` (its children in the aggregation tree).
    pub fn producers(&self, t: TaskId) -> &[TaskId] {
        &self.producers[t]
    }

    /// Consumers fed by `t`.
    pub fn consumers(&self, t: TaskId) -> &[TaskId] {
        &self.consumers[t]
    }

    /// Tasks with no producers.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&t| self.producers[t].is_empty())
            .collect()
    }

    /// Tasks with no consumers.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&t| self.consumers[t].is_empty())
            .collect()
    }

    /// Leaf (sensing) tasks.
    pub fn sensing_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Sensing)
            .map(|t| t.id)
            .collect()
    }

    /// Kahn topological order; `None` when the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = (0..n).map(|t| self.producers[t].len()).collect();
        let mut ready: Vec<TaskId> = (0..n).filter(|&t| indegree[t] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = ready.pop() {
            order.push(t);
            for &c in &self.consumers[t] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        let b = g.add_task(TaskKind::Sensing, 0, 1);
        let c = g.add_task(TaskKind::Processing, 1, 2);
        let d = g.add_task(TaskKind::Processing, 2, 2);
        g.add_edge(a, c, 3);
        g.add_edge(b, c, 3);
        g.add_edge(c, d, 5);
        g
    }

    #[test]
    fn construction_and_accessors() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.producers(2), &[0, 1]);
        assert_eq!(g.consumers(0), &[2]);
        assert_eq!(g.sources(), vec![0, 1]);
        assert_eq!(g.sinks(), vec![3]);
        assert_eq!(g.sensing_tasks(), vec![0, 1]);
        assert_eq!(g.task(2).kind, TaskKind::Processing);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for e in g.edges() {
            assert!(pos(e.from) < pos(e.to), "{e:?}");
        }
        assert!(g.is_dag());
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = diamond();
        g.add_edge(3, 0, 1);
        assert!(!g.is_dag());
        assert_eq!(g.topological_order(), None);
    }

    #[test]
    fn try_add_edge_reports_typed_errors() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        let b = g.add_task(TaskKind::Processing, 1, 1);
        assert_eq!(g.try_add_edge(a, b, 1), Ok(()));
        assert_eq!(
            g.try_add_edge(a, b, 2),
            Err(EdgeError::Duplicate { from: a, to: b })
        );
        assert_eq!(
            g.try_add_edge(b, b, 1),
            Err(EdgeError::SelfLoop { task: b })
        );
        assert_eq!(
            g.try_add_edge(a, 9, 1),
            Err(EdgeError::OutOfRange {
                endpoint: 9,
                tasks: 2
            })
        );
        // Rejected edges leave the graph untouched.
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.producers(b), &[a]);
        // Reverse direction is a distinct edge, not a duplicate.
        assert_eq!(g.try_add_edge(b, a, 1), Ok(()));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        let b = g.add_task(TaskKind::Processing, 1, 1);
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        g.add_edge(a, a, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Sensing, 0, 1);
        g.add_edge(a, 9, 1);
    }
}
