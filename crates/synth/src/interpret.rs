//! Execution of synthesized guarded-command programs.
//!
//! [`SynthesizedNode`] wraps a [`GuardedProgram`] as a
//! [`wsn_core::NodeProgram`], so the synthesizer's output runs unmodified
//! on the virtual machine *and* on the emulated physical network — the
//! synthesized artifact is executable, not just printable.
//!
//! Rule semantics follow §4.3's reactive model: after every event, the
//! state rules are rescanned and any whose condition holds fires, until no
//! rule is enabled (each of Figure 4's rules falsifies its own guard, so
//! the scan terminates; a fuel bound turns accidental livelock into a
//! panic instead of a hang).

use crate::program::{Action, Expr, Guard, GuardedProgram, Rule};
use std::collections::HashMap;
use std::rc::Rc;
use wsn_core::{GridCoord, Hierarchy, NodeApi, NodeProgram};

/// Application-supplied semantics of the opaque summary data.
pub trait SummarySemantics: 'static {
    /// The summary type flowing through `mySubGraph` and messages.
    type Data: Clone + 'static;

    /// The level-0 summary a leaf computes from its reading
    /// ("compute mySubGraph\[0\] from intra-cell readings").
    fn local_summary(&self, coord: GridCoord, reading: f64) -> Self::Data;

    /// Merges `incoming` into the accumulator for one extent.
    fn merge(&self, acc: Option<Self::Data>, incoming: &Self::Data) -> Self::Data;

    /// Size of a summary in cost-model data units (drives send cost).
    fn units(&self, data: &Self::Data) -> u64;

    /// Computation charged for producing a local summary.
    fn local_compute_units(&self) -> u64 {
        1
    }

    /// Computation charged for merging an incoming summary of the given
    /// size.
    fn merge_compute_units(&self, incoming_units: u64) -> u64 {
        incoming_units
    }
}

/// The message alphabet of Figure 4: `mGraph = {senderCoord, msubGraph,
/// mrecLevel}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryMsg<D> {
    /// `senderCoord`.
    pub sender: GridCoord,
    /// `mrecLevel` — the hierarchy level this data merges at.
    pub level: u8,
    /// `msubGraph`.
    pub data: D,
}

/// Fixed wire size of the `SummaryMsg` header: sender cell (two `u32`s),
/// merge level, and padding to an 8-byte boundary for the data section.
pub const SUMMARY_MSG_HEADER_BYTES: usize = 16;

/// A summary message encodes as its 16-byte header followed by the wire
/// form of its data — the first term of the certified
/// `summary_wire_bound_bytes` accounting. The data type supplies the
/// rest, so the bounded-payload property composes: `SummaryMsg<D>` fits
/// the frame whenever `D` does with 16 bytes to spare.
impl<D: wsn_core::framelayout::WirePayload> wsn_core::framelayout::WirePayload for SummaryMsg<D> {
    fn encoded_bytes(&self) -> usize {
        SUMMARY_MSG_HEADER_BYTES + self.data.encoded_bytes()
    }

    fn encode(&self, out: &mut [u8]) -> Result<usize, wsn_core::framelayout::WireError> {
        if out.len() < SUMMARY_MSG_HEADER_BYTES {
            return Err(wsn_core::framelayout::WireError::Overflow {
                needed: self.encoded_bytes(),
                capacity: out.len(),
            });
        }
        out[0..4].copy_from_slice(&self.sender.col.to_le_bytes());
        out[4..8].copy_from_slice(&self.sender.row.to_le_bytes());
        out[8] = self.level;
        out[9..SUMMARY_MSG_HEADER_BYTES].fill(0);
        let data = self.data.encode(&mut out[SUMMARY_MSG_HEADER_BYTES..])?;
        Ok(SUMMARY_MSG_HEADER_BYTES + data)
    }

    fn decode(bytes: &[u8]) -> Result<Self, wsn_core::framelayout::WireError> {
        if bytes.len() < SUMMARY_MSG_HEADER_BYTES {
            return Err(wsn_core::framelayout::WireError::Truncated(
                "summary-message header",
            ));
        }
        Ok(SummaryMsg {
            sender: GridCoord::new(
                u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
                u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            ),
            level: bytes[8],
            data: D::decode(&bytes[SUMMARY_MSG_HEADER_BYTES..])?,
        })
    }
}

/// A node executing a synthesized program under the given semantics.
pub struct SynthesizedNode<S: SummarySemantics> {
    program: Rc<GuardedProgram>,
    semantics: Rc<S>,
    hierarchy: Hierarchy,
    vars: HashMap<String, i64>,
    my_sub_graph: Vec<Option<S::Data>>,
    msgs_received: Vec<i64>,
}

/// The incoming-message binding available while a `Received` rule runs.
struct Incoming<'d, D> {
    sender: GridCoord,
    level: u8,
    data: &'d D,
}

impl<S: SummarySemantics> SynthesizedNode<S> {
    /// Instantiates the program for one node. The same `program` and
    /// `semantics` are shared (`Rc`) across all nodes — SPMD, as in the
    /// paper ("the program that executes on each node of the network").
    pub fn new(program: Rc<GuardedProgram>, semantics: Rc<S>, grid_side: u32) -> Self {
        let hierarchy = Hierarchy::new(grid_side);
        assert_eq!(
            hierarchy.max_level(),
            program.max_level,
            "program synthesized for a different grid depth"
        );
        let levels = program.max_level as usize + 1;
        let mut vars = HashMap::new();
        for decl in &program.state {
            let v = eval_const(&decl.init);
            vars.insert(decl.name.clone(), v);
        }
        SynthesizedNode {
            program,
            semantics,
            hierarchy,
            vars,
            my_sub_graph: vec![None; levels + 1], // +1: recLevel can reach max+1
            msgs_received: vec![0; levels + 1],
        }
    }

    /// Current value of a scalar state variable (tests and diagnostics).
    pub fn var(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied()
    }

    #[allow(clippy::only_used_in_recursion)]
    fn eval(&self, e: &Expr, incoming: Option<&Incoming<'_, S::Data>>) -> i64 {
        match e {
            Expr::Int(v) => *v,
            Expr::Bool(b) => i64::from(*b),
            Expr::Var(name) => *self
                .vars
                .get(name)
                .unwrap_or_else(|| panic!("undeclared variable {name}")),
            Expr::Add(a, b) => self.eval(a, incoming) + self.eval(b, incoming),
            Expr::Sub(a, b) => self.eval(a, incoming) - self.eval(b, incoming),
            Expr::MsgsReceivedAt(idx) => {
                let i = self.eval(idx, incoming);
                self.msgs_received.get(i as usize).copied().unwrap_or(0)
            }
        }
    }

    fn eval_guard(
        &self,
        g: &Guard,
        api: &dyn NodeApi<SummaryMsg<S::Data>>,
        incoming: Option<&Incoming<'_, S::Data>>,
    ) -> bool {
        match g {
            Guard::Eq(a, b) => self.eval(a, incoming) == self.eval(b, incoming),
            Guard::Received => incoming.is_some(),
            Guard::IncomingFromSelf => incoming.map(|m| m.sender == api.coord()).unwrap_or(false),
            Guard::And(a, b) => {
                self.eval_guard(a, api, incoming) && self.eval_guard(b, api, incoming)
            }
        }
    }

    fn exec_actions(
        &mut self,
        actions: &[Action],
        api: &mut dyn NodeApi<SummaryMsg<S::Data>>,
        incoming: Option<&Incoming<'_, S::Data>>,
    ) {
        for action in actions {
            match action {
                Action::Set(name, expr) => {
                    let v = self.eval(expr, incoming);
                    assert!(
                        self.vars.contains_key(name),
                        "assignment to undeclared {name}"
                    );
                    self.vars.insert(name.clone(), v);
                }
                Action::ComputeLocalSummary => {
                    let reading = api.read_sensor();
                    let data = self.semantics.local_summary(api.coord(), reading);
                    api.compute(self.semantics.local_compute_units());
                    self.my_sub_graph[0] = Some(data);
                }
                Action::MergeIncoming => {
                    let m = incoming.expect("MergeIncoming outside a receive rule");
                    let units = self.semantics.units(m.data);
                    api.compute(self.semantics.merge_compute_units(units));
                    let slot = m.level as usize;
                    let acc = self.my_sub_graph[slot].take();
                    self.my_sub_graph[slot] = Some(self.semantics.merge(acc, m.data));
                }
                Action::CountIncoming => {
                    let m = incoming.expect("CountIncoming outside a receive rule");
                    self.msgs_received[m.level as usize] += 1;
                }
                Action::IfElse {
                    cond,
                    then,
                    otherwise,
                } => {
                    if self.eval_guard(cond, api, incoming) {
                        self.exec_actions(then, api, incoming);
                    } else {
                        self.exec_actions(otherwise, api, incoming);
                    }
                }
                Action::SendSummaryToLeader {
                    group_level,
                    data_level,
                } => {
                    let g = self.eval(group_level, incoming);
                    let dl = self.eval(data_level, incoming);
                    let data = self.my_sub_graph[dl as usize]
                        .clone()
                        .expect("sending an absent summary");
                    let units = self.semantics.units(&data);
                    let dest = self.hierarchy.leader(api.coord(), g as u8);
                    api.send(
                        dest,
                        units,
                        SummaryMsg {
                            sender: api.coord(),
                            level: g as u8,
                            data,
                        },
                    );
                }
                Action::ExfiltrateSummary { level } => {
                    let l = self.eval(level, incoming);
                    let data = self.my_sub_graph[l as usize]
                        .clone()
                        .expect("exfiltrating an absent summary");
                    api.exfiltrate(SummaryMsg {
                        sender: api.coord(),
                        level: l as u8,
                        data,
                    });
                }
            }
        }
    }

    fn run_until_stable(&mut self, api: &mut dyn NodeApi<SummaryMsg<S::Data>>) {
        let mut fuel = 16 * (self.program.max_level as u32 + 4);
        'scan: loop {
            let rules: Vec<Rule> = self.program.state_rules().cloned().collect();
            for rule in &rules {
                if self.eval_guard(&rule.guard, api, None) {
                    fuel = fuel.checked_sub(1).unwrap_or_else(|| {
                        panic!("guarded program livelocked (rule {:?})", rule.label)
                    });
                    self.exec_actions(&rule.actions, api, None);
                    continue 'scan;
                }
            }
            return;
        }
    }
}

fn eval_const(e: &Expr) -> i64 {
    match e {
        Expr::Int(v) => *v,
        Expr::Bool(b) => i64::from(*b),
        other => panic!("state initializer must be constant, got {other:?}"),
    }
}

impl<S: SummarySemantics> NodeProgram<SummaryMsg<S::Data>> for SynthesizedNode<S> {
    fn on_init(&mut self, api: &mut dyn NodeApi<SummaryMsg<S::Data>>) {
        // The runtime trigger: Figure 4's `start` flips true.
        assert!(
            self.vars.contains_key("start"),
            "program lacks a start flag"
        );
        self.vars.insert("start".into(), 1);
        self.run_until_stable(api);
    }

    fn on_receive(
        &mut self,
        api: &mut dyn NodeApi<SummaryMsg<S::Data>>,
        from: GridCoord,
        payload: SummaryMsg<S::Data>,
    ) {
        let rules: Vec<Rule> = self.program.receive_rules().cloned().collect();
        {
            let incoming = Incoming {
                sender: from,
                level: payload.level,
                data: &payload.data,
            };
            for rule in &rules {
                self.exec_actions(&rule.actions, api, Some(&incoming));
            }
        }
        self.run_until_stable(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::synthesize_quadtree_program;
    use wsn_core::{CostModel, Vm};

    /// Toy semantics: the "summary" is (sum, count) of readings.
    pub struct SumSemantics;

    impl SummarySemantics for SumSemantics {
        type Data = (i64, u32);
        fn local_summary(&self, _coord: GridCoord, reading: f64) -> (i64, u32) {
            (reading as i64, 1)
        }
        fn merge(&self, acc: Option<(i64, u32)>, incoming: &(i64, u32)) -> (i64, u32) {
            let (s, c) = acc.unwrap_or((0, 0));
            (s + incoming.0, c + incoming.1)
        }
        fn units(&self, _data: &(i64, u32)) -> u64 {
            1
        }
    }

    fn run_sum(side: u32, seed: u64) -> (Vec<(i64, u32)>, wsn_core::RunMetrics) {
        let program = Rc::new(synthesize_quadtree_program(
            Hierarchy::new(side).max_level(),
        ));
        let semantics = Rc::new(SumSemantics);
        let mut vm = Vm::new(
            side,
            CostModel::uniform(),
            seed,
            |c| f64::from(c.col * 10 + c.row),
            move |_| {
                Box::new(SynthesizedNode::new(
                    program.clone(),
                    semantics.clone(),
                    side,
                ))
            },
        );
        vm.run();
        let metrics = vm.metrics();
        let out = vm
            .take_exfiltrated()
            .into_iter()
            .map(|e| e.payload.data)
            .collect();
        (out, metrics)
    }

    #[test]
    fn quadtree_sum_reaches_root_exactly_once() {
        for side in [1u32, 2, 4, 8] {
            let (results, _) = run_sum(side, 3);
            assert_eq!(results.len(), 1, "side {side}: exactly one exfiltration");
            let (sum, count) = results[0];
            let expect: i64 = (0..side)
                .flat_map(|r| (0..side).map(move |c| i64::from(c * 10 + r)))
                .sum();
            assert_eq!(count, side * side, "side {side}: all leaves merged");
            assert_eq!(sum, expect, "side {side}");
        }
    }

    #[test]
    fn message_count_matches_estimator() {
        let side = 8u32;
        let program = Rc::new(synthesize_quadtree_program(3));
        let semantics = Rc::new(SumSemantics);
        let mut vm = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |_| 1.0,
            move |_| {
                Box::new(SynthesizedNode::new(
                    program.clone(),
                    semantics.clone(),
                    side,
                ))
            },
        );
        vm.run();
        // Remote messages only (self-sends are messages too in vm.stats,
        // because the program addresses its own leader explicitly).
        // Estimator counts 3 remote per merge: (16+4+1)·3 = 63. The VM
        // additionally counts each merge's self-message: 21.
        assert_eq!(vm.stats().counter("vm.messages"), 63 + 21);
        let est = wsn_core::quadtree_merge_estimate(side, &CostModel::uniform(), &|_| 1, &|_| 1, 1);
        // Energy matches the closed form exactly: self-messages are free.
        let measured = vm.ledger().total();
        // Compute model differs slightly: the estimator charges
        // merge_compute once per merge; the interpreter charges per
        // incoming message (4 per merge, each of 1 unit) plus 1 per leaf.
        let merges = 16 + 4 + 1;
        let est_energy = est.total_energy - f64::from(merges) + f64::from(4 * merges);
        assert!(
            (measured - est_energy).abs() < 1e-9,
            "measured {measured} vs estimated {est_energy}"
        );
    }

    #[test]
    fn latency_matches_closed_form() {
        let (_, metrics) = run_sum(8, 5);
        let est = wsn_core::quadtree_merge_estimate(8, &CostModel::uniform(), &|_| 1, &|_| 1, 1);
        assert_eq!(metrics.latency_ticks, est.latency_ticks);
    }

    #[test]
    fn interpreter_is_deterministic() {
        assert_eq!(run_sum(8, 7).0, run_sum(8, 7).0);
    }

    #[test]
    fn non_leader_leaf_goes_dormant() {
        let side = 4u32;
        let program = Rc::new(synthesize_quadtree_program(2));
        let semantics = Rc::new(SumSemantics);
        let prog2 = program.clone();
        let mut vm = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |_| 1.0,
            move |_| Box::new(SynthesizedNode::new(prog2.clone(), semantics.clone(), side)),
        );
        vm.run();
        // A plain follower (1,1) ends at recLevel 1, having sent once.
        // (Exposed via downcast through the VM is not possible from here;
        // instead assert the global invariant: one exfiltration, from the
        // origin.)
        let ex = vm.take_exfiltrated();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].from, GridCoord::new(0, 0));
        assert_eq!(ex[0].payload.level, 2);
    }

    #[test]
    #[should_panic(expected = "different grid depth")]
    fn wrong_depth_program_rejected() {
        let program = Rc::new(synthesize_quadtree_program(2));
        let _ = SynthesizedNode::new(program, Rc::new(SumSemantics), 8);
    }
}
