//! The guarded-command intermediate representation of synthesized node
//! programs.
//!
//! Figure 4 of the paper specifies the synthesized program as state
//! declarations, a message alphabet, and four `Condition → Action`
//! clauses. This module is that notation as an AST: the synthesizer
//! (`crate::synthesize`) builds it, the interpreter (`crate::interpret`)
//! executes it inside the simulator, and the code generator
//! (`crate::codegen`) prints it back in the paper's concrete syntax.
//!
//! Integer and boolean state live in a generic environment; the two
//! application-level arrays (`mySubGraph`, holding boundary summaries, and
//! `msgsReceived`) are built in, because their element type is opaque
//! application data with an externally supplied merge operator.

use serde::{Deserialize, Serialize};

/// An integer/boolean expression over the program state. Booleans are
/// represented as 0/1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// A declared state variable.
    Var(String),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// `msgsReceived[index]`.
    MsgsReceivedAt(Box<Expr>),
}

impl Expr {
    /// `Var` helper.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// `self + k` helper.
    pub fn plus(self, k: i64) -> Expr {
        Expr::Add(Box::new(self), Box::new(Expr::Int(k)))
    }

    /// `self − k` helper.
    pub fn minus(self, k: i64) -> Expr {
        Expr::Sub(Box::new(self), Box::new(Expr::Int(k)))
    }
}

/// A rule guard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Guard {
    /// `lhs = rhs` over program state.
    Eq(Expr, Expr),
    /// Fires when a message is delivered ("received mGraph").
    Received,
    /// True when the triggering message's sender is this node itself
    /// (Figure 4's "one of the four incoming messages … is from the node
    /// to itself").
    IncomingFromSelf,
    /// Conjunction of two guards.
    And(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// `self ∧ other` helper.
    pub fn and(self, other: Guard) -> Guard {
        Guard::And(Box::new(self), Box::new(other))
    }
}

/// An executable action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// `name := expr`.
    Set(String, Expr),
    /// `mySubGraph[0] := summary(intra-cell readings)`.
    ComputeLocalSummary,
    /// `merge(mGraph.msubGraph, mySubGraph[mGraph.mrecLevel])`.
    MergeIncoming,
    /// `msgsReceived[mGraph.mrecLevel]++`.
    CountIncoming,
    /// Conditional execution.
    IfElse {
        /// Branch condition.
        cond: Guard,
        /// Taken when true.
        then: Vec<Action>,
        /// Taken when false.
        otherwise: Vec<Action>,
    },
    /// `send {myCoords, mySubGraph[data_level], group_level}` to
    /// `Leader(group_level)` — the group-communication primitive.
    SendSummaryToLeader {
        /// Hierarchy level whose leader is addressed (and the message's
        /// `mrecLevel` tag).
        group_level: Expr,
        /// Which summary to ship.
        data_level: Expr,
    },
    /// `exfiltrate mySubGraph[level]`.
    ExfiltrateSummary {
        /// Which summary leaves the network.
        level: Expr,
    },
}

/// A declared scalar state variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDecl {
    /// Variable name.
    pub name: String,
    /// Initial value.
    pub init: Expr,
}

/// One `Condition → Action` clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Short label for code generation and diagnostics.
    pub label: String,
    /// Firing condition.
    pub guard: Guard,
    /// Body.
    pub actions: Vec<Action>,
}

/// A complete synthesized program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardedProgram {
    /// Program name.
    pub name: String,
    /// `maxrecLevel`: the hierarchy depth (log₂ of the grid side).
    pub max_level: u8,
    /// Scalar state declarations.
    pub state: Vec<StateDecl>,
    /// The clauses, in scan order.
    pub rules: Vec<Rule>,
}

impl GuardedProgram {
    /// Rules that fire on internal state (everything but `Received`).
    pub fn state_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.guard != Guard::Received)
    }

    /// Rules that fire on message delivery.
    pub fn receive_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.guard == Guard::Received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::var("recLevel").plus(1);
        assert_eq!(
            e,
            Expr::Add(Box::new(Expr::var("recLevel")), Box::new(Expr::Int(1)))
        );
        let e = Expr::var("recLevel").minus(1);
        assert_eq!(
            e,
            Expr::Sub(Box::new(Expr::var("recLevel")), Box::new(Expr::Int(1)))
        );
    }

    #[test]
    fn rule_classification() {
        let p = GuardedProgram {
            name: "t".into(),
            max_level: 1,
            state: vec![],
            rules: vec![
                Rule {
                    label: "a".into(),
                    guard: Guard::Eq(Expr::var("x"), Expr::Bool(true)),
                    actions: vec![],
                },
                Rule {
                    label: "b".into(),
                    guard: Guard::Received,
                    actions: vec![],
                },
            ],
        };
        assert_eq!(p.state_rules().count(), 1);
        assert_eq!(p.receive_rules().count(), 1);
        assert_eq!(p.receive_rules().next().unwrap().label, "b");
    }
}
