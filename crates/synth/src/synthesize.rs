//! Program synthesis: from the mapped quad-tree algorithm to the Figure-4
//! guarded-command program.
//!
//! §4.3: "The output of the mapping stage is an algorithm specified for a
//! grid topology, which relies on middleware support for group formation
//! … The next step is to synthesize this algorithm into a program that
//! executes at each node of the grid topology."
//!
//! The synthesized program reproduces the four clauses of Figure 4, with
//! two disambiguations of the published pseudocode, documented here
//! because the figure is not internally consistent on them:
//!
//! * **Self-messages**: the paper notes that "one of the four incoming
//!   messages in the quad-tree representation is from the node to itself"
//!   and keeps the quorum at `msgsReceived[recLevel] = 3`. We realize the
//!   self-contribution as an explicit (free, zero-hop) message via the
//!   group primitive and exclude it from `msgsReceived`, keeping the
//!   figure's quorum of 3.
//! * **Levels**: `recLevel` counts the level whose merge this node is
//!   currently accumulating; a message tagged `mrecLevel = l` merges into
//!   `mySubGraph[l]`. The final aggregation holds the level-`maxrecLevel`
//!   summary, so the exfiltration test is `recLevel − 1 = maxrecLevel`
//!   (the figure's `recLevel = maxrecLevel` under its off-by-one
//!   convention).

use crate::mapping::Mapping;
use crate::program::{Action, Expr, Guard, GuardedProgram, Rule, StateDecl};
use crate::quadtree::QuadTree;
use crate::taskgraph::TaskKind;
use wsn_core::Hierarchy;

/// Why a mapped task graph could not be synthesized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The mapping violates a design-time constraint (coverage or spatial
    /// correlation).
    InfeasibleMapping(crate::constraints::ConstraintViolation),
    /// An interior task is not placed on its extent's group leader, so
    /// the group-communication primitive (`Leader(k)`) cannot realize the
    /// parent links ("using the static group formation provided by the
    /// virtual architecture", §4.2).
    TaskOffLeader {
        /// Offending task.
        task: crate::taskgraph::TaskId,
    },
}

/// The paper's full synthesis step: consumes the mapping stage's output
/// (the quad-tree task graph plus a task-to-node mapping) and produces the
/// per-node program of Figure 4 — after verifying that the mapping is one
/// the group middleware can realize.
pub fn synthesize_from_mapping(
    qt: &QuadTree,
    mapping: &Mapping,
) -> Result<GuardedProgram, SynthesisError> {
    crate::constraints::first_violation(qt, mapping).map_err(SynthesisError::InfeasibleMapping)?;
    let hierarchy = Hierarchy::new(qt.side);
    for task in qt.graph.tasks() {
        if task.kind == TaskKind::Processing {
            let (origin, _) = qt.extent[task.id];
            // The middleware binds level-k groups to NW-corner leaders;
            // SPMD synthesis can only route parent links through them.
            if mapping.node_of(task.id) != origin {
                return Err(SynthesisError::TaskOffLeader { task: task.id });
            }
            debug_assert!(hierarchy.is_leader(origin, task.level));
        }
    }
    Ok(synthesize_quadtree_program(hierarchy.max_level()))
}

/// Synthesizes the per-node program of the quad-tree region-labeling
/// algorithm for a grid of depth `max_level` (side `2^max_level`).
pub fn synthesize_quadtree_program(max_level: u8) -> GuardedProgram {
    let state = vec![
        StateDecl {
            name: "start".into(),
            init: Expr::Bool(false),
        },
        StateDecl {
            name: "transmit".into(),
            init: Expr::Bool(false),
        },
        StateDecl {
            name: "recLevel".into(),
            init: Expr::Int(0),
        },
        StateDecl {
            name: "maxrecLevel".into(),
            init: Expr::Int(i64::from(max_level)),
        },
    ];

    let rules = vec![
        // Condition : start = true
        Rule {
            label: "start".into(),
            guard: Guard::Eq(Expr::var("start"), Expr::Bool(true)),
            actions: vec![
                Action::Set("start".into(), Expr::Bool(false)),
                Action::ComputeLocalSummary,
                Action::Set("transmit".into(), Expr::Bool(true)),
                Action::Set("recLevel".into(), Expr::var("recLevel").plus(1)),
            ],
        },
        // Condition : received mGraph
        Rule {
            label: "received mGraph".into(),
            guard: Guard::Received,
            actions: vec![
                Action::MergeIncoming,
                Action::IfElse {
                    cond: Guard::IncomingFromSelf,
                    then: vec![],
                    otherwise: vec![Action::CountIncoming],
                },
            ],
        },
        // Condition : transmit = true
        Rule {
            label: "transmit".into(),
            guard: Guard::Eq(Expr::var("transmit"), Expr::Bool(true)),
            actions: vec![
                Action::Set("transmit".into(), Expr::Bool(false)),
                Action::IfElse {
                    cond: Guard::Eq(Expr::var("recLevel").minus(1), Expr::var("maxrecLevel")),
                    then: vec![Action::ExfiltrateSummary {
                        level: Expr::var("maxrecLevel"),
                    }],
                    otherwise: vec![Action::SendSummaryToLeader {
                        group_level: Expr::var("recLevel"),
                        data_level: Expr::var("recLevel").minus(1),
                    }],
                },
            ],
        },
        // Condition : msgsReceived[recLevel] = 3
        Rule {
            label: "quorum".into(),
            guard: Guard::Eq(
                Expr::MsgsReceivedAt(Box::new(Expr::var("recLevel"))),
                Expr::Int(3),
            ),
            actions: vec![
                Action::Set("transmit".into(), Expr::Bool(true)),
                Action::Set("recLevel".into(), Expr::var("recLevel").plus(1)),
            ],
        },
    ];

    GuardedProgram {
        name: "quadtree-region-labeling".into(),
        max_level,
        state,
        rules,
    }
}

/// Synthesizes the *centralized gather* alternative (§2's strawman) from
/// the same rule language: every node ships its level-0 summary straight
/// to the grid-level leader (the origin), which accumulates all `N − 1`
/// remote contributions plus its own self-message and exfiltrates.
///
/// Demonstrates that the synthesis stage is not specific to one
/// algorithm: a different task-graph shape (a star instead of a
/// quad-tree) produces a different guarded-command program over the same
/// primitives.
pub fn synthesize_gather_program(max_level: u8, grid_side: u32) -> GuardedProgram {
    let n = i64::from(grid_side) * i64::from(grid_side);
    let state = vec![
        StateDecl {
            name: "start".into(),
            init: Expr::Bool(false),
        },
        StateDecl {
            name: "transmit".into(),
            init: Expr::Bool(false),
        },
        StateDecl {
            name: "recLevel".into(),
            init: Expr::Int(0),
        },
        StateDecl {
            name: "maxrecLevel".into(),
            init: Expr::Int(i64::from(max_level)),
        },
    ];
    let mut state = state;
    state.push(StateDecl {
        name: "done".into(),
        init: Expr::Bool(false),
    });
    let rules = vec![
        Rule {
            label: "start".into(),
            guard: Guard::Eq(Expr::var("start"), Expr::Bool(true)),
            actions: vec![
                Action::Set("start".into(), Expr::Bool(false)),
                Action::ComputeLocalSummary,
                Action::Set("transmit".into(), Expr::Bool(true)),
            ],
        },
        Rule {
            label: "received mGraph".into(),
            guard: Guard::Received,
            actions: vec![
                Action::MergeIncoming,
                Action::IfElse {
                    cond: Guard::IncomingFromSelf,
                    then: vec![],
                    otherwise: vec![Action::CountIncoming],
                },
            ],
        },
        Rule {
            label: "transmit".into(),
            guard: Guard::Eq(Expr::var("transmit"), Expr::Bool(true)),
            actions: vec![
                Action::Set("transmit".into(), Expr::Bool(false)),
                // Address the top-level leader directly: the group
                // primitive with k = maxrecLevel resolves to the origin.
                Action::SendSummaryToLeader {
                    group_level: Expr::var("maxrecLevel"),
                    data_level: Expr::Int(0),
                },
            ],
        },
        Rule {
            label: "all readings received".into(),
            // The done flag falsifies the guard after firing — otherwise
            // the quorum condition would stay true and livelock the scan.
            guard: Guard::Eq(
                Expr::MsgsReceivedAt(Box::new(Expr::var("maxrecLevel"))),
                Expr::Int(n - 1),
            )
            .and(Guard::Eq(Expr::var("done"), Expr::Bool(false))),
            actions: vec![
                Action::Set("done".into(), Expr::Bool(true)),
                Action::ExfiltrateSummary {
                    level: Expr::var("maxrecLevel"),
                },
            ],
        },
    ];
    GuardedProgram {
        name: "centralized-gather".into(),
        max_level,
        state,
        rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_has_figure4_shape() {
        let p = synthesize_quadtree_program(2);
        assert_eq!(p.rules.len(), 4, "Figure 4 has four clauses");
        assert_eq!(p.state.len(), 4);
        assert_eq!(p.receive_rules().count(), 1);
        assert_eq!(p.state_rules().count(), 3);
        let labels: Vec<&str> = p.rules.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["start", "received mGraph", "transmit", "quorum"]
        );
    }

    #[test]
    fn max_level_is_embedded_as_constant() {
        for depth in 0..=5u8 {
            let p = synthesize_quadtree_program(depth);
            assert_eq!(p.max_level, depth);
            let decl = p.state.iter().find(|d| d.name == "maxrecLevel").unwrap();
            assert_eq!(decl.init, Expr::Int(i64::from(depth)));
        }
    }

    #[test]
    fn gather_program_has_star_shape() {
        let p = synthesize_gather_program(2, 4);
        assert_eq!(p.rules.len(), 4);
        let quorum = p
            .rules
            .iter()
            .find(|r| r.label == "all readings received")
            .unwrap();
        assert_eq!(
            quorum.guard,
            Guard::Eq(
                Expr::MsgsReceivedAt(Box::new(Expr::var("maxrecLevel"))),
                Expr::Int(15),
            )
            .and(Guard::Eq(Expr::var("done"), Expr::Bool(false)))
        );
        // No recursion: recLevel is never incremented.
        let rendered = crate::codegen::render_figure4(&p);
        assert!(!rendered.contains("recLevel = recLevel + 1"), "{rendered}");
        assert!(rendered.contains("send message to Leader(maxrecLevel)"));
    }

    #[test]
    fn synthesis_accepts_the_paper_mapping() {
        use crate::mapping::{Mapper, QuadrantMapper};
        let qt = crate::quadtree::quadtree_task_graph(8, &|_| 1, &|_| 1);
        let mapping = QuadrantMapper.map(&qt);
        let program = synthesize_from_mapping(&qt, &mapping).unwrap();
        assert_eq!(program, synthesize_quadtree_program(3));
    }

    #[test]
    fn synthesis_rejects_off_leader_interior_placement() {
        use crate::mapping::{CentroidMapper, Mapper};
        let qt = crate::quadtree::quadtree_task_graph(8, &|_| 1, &|_| 1);
        // Centroid placement is feasible for *evaluation* but not
        // realizable through the static group middleware.
        let mapping = CentroidMapper.map(&qt);
        assert!(matches!(
            synthesize_from_mapping(&qt, &mapping),
            Err(SynthesisError::TaskOffLeader { .. })
        ));
    }

    #[test]
    fn synthesis_rejects_infeasible_mappings() {
        use crate::mapping::{Mapper, QuadrantMapper};
        use wsn_core::GridCoord;
        let qt = crate::quadtree::quadtree_task_graph(4, &|_| 1, &|_| 1);
        let mut mapping = QuadrantMapper.map(&qt);
        let (a, b) = (qt.ids_by_level[0][0], qt.ids_by_level[0][15]);
        let (na, nb) = (mapping.node_of(a), mapping.node_of(b));
        mapping.assign(a, nb);
        mapping.assign(b, na);
        assert!(matches!(
            synthesize_from_mapping(&qt, &mapping),
            Err(SynthesisError::InfeasibleMapping(_))
        ));
        let _ = GridCoord::new(0, 0);
    }

    #[test]
    fn quorum_is_three_as_in_the_paper() {
        let p = synthesize_quadtree_program(3);
        let quorum = p.rules.iter().find(|r| r.label == "quorum").unwrap();
        assert_eq!(
            quorum.guard,
            Guard::Eq(
                Expr::MsgsReceivedAt(Box::new(Expr::var("recLevel"))),
                Expr::Int(3)
            )
        );
    }
}
