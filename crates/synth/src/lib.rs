//! # wsn-synth — algorithm design and synthesis (§4 of the paper)
//!
//! The top-down half of the methodology: the chosen algorithm is specified
//! as an architecture-independent **annotated task graph** ([`taskgraph`],
//! with the case study's quad-tree generator in [`quadtree`]); a **mapping
//! stage** assigns tasks to virtual nodes subject to the paper's coverage
//! and spatial-correlation constraints ([`constraints`], [`mapping`]); and
//! a **synthesis stage** turns the mapped algorithm into the reactive
//! guarded-command program of Figure 4 ([`program`], [`synthesize`]),
//! which is executable through the interpreter ([`interpret`]) and
//! printable in the paper's notation by the code generator ([`codegen`]).

#![forbid(unsafe_code)]

pub mod codegen;
pub mod constraints;
pub mod interpret;
pub mod mapping;
pub mod program;
pub mod quadtree;
pub mod synthesize;
pub mod taskgraph;

pub use codegen::render_figure4;
pub use constraints::{
    check_all, check_coverage, check_spatial_correlation, coverage_violations, first_violation,
    spatial_correlation_violations, ConstraintViolation,
};
pub use interpret::{SummaryMsg, SummarySemantics, SynthesizedNode};
pub use mapping::{
    AnnealingMapper, CentroidMapper, Mapper, Mapping, MappingCost, QuadrantMapper,
    RandomFeasibleMapper,
};
pub use program::{Action, Expr, Guard, GuardedProgram, Rule, StateDecl};
pub use quadtree::{quadtree_task_graph, QuadTree};
pub use synthesize::{
    synthesize_from_mapping, synthesize_gather_program, synthesize_quadtree_program, SynthesisError,
};
pub use taskgraph::{Edge, EdgeError, Task, TaskGraph, TaskId, TaskKind};
