//! The paper's design-time mapping constraints (§4.1).
//!
//! *Coverage*: "each leaf node of the task graph (that represents one
//! sampling task) should be mapped to a distinct node of the virtual
//! topology to ensure the desired level of coverage." With as many leaves
//! as virtual nodes this makes the leaf mapping a bijection.
//!
//! *Spatial correlation*: "all children of a given node should represent
//! information about a single contiguous geographic extent" — for the
//! quad-tree, the leaves under every interior task must tile an axis-
//! aligned square block, so merged boundaries are boundaries of one
//! contiguous extent.

use crate::mapping::Mapping;
use crate::quadtree::QuadTree;
use crate::taskgraph::TaskId;
use std::collections::HashSet;
use wsn_core::GridCoord;

/// A violated mapping constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Two sampling tasks share a virtual node.
    DuplicateLeafAssignment {
        /// The node assigned twice.
        node: GridCoord,
    },
    /// Leaf count differs from virtual-node count.
    CoverageCount {
        /// Sampling tasks in the graph.
        leaves: usize,
        /// Virtual nodes in the topology.
        nodes: usize,
    },
    /// A task maps outside the virtual topology.
    OutOfGrid {
        /// Offending task.
        task: TaskId,
    },
    /// The leaves under `task` do not tile one contiguous square extent.
    NonContiguousExtent {
        /// Offending interior task.
        task: TaskId,
    },
}

/// Collects every coverage violation for `mapping` over `qt`'s grid.
pub fn coverage_violations(qt: &QuadTree, mapping: &Mapping) -> Vec<ConstraintViolation> {
    let mut out = Vec::new();
    let leaves = qt.graph.sensing_tasks();
    let nodes = (qt.side as usize).pow(2);
    if leaves.len() != nodes {
        out.push(ConstraintViolation::CoverageCount {
            leaves: leaves.len(),
            nodes,
        });
    }
    let mut seen: HashSet<GridCoord> = HashSet::with_capacity(nodes);
    for t in leaves {
        let node = mapping.node_of(t);
        if node.col >= qt.side || node.row >= qt.side {
            out.push(ConstraintViolation::OutOfGrid { task: t });
            continue;
        }
        if !seen.insert(node) {
            out.push(ConstraintViolation::DuplicateLeafAssignment { node });
        }
    }
    out
}

/// Collects every spatial-correlation violation: interior tasks whose leaf
/// descendants do not tile one contiguous square block.
pub fn spatial_correlation_violations(
    qt: &QuadTree,
    mapping: &Mapping,
) -> Vec<ConstraintViolation> {
    let mut out = Vec::new();
    for level in 1..qt.ids_by_level.len() {
        for &t in &qt.ids_by_level[level] {
            let cells = descendant_leaf_cells(qt, mapping, t);
            if !is_square_block(&cells) {
                out.push(ConstraintViolation::NonContiguousExtent { task: t });
            }
        }
    }
    out
}

/// Checks the coverage constraint, reporting the first violation.
pub fn check_coverage(qt: &QuadTree, mapping: &Mapping) -> Result<(), ConstraintViolation> {
    match coverage_violations(qt, mapping).into_iter().next() {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Checks the spatial-correlation constraint, reporting the first
/// violation.
pub fn check_spatial_correlation(
    qt: &QuadTree,
    mapping: &Mapping,
) -> Result<(), ConstraintViolation> {
    match spatial_correlation_violations(qt, mapping)
        .into_iter()
        .next()
    {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Sweeps both constraints and collects *all* violations — the analyzer
/// wants the complete picture, not the first failure.
pub fn check_all(qt: &QuadTree, mapping: &Mapping) -> Vec<ConstraintViolation> {
    let mut out = coverage_violations(qt, mapping);
    out.extend(spatial_correlation_violations(qt, mapping));
    out
}

/// First violation of either constraint, if any — the fail-fast entry
/// point the synthesizer uses.
pub fn first_violation(qt: &QuadTree, mapping: &Mapping) -> Result<(), ConstraintViolation> {
    check_coverage(qt, mapping)?;
    check_spatial_correlation(qt, mapping)
}

fn descendant_leaf_cells(qt: &QuadTree, mapping: &Mapping, t: TaskId) -> Vec<GridCoord> {
    let mut stack = vec![t];
    let mut cells = Vec::new();
    while let Some(cur) = stack.pop() {
        let producers = qt.graph.producers(cur);
        if producers.is_empty() {
            cells.push(mapping.node_of(cur));
        } else {
            stack.extend_from_slice(producers);
        }
    }
    cells
}

fn is_square_block(cells: &[GridCoord]) -> bool {
    let side = (cells.len() as f64).sqrt().round() as usize;
    if side * side != cells.len() {
        return false;
    }
    let min_col = cells.iter().map(|c| c.col).min().expect("non-empty");
    let min_row = cells.iter().map(|c| c.row).min().expect("non-empty");
    let mut seen = HashSet::with_capacity(cells.len());
    for c in cells {
        let dc = (c.col - min_col) as usize;
        let dr = (c.row - min_row) as usize;
        if dc >= side || dr >= side || !seen.insert((dc, dr)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapper;
    use crate::quadtree::quadtree_task_graph;

    fn qt() -> QuadTree {
        quadtree_task_graph(4, &|_| 1, &|_| 1)
    }

    fn quadrant_mapping(qt: &QuadTree) -> Mapping {
        crate::mapping::QuadrantMapper.map(qt)
    }

    #[test]
    fn paper_mapping_satisfies_both_constraints() {
        let qt = qt();
        let m = quadrant_mapping(&qt);
        assert_eq!(check_all(&qt, &m), Vec::new());
        assert_eq!(first_violation(&qt, &m), Ok(()));
    }

    #[test]
    fn duplicate_leaf_detected() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        let first_leaf = qt.ids_by_level[0][0];
        let second_leaf = qt.ids_by_level[0][1];
        m.assign(second_leaf, m.node_of(first_leaf));
        assert!(matches!(
            check_coverage(&qt, &m),
            Err(ConstraintViolation::DuplicateLeafAssignment { .. })
        ));
    }

    #[test]
    fn out_of_grid_detected() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        m.assign(qt.ids_by_level[0][3], GridCoord::new(7, 0));
        assert!(matches!(
            check_coverage(&qt, &m),
            Err(ConstraintViolation::OutOfGrid { .. })
        ));
    }

    #[test]
    fn swapping_leaves_across_quadrants_breaks_spatial_correlation() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        // Swap a leaf of the NW quadrant with one of the SE quadrant.
        let nw_leaf = qt.ids_by_level[0][0];
        let se_leaf = qt.ids_by_level[0][15];
        let (a, b) = (m.node_of(nw_leaf), m.node_of(se_leaf));
        m.assign(nw_leaf, b);
        m.assign(se_leaf, a);
        assert_eq!(check_coverage(&qt, &m), Ok(()), "still a bijection");
        assert!(matches!(
            check_spatial_correlation(&qt, &m),
            Err(ConstraintViolation::NonContiguousExtent { .. })
        ));
    }

    #[test]
    fn swapping_leaves_within_a_quadrant_is_fine() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        let a = qt.ids_by_level[0][0];
        let b = qt.ids_by_level[0][3];
        let (na, nb) = (m.node_of(a), m.node_of(b));
        m.assign(a, nb);
        m.assign(b, na);
        assert_eq!(check_all(&qt, &m), Vec::new());
    }

    #[test]
    fn check_all_collects_every_violation() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        // One duplicate leaf (also breaking two extents) plus a cross-
        // quadrant swap: the sweep must report all of them, not the first.
        let l0 = qt.ids_by_level[0][0];
        let l1 = qt.ids_by_level[0][1];
        m.assign(l1, m.node_of(l0));
        let nw = qt.ids_by_level[0][2];
        let se = qt.ids_by_level[0][15];
        let (a, b) = (m.node_of(nw), m.node_of(se));
        m.assign(nw, b);
        m.assign(se, a);
        let all = check_all(&qt, &m);
        assert!(
            all.len() >= 3,
            "collected {} violations: {all:?}",
            all.len()
        );
        assert!(all
            .iter()
            .any(|v| matches!(v, ConstraintViolation::DuplicateLeafAssignment { .. })));
        assert!(
            all.iter()
                .filter(|v| matches!(v, ConstraintViolation::NonContiguousExtent { .. }))
                .count()
                >= 2
        );
        // Fail-fast helper agrees with the head of the sweep.
        assert_eq!(first_violation(&qt, &m), Err(all[0].clone()));
    }

    #[test]
    fn square_block_recognizer() {
        let block: Vec<GridCoord> = [(2, 2), (3, 2), (2, 3), (3, 3)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(is_square_block(&block));
        let ell: Vec<GridCoord> = [(0, 0), (1, 0), (0, 1), (2, 0)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(!is_square_block(&ell));
        let dup: Vec<GridCoord> = [(0, 0), (1, 0), (0, 1), (0, 0)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(!is_square_block(&dup));
        let not_square = vec![GridCoord::new(0, 0), GridCoord::new(1, 0)];
        assert!(!is_square_block(&not_square));
    }
}
