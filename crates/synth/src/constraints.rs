//! The paper's design-time mapping constraints (§4.1).
//!
//! *Coverage*: "each leaf node of the task graph (that represents one
//! sampling task) should be mapped to a distinct node of the virtual
//! topology to ensure the desired level of coverage." With as many leaves
//! as virtual nodes this makes the leaf mapping a bijection.
//!
//! *Spatial correlation*: "all children of a given node should represent
//! information about a single contiguous geographic extent" — for the
//! quad-tree, the leaves under every interior task must tile an axis-
//! aligned square block, so merged boundaries are boundaries of one
//! contiguous extent.

use crate::mapping::Mapping;
use crate::quadtree::QuadTree;
use crate::taskgraph::TaskId;
use std::collections::HashSet;
use wsn_core::GridCoord;

/// A violated mapping constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Two sampling tasks share a virtual node.
    DuplicateLeafAssignment {
        /// The node assigned twice.
        node: GridCoord,
    },
    /// Leaf count differs from virtual-node count.
    CoverageCount {
        /// Sampling tasks in the graph.
        leaves: usize,
        /// Virtual nodes in the topology.
        nodes: usize,
    },
    /// A task maps outside the virtual topology.
    OutOfGrid {
        /// Offending task.
        task: TaskId,
    },
    /// The leaves under `task` do not tile one contiguous square extent.
    NonContiguousExtent {
        /// Offending interior task.
        task: TaskId,
    },
}

/// Checks the coverage constraint for `mapping` over `qt`'s grid.
pub fn check_coverage(qt: &QuadTree, mapping: &Mapping) -> Result<(), ConstraintViolation> {
    let leaves = qt.graph.sensing_tasks();
    let nodes = (qt.side as usize).pow(2);
    if leaves.len() != nodes {
        return Err(ConstraintViolation::CoverageCount {
            leaves: leaves.len(),
            nodes,
        });
    }
    let mut seen: HashSet<GridCoord> = HashSet::with_capacity(nodes);
    for t in leaves {
        let node = mapping.node_of(t);
        if node.col >= qt.side || node.row >= qt.side {
            return Err(ConstraintViolation::OutOfGrid { task: t });
        }
        if !seen.insert(node) {
            return Err(ConstraintViolation::DuplicateLeafAssignment { node });
        }
    }
    Ok(())
}

/// Checks the spatial-correlation constraint: for every interior task, the
/// cells sampled by its leaf descendants form one contiguous square block.
pub fn check_spatial_correlation(
    qt: &QuadTree,
    mapping: &Mapping,
) -> Result<(), ConstraintViolation> {
    for level in 1..qt.ids_by_level.len() {
        for &t in &qt.ids_by_level[level] {
            let cells = descendant_leaf_cells(qt, mapping, t);
            if !is_square_block(&cells) {
                return Err(ConstraintViolation::NonContiguousExtent { task: t });
            }
        }
    }
    Ok(())
}

/// Checks both constraints.
pub fn check_all(qt: &QuadTree, mapping: &Mapping) -> Result<(), ConstraintViolation> {
    check_coverage(qt, mapping)?;
    check_spatial_correlation(qt, mapping)
}

fn descendant_leaf_cells(qt: &QuadTree, mapping: &Mapping, t: TaskId) -> Vec<GridCoord> {
    let mut stack = vec![t];
    let mut cells = Vec::new();
    while let Some(cur) = stack.pop() {
        let producers = qt.graph.producers(cur);
        if producers.is_empty() {
            cells.push(mapping.node_of(cur));
        } else {
            stack.extend_from_slice(producers);
        }
    }
    cells
}

fn is_square_block(cells: &[GridCoord]) -> bool {
    let side = (cells.len() as f64).sqrt().round() as usize;
    if side * side != cells.len() {
        return false;
    }
    let min_col = cells.iter().map(|c| c.col).min().expect("non-empty");
    let min_row = cells.iter().map(|c| c.row).min().expect("non-empty");
    let mut seen = HashSet::with_capacity(cells.len());
    for c in cells {
        let dc = (c.col - min_col) as usize;
        let dr = (c.row - min_row) as usize;
        if dc >= side || dr >= side || !seen.insert((dc, dr)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapper;
    use crate::quadtree::quadtree_task_graph;

    fn qt() -> QuadTree {
        quadtree_task_graph(4, &|_| 1, &|_| 1)
    }

    fn quadrant_mapping(qt: &QuadTree) -> Mapping {
        crate::mapping::QuadrantMapper.map(qt)
    }

    #[test]
    fn paper_mapping_satisfies_both_constraints() {
        let qt = qt();
        let m = quadrant_mapping(&qt);
        assert_eq!(check_all(&qt, &m), Ok(()));
    }

    #[test]
    fn duplicate_leaf_detected() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        let first_leaf = qt.ids_by_level[0][0];
        let second_leaf = qt.ids_by_level[0][1];
        m.assign(second_leaf, m.node_of(first_leaf));
        assert!(matches!(
            check_coverage(&qt, &m),
            Err(ConstraintViolation::DuplicateLeafAssignment { .. })
        ));
    }

    #[test]
    fn out_of_grid_detected() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        m.assign(qt.ids_by_level[0][3], GridCoord::new(7, 0));
        assert!(matches!(
            check_coverage(&qt, &m),
            Err(ConstraintViolation::OutOfGrid { .. })
        ));
    }

    #[test]
    fn swapping_leaves_across_quadrants_breaks_spatial_correlation() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        // Swap a leaf of the NW quadrant with one of the SE quadrant.
        let nw_leaf = qt.ids_by_level[0][0];
        let se_leaf = qt.ids_by_level[0][15];
        let (a, b) = (m.node_of(nw_leaf), m.node_of(se_leaf));
        m.assign(nw_leaf, b);
        m.assign(se_leaf, a);
        assert_eq!(check_coverage(&qt, &m), Ok(()), "still a bijection");
        assert!(matches!(
            check_spatial_correlation(&qt, &m),
            Err(ConstraintViolation::NonContiguousExtent { .. })
        ));
    }

    #[test]
    fn swapping_leaves_within_a_quadrant_is_fine() {
        let qt = qt();
        let mut m = quadrant_mapping(&qt);
        let a = qt.ids_by_level[0][0];
        let b = qt.ids_by_level[0][3];
        let (na, nb) = (m.node_of(a), m.node_of(b));
        m.assign(a, nb);
        m.assign(b, na);
        assert_eq!(check_all(&qt, &m), Ok(()));
    }

    #[test]
    fn square_block_recognizer() {
        let block: Vec<GridCoord> = [(2, 2), (3, 2), (2, 3), (3, 3)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(is_square_block(&block));
        let ell: Vec<GridCoord> = [(0, 0), (1, 0), (0, 1), (2, 0)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(!is_square_block(&ell));
        let dup: Vec<GridCoord> = [(0, 0), (1, 0), (0, 1), (0, 0)]
            .map(|(c, r)| GridCoord::new(c, r))
            .to_vec();
        assert!(!is_square_block(&dup));
        let not_square = vec![GridCoord::new(0, 0), GridCoord::new(1, 0)];
        assert!(!is_square_block(&not_square));
    }
}
