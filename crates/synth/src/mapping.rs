//! Task-to-node mapping (§4.2, "Role assignment").
//!
//! "The virtual topology, cost model, and application graph can be
//! provided as input to any of the numerous task mapping algorithms that
//! exist in literature … the optimization criteria will have to reflect
//! new performance metrics such as total energy and/or energy balance."
//!
//! Four mappers are provided:
//!
//! * [`QuadrantMapper`] — the paper's static mapping (Figures 2/3): leaf
//!   `i` (Morton order) sits on grid location `i`; every interior task
//!   sits on the north-west corner of its extent, i.e. on its group
//!   leader.
//! * [`RandomFeasibleMapper`] — keeps the leaf tiling but places interior
//!   tasks uniformly at random *within their extent* (still feasible).
//! * [`CentroidMapper`] — places each interior task at the in-extent cell
//!   closest to the centroid of its children, trading the paper's leader
//!   alignment for shorter child links.
//! * [`AnnealingMapper`] — simulated annealing over interior placements,
//!   minimizing a weighted sum of total energy and hotspot energy.
//!
//! All mappers keep the constraint-bearing leaf assignment fixed, because
//! the paper's constraints pin it up to intra-quadrant permutations; the
//! interesting design freedom ("the non-leaf nodes can be mapped anywhere
//! in the grid subject to performance optimization") is interior
//! placement.

use crate::quadtree::QuadTree;
use crate::taskgraph::{TaskId, TaskKind};
use serde::{Deserialize, Serialize};
use wsn_core::{CostModel, GridCoord, VirtualGrid};
use wsn_sim::DetRng;

/// An assignment of every task to a virtual node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    assignment: Vec<GridCoord>,
}

impl Mapping {
    /// Wraps a raw assignment (index = task id).
    pub fn new(assignment: Vec<GridCoord>) -> Self {
        Mapping { assignment }
    }

    /// The node hosting task `t`.
    pub fn node_of(&self, t: TaskId) -> GridCoord {
        self.assignment[t]
    }

    /// Reassigns task `t`.
    pub fn assign(&mut self, t: TaskId, node: GridCoord) {
        self.assignment[t] = node;
    }

    /// Number of mapped tasks.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no tasks are mapped.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// Cost of a mapping under the virtual architecture's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Network-wide energy for one round of the task graph.
    pub total_energy: f64,
    /// Hotspot: the most-loaded node's energy.
    pub max_node_energy: f64,
    /// Jain fairness of per-node energy.
    pub energy_balance: f64,
    /// Critical-path latency of one round in ticks.
    pub critical_path_ticks: u64,
}

impl MappingCost {
    /// Per-virtual-node energy load of one round of `qt` under `mapping`,
    /// charging tx to sources, rx+tx to route relays, rx to destinations,
    /// and compute to each task's node — the same accounting the VM uses.
    /// Indexed by [`VirtualGrid::index`].
    pub fn node_loads(qt: &QuadTree, mapping: &Mapping, cost: &CostModel) -> Vec<f64> {
        let grid = VirtualGrid::new(qt.side);
        let mut load = vec![0.0f64; grid.node_count()];

        for task in qt.graph.tasks() {
            load[grid.index(mapping.node_of(task.id))] += cost.compute(task.compute_units);
        }
        for e in qt.graph.edges() {
            let from = mapping.node_of(e.from);
            let to = mapping.node_of(e.to);
            if from == to {
                continue;
            }
            let u = e.data_units as f64;
            load[grid.index(from)] += u * cost.tx_energy;
            let route = grid.route(from, to);
            for &relay in &route[..route.len() - 1] {
                load[grid.index(relay)] += u * (cost.rx_energy + cost.tx_energy);
            }
            load[grid.index(to)] += u * cost.rx_energy;
        }
        load
    }

    /// Evaluates `mapping` for one round of `qt` under `cost`.
    pub fn evaluate(qt: &QuadTree, mapping: &Mapping, cost: &CostModel) -> Self {
        let load = Self::node_loads(qt, mapping, cost);

        // Critical path: finish[t] = max over producers of finish + link.
        let order = qt.graph.topological_order().expect("task graph is a DAG");
        let mut finish = vec![0u64; qt.graph.task_count()];
        for &t in &order {
            let mut best = 0u64;
            for &p in qt.graph.producers(t) {
                let units = qt
                    .graph
                    .edges()
                    .iter()
                    .find(|e| e.from == p && e.to == t)
                    .expect("edge exists")
                    .data_units;
                let hops = mapping.node_of(p).manhattan(mapping.node_of(t));
                best = best.max(finish[p] + cost.path_ticks(hops, units));
            }
            finish[t] = best;
        }

        let total: f64 = load.iter().sum();
        let max = load.iter().copied().fold(0.0, f64::max);
        let sum_sq: f64 = load.iter().map(|x| x * x).sum();
        let n = load.len() as f64;
        let balance = if sum_sq == 0.0 {
            1.0
        } else {
            total * total / (n * sum_sq)
        };
        MappingCost {
            total_energy: total,
            max_node_energy: max,
            energy_balance: balance,
            critical_path_ticks: finish.iter().copied().max().unwrap_or(0),
        }
    }
}

/// A task-mapping algorithm.
pub trait Mapper {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Produces a (feasible) mapping for `qt`.
    fn map(&mut self, qt: &QuadTree) -> Mapping;
}

fn leaf_identity_assignment(qt: &QuadTree) -> Vec<GridCoord> {
    // Leaf i (Morton order) → grid location with Morton index i; interior
    // tasks temporarily on their extent origin.
    qt.graph.tasks().iter().map(|t| qt.extent[t.id].0).collect()
}

/// The paper's mapping: interior tasks on their extent's north-west
/// corner — i.e. on the group leader the middleware would pick (§4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadrantMapper;

impl Mapper for QuadrantMapper {
    fn name(&self) -> &'static str {
        "quadrant (paper)"
    }

    fn map(&mut self, qt: &QuadTree) -> Mapping {
        Mapping::new(leaf_identity_assignment(qt))
    }
}

/// Feasible baseline: interior tasks uniformly random within their extent.
#[derive(Debug, Clone)]
pub struct RandomFeasibleMapper {
    rng: DetRng,
}

impl RandomFeasibleMapper {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        RandomFeasibleMapper {
            rng: DetRng::stream(seed, 0x3A9),
        }
    }
}

impl Mapper for RandomFeasibleMapper {
    fn name(&self) -> &'static str {
        "random-feasible"
    }

    fn map(&mut self, qt: &QuadTree) -> Mapping {
        let mut assignment = leaf_identity_assignment(qt);
        for task in qt.graph.tasks() {
            if task.kind == TaskKind::Processing {
                let (origin, side) = qt.extent[task.id];
                assignment[task.id] = GridCoord::new(
                    origin.col + self.rng.bounded_u64(u64::from(side)) as u32,
                    origin.row + self.rng.bounded_u64(u64::from(side)) as u32,
                );
            }
        }
        Mapping::new(assignment)
    }
}

/// Places each interior task at the in-extent cell nearest the centroid of
/// its children's placements (processed bottom-up).
#[derive(Debug, Clone, Copy, Default)]
pub struct CentroidMapper;

impl Mapper for CentroidMapper {
    fn name(&self) -> &'static str {
        "centroid"
    }

    fn map(&mut self, qt: &QuadTree) -> Mapping {
        let mut assignment = leaf_identity_assignment(qt);
        for level in 1..qt.ids_by_level.len() {
            for &t in &qt.ids_by_level[level] {
                let children = qt.graph.producers(t);
                let (sum_c, sum_r) = children.iter().fold((0f64, 0f64), |(c, r), &ch| {
                    (
                        c + f64::from(assignment[ch].col),
                        r + f64::from(assignment[ch].row),
                    )
                });
                let k = children.len() as f64;
                let (origin, side) = qt.extent[t];
                let col = ((sum_c / k).round() as u32).clamp(origin.col, origin.col + side - 1);
                let row = ((sum_r / k).round() as u32).clamp(origin.row, origin.row + side - 1);
                assignment[t] = GridCoord::new(col, row);
            }
        }
        Mapping::new(assignment)
    }
}

/// Simulated annealing over interior placements.
#[derive(Debug, Clone)]
pub struct AnnealingMapper {
    rng: DetRng,
    cost: CostModel,
    iterations: u32,
    /// Weight of the hotspot term relative to total energy; 0 optimizes
    /// total energy only.
    pub hotspot_weight: f64,
}

impl AnnealingMapper {
    /// Seeded constructor with the objective's cost model.
    pub fn new(seed: u64, cost: CostModel, iterations: u32, hotspot_weight: f64) -> Self {
        AnnealingMapper {
            rng: DetRng::stream(seed, 0x51A),
            cost,
            iterations,
            hotspot_weight,
        }
    }

    fn objective(&self, qt: &QuadTree, m: &Mapping) -> f64 {
        let c = MappingCost::evaluate(qt, m, &self.cost);
        c.total_energy + self.hotspot_weight * c.max_node_energy * qt.side as f64
    }
}

impl Mapper for AnnealingMapper {
    fn name(&self) -> &'static str {
        "annealed"
    }

    fn map(&mut self, qt: &QuadTree) -> Mapping {
        let interior: Vec<TaskId> = qt
            .graph
            .tasks()
            .iter()
            .filter(|t| t.kind == TaskKind::Processing)
            .map(|t| t.id)
            .collect();
        let mut current = QuadrantMapper.map(qt);
        if interior.is_empty() {
            return current;
        }
        let mut current_obj = self.objective(qt, &current);
        let mut best = current.clone();
        let mut best_obj = current_obj;
        let t0 = (current_obj / 10.0).max(1.0);

        for i in 0..self.iterations {
            let temp = t0 * (1.0 - f64::from(i) / f64::from(self.iterations)).max(1e-3);
            let t = interior[self.rng.bounded_usize(interior.len())];
            let (origin, side) = qt.extent[t];
            let old = current.node_of(t);
            let candidate = GridCoord::new(
                origin.col + self.rng.bounded_u64(u64::from(side)) as u32,
                origin.row + self.rng.bounded_u64(u64::from(side)) as u32,
            );
            if candidate == old {
                continue;
            }
            current.assign(t, candidate);
            let obj = self.objective(qt, &current);
            let accept =
                obj <= current_obj || self.rng.unit_f64() < (-(obj - current_obj) / temp).exp();
            if accept {
                current_obj = obj;
                if obj < best_obj {
                    best_obj = obj;
                    best = current.clone();
                }
            } else {
                current.assign(t, old);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::check_all;
    use crate::quadtree::quadtree_task_graph;

    fn qt(side: u32) -> QuadTree {
        quadtree_task_graph(side, &|_| 1, &|_| 1)
    }

    #[test]
    fn quadrant_mapping_matches_paper_figure3() {
        // §4.2: root at location 0; level-1 tasks at locations 0, 4, 8, 12.
        let qt = qt(4);
        let m = QuadrantMapper.map(&qt);
        assert_eq!(m.node_of(qt.root()), GridCoord::new(0, 0));
        let locations: Vec<usize> = qt.ids_by_level[1]
            .iter()
            .map(|&t| wsn_core::Hierarchy::new(4).morton_index(m.node_of(t)))
            .collect();
        assert_eq!(locations, vec![0, 4, 8, 12]);
        assert_eq!(check_all(&qt, &m), Vec::new());
    }

    #[test]
    fn all_mappers_produce_feasible_mappings() {
        let qt = qt(8);
        let mut mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(QuadrantMapper),
            Box::new(RandomFeasibleMapper::new(1)),
            Box::new(CentroidMapper),
            Box::new(AnnealingMapper::new(1, CostModel::uniform(), 200, 0.0)),
        ];
        for mapper in &mut mappers {
            let m = mapper.map(&qt);
            assert_eq!(
                check_all(&qt, &m),
                Vec::new(),
                "{} infeasible",
                mapper.name()
            );
            assert_eq!(m.len(), qt.graph.task_count());
        }
    }

    #[test]
    fn quadrant_cost_matches_estimator() {
        // MappingCost on the paper mapping must agree with the closed-form
        // estimator (same model, two independent derivations).
        for side in [2u32, 4, 8] {
            let qt = qt(side);
            let m = QuadrantMapper.map(&qt);
            let c = MappingCost::evaluate(&qt, &m, &CostModel::uniform());
            let e =
                wsn_core::quadtree_merge_estimate(side, &CostModel::uniform(), &|_| 1, &|_| 1, 1);
            assert!(
                (c.total_energy - e.total_energy).abs() < 1e-9,
                "side {side}: {} vs {}",
                c.total_energy,
                e.total_energy
            );
            assert_eq!(c.critical_path_ticks, e.latency_ticks, "side {side}");
        }
    }

    #[test]
    fn centroid_shortens_links_but_misaligns_leaders() {
        let qt = qt(8);
        let quadrant = MappingCost::evaluate(&qt, &QuadrantMapper.map(&qt), &CostModel::uniform());
        let centroid = MappingCost::evaluate(&qt, &CentroidMapper.map(&qt), &CostModel::uniform());
        // Centroid placement cannot be worse on total energy: each parent
        // sits centrally among its children.
        assert!(centroid.total_energy <= quadrant.total_energy);
    }

    #[test]
    fn annealing_no_worse_than_its_start() {
        let qt = qt(8);
        let cost = CostModel::uniform();
        let start = MappingCost::evaluate(&qt, &QuadrantMapper.map(&qt), &cost);
        let mut annealer = AnnealingMapper::new(7, cost, 500, 0.0);
        let annealed = MappingCost::evaluate(&qt, &annealer.map(&qt), &cost);
        assert!(annealed.total_energy <= start.total_energy + 1e-9);
    }

    #[test]
    fn random_mapper_is_deterministic_per_seed() {
        let qt = qt(4);
        let a = RandomFeasibleMapper::new(9).map(&qt);
        let b = RandomFeasibleMapper::new(9).map(&qt);
        assert_eq!(a, b);
        let c = RandomFeasibleMapper::new(10).map(&qt);
        assert_ne!(a, c);
    }

    #[test]
    fn self_colocated_edges_cost_nothing() {
        let qt = qt(2);
        let m = QuadrantMapper.map(&qt);
        // Root sits on leaf 0's node: that edge contributes zero energy.
        let c = MappingCost::evaluate(&qt, &m, &CostModel::uniform());
        // 5 tasks × compute 1 + three remote children (hops 1,1,2) × 2.
        assert!((c.total_energy - (5.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn critical_path_of_trivial_tree_is_zero() {
        let qt = qt(1);
        let m = QuadrantMapper.map(&qt);
        let c = MappingCost::evaluate(&qt, &m, &CostModel::uniform());
        assert_eq!(c.critical_path_ticks, 0);
        assert_eq!(c.total_energy, 1.0);
    }
}
