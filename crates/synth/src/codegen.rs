//! Code generation: prints a [`GuardedProgram`] in the paper's Figure-4
//! concrete syntax.

use crate::program::{Action, Expr, Guard, GuardedProgram};
use std::fmt::Write as _;

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Add(a, b) => format!("{} + {}", render_expr(a), render_expr(b)),
        Expr::Sub(a, b) => format!("{} - {}", render_expr(a), render_expr(b)),
        Expr::MsgsReceivedAt(i) => format!("msgsReceived[{}]", render_expr(i)),
    }
}

fn render_guard(g: &Guard) -> String {
    match g {
        Guard::Eq(a, b) => format!("{} = {}", render_expr(a), render_expr(b)),
        Guard::Received => "received mGraph".to_string(),
        Guard::IncomingFromSelf => "senderCoord = myCoords".to_string(),
        Guard::And(a, b) => format!("{} and {}", render_guard(a), render_guard(b)),
    }
}

fn render_actions(actions: &[Action], indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    for a in actions {
        match a {
            Action::Set(name, e) => {
                let _ = writeln!(out, "{pad}{name} = {}", render_expr(e));
            }
            Action::ComputeLocalSummary => {
                let _ = writeln!(out, "{pad}compute mySubGraph[0] from intra-cell readings");
            }
            Action::MergeIncoming => {
                let _ = writeln!(
                    out,
                    "{pad}merge(mGraph.msubGraph, mySubGraph[mGraph.mrecLevel])"
                );
            }
            Action::CountIncoming => {
                let _ = writeln!(out, "{pad}msgsReceived[mGraph.mrecLevel]++");
            }
            Action::IfElse {
                cond,
                then,
                otherwise,
            } => {
                let _ = writeln!(out, "{pad}if ({})", render_guard(cond));
                render_actions(then, indent + 4, out);
                if !otherwise.is_empty() {
                    let _ = writeln!(out, "{pad}else");
                    render_actions(otherwise, indent + 4, out);
                }
            }
            Action::SendSummaryToLeader {
                group_level,
                data_level,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}message = {{myCoords, mySubGraph[{}], {}}}",
                    render_expr(data_level),
                    render_expr(group_level),
                );
                let _ = writeln!(
                    out,
                    "{pad}send message to Leader({})",
                    render_expr(group_level)
                );
            }
            Action::ExfiltrateSummary { level } => {
                let _ = writeln!(out, "{pad}exfiltrate mySubGraph[{}]", render_expr(level));
            }
        }
    }
}

/// Renders `program` in Figure 4's notation.
pub fn render_figure4(program: &GuardedProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// synthesized program: {}", program.name);
    let _ = writeln!(out, "State (initial values) :");
    let scalars: Vec<String> = program
        .state
        .iter()
        .map(|d| format!("{}(= {})", d.name, render_expr(&d.init)))
        .collect();
    let _ = writeln!(out, "    {},", scalars.join(", "));
    let _ = writeln!(out, "    mySubGraph[0..maxrecLevel](= NULL), myCoords,");
    let _ = writeln!(out, "    msgsReceived[0..maxrecLevel](= 0)");
    let _ = writeln!(out);
    let _ = writeln!(out, "Message alphabet :");
    let _ = writeln!(out, "    mGraph = {{senderCoord, msubGraph, mrecLevel}}");
    for rule in &program.rules {
        let _ = writeln!(out);
        let _ = writeln!(out, "Condition : {}", render_guard(&rule.guard));
        let mut body = String::new();
        render_actions(&rule.actions, 12, &mut body);
        let body = body.replacen("            ", "Action    : ", 1);
        let _ = write!(out, "{body}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::synthesize_quadtree_program;

    #[test]
    fn rendering_contains_figure4_landmarks() {
        let p = synthesize_quadtree_program(2);
        let text = render_figure4(&p);
        for landmark in [
            "State (initial values) :",
            "start(= false)",
            "recLevel(= 0)",
            "maxrecLevel(= 2)",
            "Message alphabet :",
            "mGraph = {senderCoord, msubGraph, mrecLevel}",
            "Condition : start = true",
            "compute mySubGraph[0] from intra-cell readings",
            "Condition : received mGraph",
            "merge(mGraph.msubGraph, mySubGraph[mGraph.mrecLevel])",
            "msgsReceived[mGraph.mrecLevel]++",
            "Condition : transmit = true",
            "send message to Leader(recLevel)",
            "exfiltrate mySubGraph[maxrecLevel]",
            "Condition : msgsReceived[recLevel] = 3",
            "recLevel = recLevel + 1",
        ] {
            assert!(text.contains(landmark), "missing {landmark:?} in:\n{text}");
        }
    }

    #[test]
    fn every_rule_starts_an_action_block() {
        let p = synthesize_quadtree_program(1);
        let text = render_figure4(&p);
        assert_eq!(text.matches("Condition :").count(), 4);
        assert_eq!(text.matches("Action    :").count(), 4);
    }

    #[test]
    fn rendering_is_stable() {
        let p = synthesize_quadtree_program(3);
        assert_eq!(render_figure4(&p), render_figure4(&p));
    }
}
