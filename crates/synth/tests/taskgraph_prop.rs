//! Property test: `TaskGraph::topological_order` on randomly generated
//! graphs, driven by the simulator's deterministic RNG so every failure
//! is reproducible from the printed seed.
//!
//! Construction: draw a random permutation as the hidden "true" order and
//! only add edges that go forward along it — acyclic by construction.
//! The order returned by Kahn's algorithm must then place every edge's
//! producer before its consumer. Injecting one back edge along the true
//! order creates a cycle, and `topological_order` must return `None`.

use wsn_sim::DetRng;
use wsn_synth::{TaskGraph, TaskId, TaskKind};

/// Builds a random DAG over `n` tasks: `position[i]` is a random
/// permutation and each candidate edge is kept with ~1/3 probability,
/// oriented forward along the permutation.
fn random_dag(rng: &mut DetRng, n: usize) -> (TaskGraph, Vec<usize>) {
    let mut g = TaskGraph::new();
    for _ in 0..n {
        g.add_task(TaskKind::Processing, 0, 1);
    }
    let mut order: Vec<TaskId> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut position = vec![0usize; n];
    for (pos, &t) in order.iter().enumerate() {
        position[t] = pos;
    }
    for a in 0..n {
        for b in 0..n {
            if position[a] < position[b] && rng.bounded_u64(3) == 0 {
                g.try_add_edge(a, b, 1 + rng.bounded_u64(4)).unwrap();
            }
        }
    }
    (g, position)
}

#[test]
fn topological_order_respects_every_edge_of_random_dags() {
    for case in 0..200u64 {
        let mut rng = DetRng::stream(0x7090, case);
        let n = 2 + rng.bounded_usize(14);
        let (g, _) = random_dag(&mut rng, n);
        let order = g
            .topological_order()
            .unwrap_or_else(|| panic!("case {case}: DAG reported as cyclic"));
        assert_eq!(order.len(), n, "case {case}: order misses tasks");
        let mut pos = vec![usize::MAX; n];
        for (i, &t) in order.iter().enumerate() {
            assert_eq!(pos[t], usize::MAX, "case {case}: task {t} listed twice");
            pos[t] = i;
        }
        for e in g.edges() {
            assert!(
                pos[e.from] < pos[e.to],
                "case {case}: edge {} -> {} violated by order {order:?}",
                e.from,
                e.to
            );
        }
        assert!(g.is_dag());
    }
}

#[test]
fn injected_back_edge_always_makes_order_none() {
    let mut found_with_edges = 0u32;
    for case in 0..200u64 {
        let mut rng = DetRng::stream(0xBACC, case);
        let n = 3 + rng.bounded_usize(12);
        let (mut g, position) = random_dag(&mut rng, n);
        // Pick a forward edge (existing or fresh) and close a cycle along
        // it: an edge from some task back to one earlier in the true
        // order that reaches it.
        let Some(&fwd) = g.edges().first() else {
            continue; // sparse draw with no edges: nothing to invert
        };
        found_with_edges += 1;
        assert!(position[fwd.from] < position[fwd.to]);
        match g.try_add_edge(fwd.to, fwd.from, 1) {
            Ok(()) => {}
            Err(e) => panic!("case {case}: reverse edge rejected: {e}"),
        }
        assert_eq!(
            g.topological_order(),
            None,
            "case {case}: cycle {} -> {} -> {} not detected",
            fwd.from,
            fwd.to,
            fwd.from
        );
        assert!(!g.is_dag());
    }
    // The generator must actually exercise the interesting branch.
    assert!(
        found_with_edges > 150,
        "only {found_with_edges} cyclic cases"
    );
}

#[test]
fn determinism_same_seed_same_graph() {
    let build = || {
        let mut rng = DetRng::stream(42, 7);
        random_dag(&mut rng, 10).0
    };
    let (a, b) = (build(), build());
    assert_eq!(a.edges(), b.edges());
    assert_eq!(a.topological_order(), b.topological_order());
}
