//! Property tests over the sharded kernel's configuration space.
//!
//! The determinism contract says the worker count and quadrant cut are
//! pure performance knobs: for ANY seed, ANY legal cut level, and ANY
//! worker count — one lane, two lanes, one lane per shard, or more
//! lanes than shards — the sharded kernel replays the sequential
//! reference bit for bit across every observable surface (trace
//! document with causal log, exfiltrated payload order, metric bundle).

use proptest::prelude::*;
use wsn_core::{GridCoord, NodeApi, NodeProgram};
use wsn_net::{DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::{ParallelConfig, PhysicalRuntime};

struct Gather {
    expected: usize,
    seen: usize,
    sum: f64,
}

impl NodeProgram<f64> for Gather {
    fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
        let v = api.read_sensor();
        api.compute(1);
        if api.coord() != GridCoord::new(0, 0) {
            api.send(GridCoord::new(0, 0), 1, v);
        } else {
            self.sum += v;
            self.seen += 1;
        }
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, payload: f64) {
        self.sum += payload;
        self.seen += 1;
        if self.seen == self.expected {
            api.exfiltrate(self.sum);
        }
    }
}

/// Runs the seeded side-4 gather mission on the requested engine and
/// returns every observable surface, rendered for exact comparison.
fn observables(seed: u64, parallel: Option<ParallelConfig>) -> (String, String, String) {
    let spec = DeploymentSpec::per_cell(4, 3);
    let deployment = spec.generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut rt = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        |c| f64::from(c.col + c.row),
    );
    rt.enable_telemetry(true);
    rt.enable_causal_tracing();
    assert!(rt.run_topology_emulation().complete);
    assert!(rt.run_binding().unique);
    rt.install_programs(|_| {
        Box::new(Gather {
            expected: 16,
            seen: 0,
            sum: 0.0,
        })
    });
    let app = match &parallel {
        None => rt.run_application(),
        Some(cfg) => rt.run_application_parallel(cfg),
    };
    assert_eq!(
        app.exfil_count, 1,
        "gather must complete under {parallel:?}"
    );
    let doc = format!("{:?}", rt.record_trace());
    let metrics = format!("{:?}", rt.metrics(&app));
    let exfil = format!("{:?}", rt.take_exfiltrated());
    (doc, exfil, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 1 worker, 2 workers, one worker per shard, and an oversubscribed
    /// N+7 all produce the sequential observables — including the
    /// 1-worker sharded run, which exercises the barrier machinery with
    /// no actual parallelism.
    #[test]
    fn worker_count_never_changes_observables(seed in 0u64..512, cut_level in 1u32..3u32) {
        let sequential = observables(seed, None);
        // The quadrant plan at cut level c has 4^c shards.
        let shards = 4usize.pow(cut_level);
        for workers in [1, 2, shards, shards + 7] {
            let got = observables(seed, Some(ParallelConfig { cut_level, workers }));
            prop_assert_eq!(
                &got,
                &sequential,
                "cut {} with {} workers diverged from sequential",
                cut_level,
                workers
            );
        }
    }
}
