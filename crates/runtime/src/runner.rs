//! Orchestration of the runtime phases on one deployment.
//!
//! [`PhysicalRuntime`] owns the kernel, the shared medium, and one
//! [`RtNode`] actor per physical node. The harness drives it through the
//! paper's pipeline:
//!
//! 1. [`PhysicalRuntime::run_topology_emulation`] — §5.1;
//! 2. [`PhysicalRuntime::run_binding`] — §5.2 election + announce flood;
//! 3. [`PhysicalRuntime::install_programs`] + [`PhysicalRuntime::run_application`]
//!    — execute the synthesized per-virtual-node programs on the emulated
//!    grid.
//!
//! Each phase runs the kernel to quiescence, so phases never interleave —
//! matching the paper's presentation where emulation and binding complete
//! before the application starts. [`PhysicalRuntime::refresh_after_churn`]
//! re-runs phases 1–2, modeling the paper's "the above protocol should
//! execute periodically".

use crate::messages::RtMsg;
use crate::node::{
    dir_idx, ArqConfig, ElectionPolicy, HeartbeatConfig, RtNode, RtShared, TAG_ANNOUNCE, TAG_APP,
    TAG_BIND, TAG_SAMPLE, TAG_TOPO,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use wsn_core::ShardPlan;
use wsn_core::{
    Direction, Exfiltrated, GridCoord, NodeProgram, RunMetrics, VirtualGrid, CTR_DATA_UNITS,
    CTR_MESSAGES,
};
use wsn_net::{
    ChaosError, ChaosPlan, Deployment, EnergyKind, EnergyLedger, LinkModel, Medium, RadioModel,
    SharedMedium, UnitDiskGraph,
};
use wsn_obs::{
    labeled, FixedHistogram, FlightDump, NodeSnapshot, Registry, SpanNode, SpanRecorder,
    TraceDocument, TraceMeta,
};
use wsn_sim::{
    order_tap, shared_causal_log, ActorId, FlightRecorder, Kernel, RunReport, ShardObs,
    ShardSchedule, SharedCausalLog, SimTime, Stats, StopReason, Tracer, WindowHist,
    WINDOW_HIST_UPPERS,
};

/// Result of one topology-emulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoReport {
    /// Ticks from kick-off to quiescence.
    pub elapsed_ticks: u64,
    /// Table broadcasts sent.
    pub broadcasts: u64,
    /// Receptions ignored because they had crossed a cell boundary.
    pub suppressed: u64,
    /// Whether every live node filled every direction that leads to an
    /// existing neighbor cell.
    pub complete: bool,
}

/// Result of one binding (election + announce) run.
#[derive(Debug, Clone, PartialEq)]
pub struct BindReport {
    /// Ticks for both sub-phases.
    pub elapsed_ticks: u64,
    /// Elected leader per cell.
    pub leaders: HashMap<GridCoord, usize>,
    /// Whether every cell elected exactly one leader.
    pub unique: bool,
    /// Whether every live node learned its leader and parent.
    pub tree_complete: bool,
    /// Delta broadcasts sent during the election.
    pub delta_broadcasts: u64,
}

/// Result of one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Ticks from application start to quiescence.
    pub elapsed_ticks: u64,
    /// Ticks from application start to the last exfiltration.
    pub last_exfil_ticks: Option<u64>,
    /// Results exfiltrated during this run.
    pub exfil_count: usize,
    /// Logical (virtual-level) messages sent by programs.
    pub messages: u64,
    /// Physical forwarding hops taken by those messages.
    pub physical_hops: u64,
    /// ARQ retransmissions during this run (0 when ARQ is off).
    pub retransmissions: u64,
}

/// Factory producing a node program per virtual node (the synthesis
/// output handed to the runtime).
type BoxedFactory<P> = Box<dyn FnMut(GridCoord) -> Box<dyn NodeProgram<P>>>;

/// Configuration of a sustained mission: repeated application rounds with
/// node churn and periodic protocol refresh (§5.1: "the above protocol
/// should execute periodically" because "existing nodes can leave or
/// fail").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissionConfig {
    /// Application rounds to run.
    pub rounds: u32,
    /// Re-run topology emulation + binding every this many rounds
    /// (0 = never refresh).
    pub refresh_every: u32,
    /// Random live nodes killed before each round.
    pub churn_per_round: usize,
    /// Seed for the churn choices.
    pub churn_seed: u64,
    /// Stop the mission as soon as any node has died (for lifetime
    /// studies under energy budgets).
    pub stop_on_first_death: bool,
}

/// Outcome of a sustained mission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissionReport {
    /// Rounds attempted.
    pub rounds: u32,
    /// Rounds whose application produced the expected exfiltrations.
    pub completed: u32,
    /// Completion flag per round, in order.
    pub per_round: Vec<bool>,
    /// Nodes killed by churn.
    pub killed: usize,
    /// Protocol refreshes performed.
    pub refreshes: u32,
    /// Live nodes at the end.
    pub survivors: usize,
}

/// Configuration of the self-healing loop driven by
/// [`PhysicalRuntime::run_chaos_mission`]: the application runs in
/// bounded epochs, leader liveness is watched through heartbeat leases,
/// and the §5.1 "executes periodically" re-emulation/re-binding fires
/// automatically on lease expiry or on a fixed period — no test driver
/// calls [`PhysicalRuntime::refresh_after_churn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfHealConfig {
    /// Leader beacon period and follower lease.
    pub heartbeat: HeartbeatConfig,
    /// Simulated ticks per epoch; liveness is checked at each boundary.
    pub epoch_ticks: u64,
    /// Epochs before the mission gives up (bounds wall-clock under any
    /// chaos schedule).
    pub max_epochs: u32,
    /// Time horizon for each bounded protocol re-run during a heal.
    pub phase_budget_ticks: u64,
    /// Kernel event budget per bounded run; exhausting it reports a
    /// stall (livelock guard) instead of hanging.
    pub max_events_per_epoch: u64,
    /// Also re-emulate/re-bind every this many epochs even without an
    /// expired lease (0 = only heal on lease expiry).
    pub refresh_every_epochs: u32,
}

impl Default for SelfHealConfig {
    fn default() -> Self {
        SelfHealConfig {
            heartbeat: HeartbeatConfig {
                period_ticks: 25,
                lease_ticks: 120,
            },
            epoch_ticks: 150,
            max_epochs: 24,
            phase_budget_ticks: 400,
            max_events_per_epoch: 2_000_000,
            refresh_every_epochs: 0,
        }
    }
}

/// Outcome of one self-healing chaos mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosMissionReport {
    /// Epochs executed (≤ `max_epochs`).
    pub epochs: u32,
    /// Self-heals performed (lease-triggered or periodic).
    pub heals: u32,
    /// Expired leader leases observed at epoch boundaries.
    pub leases_expired: u64,
    /// Cells whose leader changed across a heal.
    pub reelections: u64,
    /// Exfiltrations produced during the mission.
    pub exfil_count: usize,
    /// The kernel event budget was exhausted (suspected livelock).
    pub stalled: bool,
    /// `expected_exfils` results arrived.
    pub completed: bool,
    /// Simulated ticks the mission consumed.
    pub elapsed_ticks: u64,
}

/// Configuration of sharded (parallel-scheduler) execution: the network
/// is split into the level-`cut_level` quad-tree quadrants of
/// [`wsn_core::ShardPlan`], one scheduler worker per quadrant, with
/// cross-shard messages exchanged at window barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Quad-tree cut level (1 = 4 shards, 2 = 16, …). Must not exceed the
    /// grid's quad-tree depth.
    pub cut_level: u32,
    /// Logical worker lanes the shards are striped over. Any value
    /// produces identical observables (the property tests enforce this);
    /// it exists to exercise stripe-order independence.
    pub workers: usize,
}

impl ParallelConfig {
    /// One worker lane per shard at `cut_level`.
    pub fn at_cut(cut_level: u32) -> Self {
        ParallelConfig {
            cut_level,
            workers: 1,
        }
    }
}

/// A deployed network executing the runtime system.
pub struct PhysicalRuntime<P: Clone + 'static> {
    kernel: Kernel<RtMsg<P>>,
    medium: SharedMedium,
    deployment: Deployment,
    grid: VirtualGrid,
    actors: Vec<ActorId>,
    shared: Rc<RtShared<P>>,
    factory: Option<BoxedFactory<P>>,
    exfil_seen: usize,
    seed: u64,
    /// Kernel events dispatched across every phase so far.
    events_total: u64,
    /// Phase-scoped counters/histograms; disabled unless
    /// [`PhysicalRuntime::enable_telemetry`] was called.
    telemetry: Registry,
    /// Per-shard accounting from sharded runs (`shard=`-labeled keys),
    /// kept apart from `telemetry` because it exists only on the sharded
    /// engine: folding it into the main registry would make
    /// [`PhysicalRuntime::record_trace`] documents differ between
    /// engines, which the bit-identical differential suite forbids.
    shard_telemetry: Registry,
    /// Phase span tree, populated only while telemetry is enabled.
    spans: SpanRecorder,
    /// Causal event log shared with the medium and every node; `None`
    /// unless [`PhysicalRuntime::enable_causal_tracing`] was called.
    causal: Option<SharedCausalLog>,
    /// Reusable per-node transmit-energy scratch for the application
    /// phase's telemetry delta — indexed ledger reads instead of a fresh
    /// [`wsn_net::EnergySnapshot`] vector per run.
    tx_scratch: Vec<f64>,
    /// Reusable per-cell leader scratch for the self-heal loop — the
    /// steady-state hot path must not allocate per epoch.
    leader_scratch: Vec<Option<usize>>,
}

impl<P: Clone + 'static> PhysicalRuntime<P> {
    /// Builds the runtime over `deployment`.
    ///
    /// * `radio`/`link` — physical parameters; `radio.range` should be at
    ///   least [`wsn_net::CellGrid::range_for_adjacent_cell_reachability`]
    ///   for the paper's adjacency assumption to hold;
    /// * `budget` — optional per-node energy budget (lifetime studies);
    /// * `control_units` — size of a protocol control message;
    /// * `field` — sensor readings by point of coverage;
    /// * `seed` — determinism root.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        deployment: Deployment,
        radio: RadioModel,
        link: LinkModel,
        budget: Option<f64>,
        control_units: u64,
        seed: u64,
        field: impl Fn(GridCoord) -> f64 + 'static,
    ) -> Self {
        let n = deployment.node_count();
        let graph = UnitDiskGraph::build(deployment.positions(), radio.range);
        let ledger = match budget {
            Some(b) => EnergyLedger::with_budget(n, b),
            None => EnergyLedger::unlimited(n),
        };
        let medium = Medium::new(graph, radio, link, ledger).shared();
        let grid = VirtualGrid::new(deployment.grid().cells_per_side());
        let shared = Rc::new(RtShared {
            grid,
            field: Box::new(field),
            exfil: RefCell::new(Vec::new()),
            tap: RefCell::new(None),
            staged_exfil: RefCell::new(Vec::new()),
        });

        let mut kernel: Kernel<RtMsg<P>> = Kernel::new(seed);
        let mut actors = Vec::with_capacity(n);
        for i in 0..n {
            let cell = deployment.cell_of_node(i);
            let neighbors = {
                let m = medium.borrow();
                m.graph()
                    .neighbors(i)
                    .iter()
                    .map(|&j| (j, deployment.cell_of_node(j)))
                    .collect()
            };
            let node = RtNode::new(
                i,
                cell,
                deployment.position(i),
                deployment.grid().cell_center(cell),
                neighbors,
                medium.clone(),
                shared.clone(),
                control_units,
            );
            let a = kernel.add_actor(Box::new(node));
            medium.borrow_mut().bind_actor(i, a);
            actors.push(a);
        }
        PhysicalRuntime {
            kernel,
            medium,
            deployment,
            grid,
            actors,
            shared,
            factory: None,
            exfil_seen: 0,
            seed,
            events_total: 0,
            telemetry: Registry::disabled(),
            shard_telemetry: Registry::disabled(),
            spans: SpanRecorder::new(),
            causal: None,
            tx_scratch: Vec::new(),
            leader_scratch: Vec::new(),
        }
    }

    /// Turns the telemetry layer on: phase spans, a live counter registry
    /// mirroring the phase reports, and kernel dispatch-latency /
    /// queue-depth histograms. With `trace_events`, the kernel also
    /// records every dispatched event (memory grows with the run — meant
    /// for inspection traces, not parameter sweeps).
    pub fn enable_telemetry(&mut self, trace_events: bool) {
        self.telemetry = Registry::enabled();
        self.shard_telemetry = Registry::enabled();
        self.kernel.enable_metrics();
        if trace_events {
            self.kernel.set_tracer(Tracer::enabled());
        }
    }

    /// The telemetry registry (disabled and empty unless
    /// [`PhysicalRuntime::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Per-shard accounting registry filled by sharded runs (empty and
    /// disabled unless telemetry is on — and untouched by sequential
    /// runs, which have no shards). Keys carry a `shard=` label built
    /// with [`wsn_obs::labeled`]; merge it into a trace document with
    /// [`TraceDocument::absorb_registry`] when exporting shard metrics.
    pub fn shard_telemetry(&self) -> &Registry {
        &self.shard_telemetry
    }

    /// Arms the per-shard flight recorder: the last `capacity`
    /// dispatches of every shard at `cut_level` (plus the global
    /// pseudo-shard) are retained in preallocated rings for post-mortem
    /// dumps. The actor→shard map is the same quad-tree assignment the
    /// sharded scheduler uses, and both the sequential and sharded
    /// engines feed the recorder in canonical dispatch order — so
    /// same-seed dumps are byte-identical across engines. Recording
    /// never allocates, so the recorder may stay armed under the
    /// `allocs_per_event = 0` gate.
    ///
    /// Requires a power-of-two grid side and a cut level within the
    /// quad-tree depth (the same constraint as sharded execution).
    pub fn enable_flight_recorder(&mut self, cut_level: u32, capacity: usize) {
        let side = self.grid.side();
        assert!(
            side.is_power_of_two() && cut_level >= 1 && cut_level <= side.trailing_zeros(),
            "flight recorder needs a power-of-two side and a valid cut level"
        );
        let plan = ShardPlan::new(side, cut_level as u8);
        let map: Vec<u32> = (0..self.deployment.node_count())
            .map(|i| {
                let cell = self.deployment.cell_of_node(i);
                plan.shard_of(GridCoord::new(cell.col, cell.row))
            })
            .collect();
        self.kernel
            .set_flight_recorder(FlightRecorder::new(map, plan.shard_count(), capacity));
    }

    /// Snapshots the armed flight recorder into a dump tagged with
    /// `reason`; `None` when [`PhysicalRuntime::enable_flight_recorder`]
    /// was never called.
    pub fn flight_dump(&self, reason: &str) -> Option<FlightDump> {
        self.kernel
            .flight_recorder()
            .map(|rec| FlightDump::from_recorder(rec, reason))
    }

    /// Turns causal tracing on: every subsequent radio transmission,
    /// delivery, and application milestone (start, hop, merge completion,
    /// exfiltration) is Lamport-stamped into a shared [`wsn_sim::CausalLog`]
    /// that [`PhysicalRuntime::record_trace`] exports. Call it *after* the
    /// control phases (topology emulation, binding) and before
    /// [`PhysicalRuntime::run_application`] to capture an application-only
    /// happens-before DAG — the shape the critical-path profiler expects.
    pub fn enable_causal_tracing(&mut self) {
        let log = shared_causal_log();
        self.medium.borrow_mut().set_causal(log.clone());
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.enable_causal(log.clone());
            }
        }
        self.causal = Some(log);
    }

    /// The shared causal log, if [`PhysicalRuntime::enable_causal_tracing`]
    /// was called.
    pub fn causal_log(&self) -> Option<&SharedCausalLog> {
        self.causal.as_ref()
    }

    /// The recorded phase spans.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    fn span_open(&mut self, name: &str) {
        if self.telemetry.is_enabled() {
            self.spans.open(name, self.kernel.now());
        }
    }

    fn span_close(&mut self, events: u64) {
        if self.telemetry.is_enabled() {
            self.spans.close(self.kernel.now(), events);
        }
    }

    /// The deployment this runtime executes on.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The virtual grid being emulated.
    pub fn grid(&self) -> VirtualGrid {
        self.grid
    }

    /// The shared medium (energy ledger, liveness, connectivity).
    pub fn medium(&self) -> &SharedMedium {
        &self.medium
    }

    /// Swaps the link model for subsequent traffic — e.g. reliable links
    /// for the control phases, lossy links for the application.
    pub fn set_link_model(&mut self, link: LinkModel) {
        self.medium.borrow_mut().set_link(link);
    }

    /// Swaps the channel-access discipline (e.g. TDMA for a synchronized
    /// application phase — §2's synchronous network model).
    pub fn set_mac_model(&mut self, mac: wsn_net::MacModel) {
        self.medium.borrow_mut().set_mac(mac);
    }

    /// Gives every node additive Gaussian sensor noise (σ =
    /// `noise_std_dev`), drawn deterministically from `seed`. With noise,
    /// the intra-cell sampling phase ([`PhysicalRuntime::run_sampling`])
    /// becomes meaningful: leaders average their followers' samples and
    /// suppress it.
    pub fn set_sampling_noise(&mut self, noise_std_dev: f64, seed: u64) {
        let mut rng = wsn_sim::DetRng::stream(seed, 0x5A3);
        for &a in &self.actors {
            let noise = rng.normal(0.0, noise_std_dev);
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.noise = noise;
            }
        }
    }

    /// Optional phase between binding and the application: followers ship
    /// their raw readings up the spanning tree; leaders aggregate the mean
    /// (the paper's "compute `mySubGraph[0]` from intra-cell readings").
    /// Returns `(elapsed ticks, samples delivered to leaders)`.
    pub fn run_sampling(&mut self) -> (u64, u64) {
        let start = self.kernel.now();
        let d0 = self.kernel.stats().counter("sample.delivered");
        self.span_open("sampling");
        for &a in &self.actors {
            self.kernel.schedule_timer(start, a, TAG_SAMPLE);
        }
        let run = self.kernel.run();
        self.events_total += run.events_processed;
        self.span_close(run.events_processed);
        let delivered = self.kernel.stats().counter("sample.delivered") - d0;
        self.telemetry.incr_by("phase.sample.delivered", delivered);
        (run.end_time - start, delivered)
    }

    /// Sets the leader-election policy on every node (takes effect at the
    /// next binding run or refresh).
    pub fn set_election_policy(&mut self, policy: ElectionPolicy) {
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.election_policy = policy;
            }
        }
    }

    /// Enables hop-by-hop ARQ (ack + retransmit) for application traffic
    /// on every node — the liveness extension EXP-12 motivates.
    pub fn enable_arq(&mut self, max_retries: u32, timeout_ticks: u64) {
        let cfg = ArqConfig {
            max_retries,
            timeout_ticks,
        };
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.arq = Some(cfg);
            }
        }
    }

    /// Kernel statistics.
    pub fn stats(&self) -> &Stats {
        self.kernel.stats()
    }

    /// Immutable view of physical node `i`'s protocol state.
    pub fn node(&self, i: usize) -> &RtNode<P> {
        self.kernel
            .actor::<RtNode<P>>(self.actors[i])
            .expect("node actor")
    }

    fn live_nodes(&self) -> Vec<usize> {
        let m = self.medium.borrow();
        (0..self.deployment.node_count())
            .filter(|&i| m.is_alive(i))
            .collect()
    }

    /// Phase 1: the §5.1 topology-emulation protocol.
    pub fn run_topology_emulation(&mut self) -> TopoReport {
        let start = self.kernel.now();
        let b0 = self.kernel.stats().counter("topo.broadcast");
        let s0 = self.kernel.stats().counter("topo.suppressed");
        self.span_open("topology-emulation");
        for &a in &self.actors {
            self.kernel.schedule_timer(start, a, TAG_TOPO);
        }
        let run = self.kernel.run();
        self.events_total += run.events_processed;
        self.span_close(run.events_processed);
        let report = TopoReport {
            elapsed_ticks: run.end_time - start,
            broadcasts: self.kernel.stats().counter("topo.broadcast") - b0,
            suppressed: self.kernel.stats().counter("topo.suppressed") - s0,
            complete: self.tables_complete(),
        };
        // Mirror the report into the registry so trace consumers see the
        // same numbers the harness does.
        self.telemetry
            .incr_by("phase.topo.broadcasts", report.broadcasts);
        self.telemetry
            .incr_by("phase.topo.suppressed", report.suppressed);
        report
    }

    fn tables_complete(&self) -> bool {
        self.live_nodes().iter().all(|&i| {
            let node = self.node(i);
            Direction::ALL.iter().all(|&d| {
                self.grid.neighbor(node.cell, d).is_none() || node.rtab[dir_idx(d)].is_some()
            })
        })
    }

    /// Checks the §5.1 route invariant for every live node and direction:
    /// following `rtab` next hops stays inside the node's cell and then
    /// terminates, in at most `cell population` steps, at a node of the
    /// adjacent cell — i.e. emulated routes cross exactly one boundary.
    pub fn verify_routes(&self) -> Result<(), String> {
        for &i in &self.live_nodes() {
            let node = self.node(i);
            for d in Direction::ALL {
                let Some(adj) = self.grid.neighbor(node.cell, d) else {
                    continue;
                };
                let mut cur = i;
                let bound = self.deployment.nodes_in_cell(node.cell).len() + 1;
                let mut steps = 0;
                loop {
                    let cur_node = self.node(cur);
                    let Some(next) = cur_node.rtab[dir_idx(d)] else {
                        return Err(format!("node {i} dir {d:?}: chain broke at {cur}"));
                    };
                    let next_cell = self.node(next).cell;
                    if next_cell == adj {
                        break; // crossed exactly one boundary
                    }
                    if next_cell != node.cell {
                        return Err(format!(
                            "node {i} dir {d:?}: hop {cur}->{next} left the cell sideways"
                        ));
                    }
                    steps += 1;
                    if steps > bound {
                        return Err(format!("node {i} dir {d:?}: routing cycle"));
                    }
                    cur = next;
                }
            }
        }
        Ok(())
    }

    /// Phase 2: §5.2 leader election, then the announce flood that builds
    /// per-cell spanning trees.
    pub fn run_binding(&mut self) -> BindReport {
        let start = self.kernel.now();
        let d0 = self.kernel.stats().counter("bind.broadcast");
        self.span_open("binding");
        self.span_open("election");
        for &a in &self.actors {
            self.kernel.schedule_timer(start, a, TAG_BIND);
        }
        let election = self.kernel.run();
        self.span_close(election.events_processed);
        // Announce sub-phase.
        let t = self.kernel.now();
        self.span_open("announce");
        for &a in &self.actors {
            self.kernel.schedule_timer(t, a, TAG_ANNOUNCE);
        }
        let run = self.kernel.run();
        self.span_close(run.events_processed);
        self.events_total += election.events_processed + run.events_processed;
        self.span_close(election.events_processed + run.events_processed);

        let mut leaders: HashMap<GridCoord, Vec<usize>> = HashMap::new();
        for &i in &self.live_nodes() {
            let node = self.node(i);
            if node.ldr {
                leaders.entry(node.cell).or_default().push(i);
            }
        }
        let cells: Vec<GridCoord> = self.grid.nodes().collect();
        let unique = cells.iter().all(|c| {
            leaders.get(c).map(Vec::len) == Some(1)
                || self
                    .deployment
                    .nodes_in_cell(*c)
                    .iter()
                    .all(|&i| !self.medium.borrow().is_alive(i))
        });
        let tree_complete = self
            .live_nodes()
            .iter()
            .all(|&i| self.node(i).leader.is_some());
        let report = BindReport {
            elapsed_ticks: run.end_time - start,
            leaders: leaders
                .into_iter()
                .filter_map(|(c, v)| (v.len() == 1).then(|| (c, v[0])))
                .collect(),
            unique,
            tree_complete,
            delta_broadcasts: self.kernel.stats().counter("bind.broadcast") - d0,
        };
        self.telemetry
            .incr_by("phase.bind.delta_broadcasts", report.delta_broadcasts);
        self.telemetry
            .incr_by("phase.bind.leaders", report.leaders.len() as u64);
        report
    }

    /// The leader bound to virtual node `cell`, if the election produced
    /// one.
    pub fn leader_of(&self, cell: GridCoord) -> Option<usize> {
        self.deployment
            .nodes_in_cell(cell)
            .iter()
            .copied()
            .find(|&i| self.node(i).ldr && self.medium.borrow().is_alive(i))
    }

    /// Installs the synthesized per-virtual-node programs on the elected
    /// leaders. Must run after [`PhysicalRuntime::run_binding`]; the
    /// factory is retained so [`PhysicalRuntime::refresh_after_churn`] can
    /// re-install on newly elected leaders.
    pub fn install_programs(
        &mut self,
        factory: impl FnMut(GridCoord) -> Box<dyn NodeProgram<P>> + 'static,
    ) {
        self.factory = Some(Box::new(factory));
        self.reinstall_programs();
    }

    fn reinstall_programs(&mut self) {
        assert!(self.factory.is_some(), "install_programs not called");
        // Clear stale programs first: a node that lost leadership (churn,
        // re-election) must not run its old program next round.
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.program = None;
            }
        }
        let cells: Vec<GridCoord> = self.grid.nodes().collect();
        for cell in cells {
            let leader = self
                .deployment
                .nodes_in_cell(cell)
                .iter()
                .copied()
                .find(|&i| {
                    self.kernel
                        .actor::<RtNode<P>>(self.actors[i])
                        .expect("node")
                        .ldr
                        && self.medium.borrow().is_alive(i)
                });
            let Some(leader) = leader else {
                continue; // cell dead or election failed; reported by BindReport
            };
            let program = (self.factory.as_mut().unwrap())(cell);
            let node = self
                .kernel
                .actor_mut::<RtNode<P>>(self.actors[leader])
                .expect("node actor");
            node.program = Some(program);
        }
    }

    /// Checks the mechanical preconditions of sharded execution:
    ///
    /// * the energy ledger must be unlimited (charges are deferred to
    ///   window barriers, so mid-window depletion checks must be vacuous);
    /// * the grid side must be a power of two with `cut_level` inside the
    ///   quad-tree depth (the [`ShardPlan`] constraint).
    ///
    /// The *semantic* precondition — a clean shard-interference
    /// certificate for the program being run — is the caller's to check
    /// via `wsn-analyze`'s `analyze_shards`; this layer cannot see the
    /// program source.
    pub fn parallel_preconditions(&self, cfg: &ParallelConfig) -> Result<(), String> {
        let side = self.grid.side();
        if !self.medium.borrow().ledger().is_unlimited() {
            return Err("energy ledger has a budget; sharded execution defers charges".into());
        }
        if !side.is_power_of_two() {
            return Err(format!("grid side {side} is not a power of two"));
        }
        let depth = side.trailing_zeros();
        if cfg.cut_level == 0 || cfg.cut_level > depth {
            return Err(format!(
                "cut level {} outside the quad-tree depth 1..={depth}",
                cfg.cut_level
            ));
        }
        Ok(())
    }

    /// Builds the actor→shard assignment from the quad-tree plan: node
    /// `i` goes to the shard of its deployment cell. Actors installed
    /// later (e.g. a chaos injector) fall outside the map and run on the
    /// global pseudo-shard.
    fn shard_schedule(&self, cfg: &ParallelConfig) -> ShardSchedule {
        let plan = ShardPlan::new(self.grid.side(), cfg.cut_level as u8);
        let map: Vec<u32> = (0..self.deployment.node_count())
            .map(|i| {
                let cell = self.deployment.cell_of_node(i);
                plan.shard_of(GridCoord::new(cell.col, cell.row))
            })
            .collect();
        let schedule = ShardSchedule::new(map, plan.shard_count()).with_workers(cfg.workers);
        // Sabotage knob for the CI inverted-mutation step: a deliberately
        // misordered boundary merge must make the differential suite
        // fail. Never set outside that check.
        if std::env::var_os("WSN_SHARD_MISORDER").is_some() {
            schedule.with_misordered_merge()
        } else {
            schedule
        }
    }

    /// Runs the kernel under `schedule`, wiring the window order tap into
    /// every order-sensitive shared component (energy ledger journal,
    /// causal log, exfiltration buffer) and replaying their staged side
    /// effects in canonical order at each barrier.
    fn run_kernel_sharded(
        &mut self,
        schedule: &ShardSchedule,
        until: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        let tap = order_tap();
        self.medium.borrow_mut().set_order_tap(tap.clone());
        if let Some(log) = &self.causal {
            log.borrow_mut().set_order_tap(tap.clone());
        }
        *self.shared.tap.borrow_mut() = Some(tap.clone());
        let medium = self.medium.clone();
        let causal = self.causal.clone();
        let shared = self.shared.clone();
        // Per-shard accounting rides along whenever telemetry is on. The
        // arrays are write-only bookkeeping outside every kernel
        // observable, so the bit-identical contract with the sequential
        // engine is untouched. WSN_SHARD_SKEW is the sabotage knob for
        // the CI inverted-mutation step: an undercounting tap must make
        // the TC010 reconciliation fail. Never set outside that check.
        let mut obs = if self.shard_telemetry.is_enabled() {
            let obs = ShardObs::new(schedule.shard_count());
            Some(if std::env::var_os("WSN_SHARD_SKEW").is_some() {
                obs.with_undercount_tap()
            } else {
                obs
            })
        } else {
            None
        };
        let run = self.kernel.run_sharded_observed(
            schedule,
            until,
            max_events,
            Some(&tap),
            |tags| {
                medium.borrow_mut().apply_energy_journal(tags);
                if let Some(log) = &causal {
                    log.borrow_mut().assign_order(tags);
                }
                shared.assign_exfil_order(tags);
            },
            obs.as_mut(),
        );
        if let Some(obs) = &obs {
            self.publish_shard_obs(obs, run.events_processed);
        }
        run
    }

    /// Publishes one sharded run's accounting into the telemetry
    /// registry under `shard=`-labeled keys. `dispatched` is the
    /// kernel's own event total for the run — an independent count the
    /// TC010 conformance check reconciles the per-shard counters
    /// against. Counters accumulate across runs; the per-shard window
    /// histograms are replaced with the latest run's snapshot.
    fn publish_shard_obs(&self, obs: &ShardObs, dispatched: u64) {
        let t = &self.shard_telemetry;
        t.gauge_set("shard.count", f64::from(obs.shard_count()));
        t.incr_by("shard.windows", obs.windows());
        t.incr_by("shard.events.total", dispatched);
        let shards = obs.shard_count() as usize;
        for slot in 0..obs.slot_count() {
            let label = if slot == shards {
                "global".to_string()
            } else {
                slot.to_string()
            };
            let l = [("shard", label.as_str())];
            t.incr_by(&labeled("shard.events", &l), obs.events(slot));
            t.gauge_set(
                &labeled("shard.queue.depth.max", &l),
                obs.depth_max(slot) as f64,
            );
            let mean = if obs.windows() == 0 {
                0.0
            } else {
                obs.depth_sum(slot) as f64 / obs.windows() as f64
            };
            t.gauge_set(&labeled("shard.queue.depth.mean", &l), mean);
            t.install_histogram(
                &labeled("shard.window.events", &l),
                window_hist_to_fixed(obs.window_hist(slot)),
            );
            if slot < shards {
                t.incr_by(&labeled("shard.cross.staged", &l), obs.cross_staged(slot));
                t.incr_by(&labeled("shard.cross.applied", &l), obs.cross_applied(slot));
                t.incr_by(&labeled("shard.barrier.stall", &l), obs.barrier_stall(slot));
            }
        }
    }

    /// Phase 3: runs the application to quiescence.
    pub fn run_application(&mut self) -> AppReport {
        self.run_application_with(None)
    }

    /// Phase 3 on the sharded scheduler: one logical worker per quad-tree
    /// shard at `cfg.cut_level`, with epoch-barrier synchronization.
    /// Produces **bit-identical** traces, causal logs, and metrics to
    /// [`PhysicalRuntime::run_application`] for the same seed.
    ///
    /// Panics when [`PhysicalRuntime::parallel_preconditions`] fails —
    /// drivers that want graceful sequential fallback check it first.
    pub fn run_application_parallel(&mut self, cfg: &ParallelConfig) -> AppReport {
        if let Err(refusal) = self.parallel_preconditions(cfg) {
            panic!("sharded execution refused: {refusal}");
        }
        let schedule = self.shard_schedule(cfg);
        self.run_application_with(Some(&schedule))
    }

    fn run_application_with(&mut self, schedule: Option<&ShardSchedule>) -> AppReport {
        assert!(
            self.factory.is_some(),
            "install_programs must be called before run_application"
        );
        let start = self.kernel.now();
        let m0 = self.kernel.stats().counter("rt.messages");
        let h0 = self.kernel.stats().counter("rt.app_hops");
        let r0 = self.kernel.stats().counter("rt.arq_retx");
        let u0 = self.kernel.stats().counter("rt.data_units");
        // Indexed ledger reads into a struct-held scratch: the hot path
        // must not materialize an `EnergySnapshot` vector per run.
        let mut tx_before = std::mem::take(&mut self.tx_scratch);
        tx_before.clear();
        if self.telemetry.is_enabled() {
            let medium = self.medium.borrow();
            let ledger = medium.ledger();
            tx_before
                .extend((0..ledger.node_count()).map(|n| ledger.consumed_kind(n, EnergyKind::Tx)));
        }
        self.span_open("application");
        for &a in &self.actors {
            self.kernel.schedule_timer(start, a, TAG_APP);
        }
        let run = match schedule {
            None => self.kernel.run(),
            Some(schedule) => self.run_kernel_sharded(schedule, None, Some(1_000_000_000)),
        };
        self.events_total += run.events_processed;
        if self.telemetry.is_enabled() {
            self.attach_merge_level_spans();
        }
        self.span_close(run.events_processed);
        let exfil = self.shared.exfil.borrow();
        let new_exfil = &exfil[self.exfil_seen..];
        let report = AppReport {
            elapsed_ticks: run.end_time - start,
            last_exfil_ticks: new_exfil.iter().map(|e| e.at - start).max(),
            exfil_count: new_exfil.len(),
            messages: self.kernel.stats().counter("rt.messages") - m0,
            physical_hops: self.kernel.stats().counter("rt.app_hops") - h0,
            retransmissions: self.kernel.stats().counter("rt.arq_retx") - r0,
        };
        let total = exfil.len();
        drop(exfil);
        self.exfil_seen = total;
        self.telemetry.incr_by(CTR_MESSAGES, report.messages);
        self.telemetry.incr_by(
            CTR_DATA_UNITS,
            self.kernel.stats().counter("rt.data_units") - u0,
        );
        self.telemetry
            .incr_by("phase.app.physical_hops", report.physical_hops);
        self.telemetry
            .incr_by("phase.app.retransmissions", report.retransmissions);
        self.telemetry
            .incr_by("phase.app.exfiltrations", report.exfil_count as u64);
        self.record_app_tx_by_class(&tx_before);
        self.tx_scratch = tx_before;
        report
    }

    /// Splits the application phase's transmit energy by *leadership
    /// class* — the highest hierarchy level a node's cell leads — and
    /// publishes one `phase.app.tx_energy.classK` gauge per class. The
    /// cost certifier checks these against its per-class intervals:
    /// transmit energy is broadcast-invariant (one charge per
    /// transmission, unlike receive energy, which overhearing inflates),
    /// so it is the per-node-class quantity the §4 analysis can predict.
    fn record_app_tx_by_class(&mut self, tx_before: &[f64]) {
        if !self.telemetry.is_enabled() || !self.grid.side().is_power_of_two() {
            return;
        }
        let hierarchy = wsn_core::Hierarchy::new(self.grid.side());
        let mut by_class = vec![0.0f64; usize::from(hierarchy.max_level()) + 1];
        let medium = self.medium.borrow();
        let ledger = medium.ledger();
        for node in 0..ledger.node_count() {
            let delta = ledger.consumed_kind(node, EnergyKind::Tx)
                - tx_before.get(node).copied().unwrap_or(0.0);
            let cell = self.deployment.cell_of_node(node);
            let class = hierarchy.highest_leader_level(GridCoord::new(cell.col, cell.row));
            by_class[usize::from(class)] += delta;
        }
        drop(medium);
        for (class, energy) in by_class.iter().enumerate() {
            self.telemetry
                .gauge_set(&format!("phase.app.tx_energy.class{class}"), *energy);
        }
    }

    /// Rebuilds per-quadtree-merge-level spans from the `merge.levelK.complete`
    /// histograms that instrumented programs (e.g. the native
    /// divide-and-conquer program) populate through the
    /// [`wsn_core::NodeApi`] stat hooks: a level's span runs from its first
    /// to its last completed merge, with one event per completion. Attached
    /// under the currently open span (the application phase).
    fn attach_merge_level_spans(&mut self) {
        let mut levels: Vec<(u32, SpanNode)> = Vec::new();
        for (key, h) in self.kernel.stats().histograms() {
            let Some(level) = key
                .strip_prefix("merge.level")
                .and_then(|rest| rest.strip_suffix(".complete"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            let (Some(min), Some(max)) = (h.min(), h.max()) else {
                continue;
            };
            levels.push((
                level,
                SpanNode::leaf(
                    format!("merge-level-{level}"),
                    SimTime::from_ticks(min as u64),
                    SimTime::from_ticks(max as u64),
                    h.count() as u64,
                ),
            ));
        }
        levels.sort_by_key(|&(level, _)| level);
        for (_, span) in levels {
            self.spans.attach(span);
        }
    }

    /// Exports the whole run as a [`TraceDocument`]: meta, the phase span
    /// forest, the telemetry registry, every kernel statistic (counters and
    /// histograms), per-node energy snapshots, and — when event tracing
    /// was enabled — the kernel event stream. Callable at any point; it
    /// reflects everything recorded so far.
    pub fn record_trace(&self) -> TraceDocument {
        let mut doc = TraceDocument::new();
        doc.meta = Some(TraceMeta {
            schema_version: wsn_obs::TRACE_SCHEMA_VERSION,
            grid: u64::from(self.grid.side()),
            seed: self.seed,
            nodes: self.deployment.node_count() as u64,
            total_ticks: self.kernel.now().ticks(),
            events: self.events_total,
        });
        doc.spans = self.spans.roots().to_vec();
        doc.absorb_registry(&self.telemetry);
        for (key, value) in self.kernel.stats().counters() {
            doc.counters.push((key.to_string(), value));
        }
        for (key, value) in self.kernel.stats().gauges() {
            doc.gauges.push((key.to_string(), value));
        }
        for (key, h) in self.kernel.stats().histograms() {
            let mut fixed = FixedHistogram::ticks();
            for &v in h.values() {
                fixed.record(v);
            }
            doc.histograms.push((key.to_string(), fixed));
        }
        let medium = self.medium.borrow();
        let ledger = medium.ledger();
        doc.gauges
            .push(("energy.total".to_string(), ledger.total()));
        doc.nodes = ledger
            .snapshot()
            .into_iter()
            .map(|s| {
                let cell = self.deployment.cell_of_node(s.node);
                NodeSnapshot {
                    id: s.node as u64,
                    energy: s.total,
                    tx: s.tx.round() as u64,
                    rx: s.rx.round() as u64,
                    cell: Some((cell.col, cell.row)),
                }
            })
            .collect();
        drop(medium);
        doc.events = self.kernel.trace_snapshot();
        if let Some(log) = &self.causal {
            // Canonical (sequential-equivalent) order: identity for plain
            // sequential runs, and the re-keyed merge order after sharded
            // windows — so traces diff bit-for-bit across engines.
            doc.causal = log.borrow().canonical_events();
        }
        doc
    }

    /// Removes and returns everything exfiltrated so far.
    pub fn take_exfiltrated(&mut self) -> Vec<Exfiltrated<P>> {
        self.exfil_seen = 0;
        std::mem::take(&mut self.shared.exfil.borrow_mut())
    }

    /// Re-runs topology emulation and binding after failures (§5.1's
    /// periodic re-execution), re-installing programs on the new leaders.
    pub fn refresh_after_churn(&mut self) -> (TopoReport, BindReport) {
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.reset_protocols();
            }
        }
        let topo = self.run_topology_emulation();
        let bind = self.run_binding();
        if self.factory.is_some() {
            self.reinstall_programs();
        }
        (topo, bind)
    }

    /// Runs a sustained mission: for each round, inject churn, optionally
    /// refresh the runtime protocols, re-install fresh program instances,
    /// and run one application round. A round counts as completed when it
    /// produced exactly `expected_exfils` exfiltrations.
    ///
    /// Requires [`PhysicalRuntime::install_programs`] to have been called
    /// (the retained factory provides each round's fresh programs).
    pub fn run_mission(&mut self, cfg: MissionConfig, expected_exfils: usize) -> MissionReport {
        assert!(
            self.factory.is_some(),
            "install_programs must be called before run_mission"
        );
        let mut rng = wsn_sim::DetRng::stream(cfg.churn_seed, 0xC0FFEE);
        let mut report = MissionReport {
            rounds: cfg.rounds,
            completed: 0,
            per_round: Vec::with_capacity(cfg.rounds as usize),
            killed: 0,
            refreshes: 0,
            survivors: 0,
        };
        for round in 0..cfg.rounds {
            // Churn: kill uniformly chosen live nodes.
            for _ in 0..cfg.churn_per_round {
                let live = self.live_nodes();
                if live.is_empty() {
                    break;
                }
                let victim = live[rng.bounded_usize(live.len())];
                let now = self.kernel.now();
                self.medium.borrow_mut().kill(victim, now);
                report.killed += 1;
            }
            // Round 0 rides on the initial binding; refreshes start after
            // a full period has elapsed.
            if cfg.refresh_every > 0 && round > 0 && round % cfg.refresh_every == 0 {
                self.refresh_after_churn();
                report.refreshes += 1;
            } else {
                self.reinstall_programs();
            }
            let app = self.run_application();
            let ok = app.exfil_count == expected_exfils;
            report.per_round.push(ok);
            if ok {
                report.completed += 1;
            }
            if cfg.stop_on_first_death && self.medium.borrow().first_death().is_some() {
                report.rounds = round + 1;
                break;
            }
        }
        report.survivors = self.live_nodes().len();
        report
    }

    /// Validates and installs a [`ChaosPlan`] into this runtime's kernel
    /// and medium. May be called before or mid-run; events are applied at
    /// their scheduled instants by an injector actor.
    pub fn install_chaos(&mut self, plan: ChaosPlan) -> Result<ActorId, ChaosError> {
        plan.install(&mut self.kernel, self.medium.clone())
    }

    /// Enables leader heartbeats and follower leases on every node
    /// (effective from the next application start).
    pub fn set_heartbeat(&mut self, cfg: HeartbeatConfig) {
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.heartbeat = Some(cfg);
            }
        }
    }

    /// Live followers in the application phase whose leader lease has
    /// run out — the self-healing loop's trigger signal.
    pub fn expired_leases(&self) -> usize {
        let now = self.kernel.now();
        // Index scan, not a `live_nodes()` vector: this runs once per
        // chaos epoch and must stay off the allocator.
        let medium = self.medium.borrow();
        (0..self.deployment.node_count())
            .filter(|&i| {
                if !medium.is_alive(i) {
                    return false;
                }
                let node = self.node(i);
                node.phase == crate::node::Phase::App
                    && !node.ldr
                    && node.lease_expires.is_some_and(|t| t < now)
            })
            .count()
    }

    /// Schedules `tag` on every actor now and runs the kernel no further
    /// than `horizon_ticks` ahead — pending chaos timers beyond the
    /// horizon stay pending instead of being fast-forwarded through.
    fn kick_phase_bounded(&mut self, tag: u64, horizon_ticks: u64, max_events: u64) -> RunReport {
        let start = self.kernel.now();
        for &a in &self.actors {
            self.kernel.schedule_timer(start, a, tag);
        }
        let run = self
            .kernel
            .run_with_limits(Some(start + horizon_ticks), Some(max_events));
        self.events_total += run.events_processed;
        run
    }

    /// Prunes every node's per-round deduplication sets (capacity
    /// retained — see [`RtNode::prune_dedup_state`]). Steady-state
    /// drivers call this between measured rounds so the dedup tables
    /// stop growing; paired with [`PhysicalRuntime::clear_exfiltrated`]
    /// it keeps a long-running hot loop off the allocator.
    pub fn prune_dedup_state(&mut self) {
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.prune_dedup_state();
            }
        }
    }

    /// Clears the exfiltration buffer *in place* (capacity retained) and
    /// resets the per-run cursor — the steady-state counterpart of
    /// [`PhysicalRuntime::take_exfiltrated`], which swaps in a fresh
    /// (capacity-zero) vector.
    pub fn clear_exfiltrated(&mut self) {
        self.exfil_seen = 0;
        self.shared.exfil.borrow_mut().clear();
    }

    fn bump_app_round(&mut self) {
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.app_round += 1;
            }
        }
    }

    /// Fills `out` with the current leader of every cell, in the grid's
    /// canonical iteration order. Reuses the caller's buffer so the
    /// self-heal loop holds one scratch instead of building a map per
    /// heal.
    fn collect_leaders(&self, out: &mut Vec<Option<usize>>) {
        out.clear();
        out.extend(self.grid.nodes().map(|c| self.leader_of(c)));
    }

    /// One self-heal: reset protocol state, bump the application round
    /// (orphaned in-flight envelopes die at the round check), re-run
    /// topology emulation and binding under bounded horizons, re-install
    /// programs on the (possibly new) leaders, and restart the
    /// application. Returns the number of cells whose leader changed.
    fn heal(&mut self, cfg: &SelfHealConfig) -> u64 {
        let mut before = std::mem::take(&mut self.leader_scratch);
        self.collect_leaders(&mut before);
        for &a in &self.actors {
            if let Some(node) = self.kernel.actor_mut::<RtNode<P>>(a) {
                node.reset_protocols();
            }
        }
        self.bump_app_round();
        self.kick_phase_bounded(TAG_TOPO, cfg.phase_budget_ticks, cfg.max_events_per_epoch);
        self.kick_phase_bounded(TAG_BIND, cfg.phase_budget_ticks, cfg.max_events_per_epoch);
        self.kick_phase_bounded(
            TAG_ANNOUNCE,
            cfg.phase_budget_ticks,
            cfg.max_events_per_epoch,
        );
        self.reinstall_programs();
        let now = self.kernel.now();
        for &a in &self.actors {
            self.kernel.schedule_timer(now, a, TAG_APP);
        }
        // Compare in place: `collect_leaders` walks the grid in the same
        // canonical order both times.
        let changed = self
            .grid
            .nodes()
            .zip(before.iter())
            .filter(|(cell, old)| self.leader_of(*cell) != **old)
            .count() as u64;
        self.leader_scratch = before;
        changed
    }

    /// Runs the application under chaos with automatic self-healing: the
    /// §5.1 "executes periodically" loop realized inside the runtime
    /// instead of the test driver. Bring-up, every epoch, and every heal
    /// run under bounded horizons so chaos events scheduled far in the
    /// future are applied at their proper instants rather than drained
    /// through.
    ///
    /// The mission ends when `expected_exfils` results have been
    /// exfiltrated, the event budget trips (reported as a stall), or
    /// `max_epochs` pass. Recovery counters (`heal.*`) are mirrored into
    /// the telemetry registry when enabled.
    ///
    /// Requires [`PhysicalRuntime::install_programs`]; any
    /// [`ChaosPlan`] should be installed via
    /// [`PhysicalRuntime::install_chaos`] beforehand.
    pub fn run_chaos_mission(
        &mut self,
        cfg: SelfHealConfig,
        expected_exfils: usize,
    ) -> ChaosMissionReport {
        self.run_chaos_mission_with(cfg, expected_exfils, None)
    }

    /// [`PhysicalRuntime::run_chaos_mission`] with the epoch loops running
    /// on the sharded kernel. Bring-up and heal phases stay sequential
    /// (they re-bind leaders, which is not window-shaped work); the epoch
    /// bodies — where virtually all events are processed — run sharded.
    /// Chaos injector actors live past the deployment map and therefore
    /// execute on the global pseudo-shard, preserving injection order.
    ///
    /// # Panics
    ///
    /// If [`PhysicalRuntime::parallel_preconditions`] rejects `pcfg`.
    pub fn run_chaos_mission_parallel(
        &mut self,
        cfg: SelfHealConfig,
        expected_exfils: usize,
        pcfg: &ParallelConfig,
    ) -> ChaosMissionReport {
        if let Err(why) = self.parallel_preconditions(pcfg) {
            panic!("sharded execution precondition failed: {why}");
        }
        let schedule = self.shard_schedule(pcfg);
        self.run_chaos_mission_with(cfg, expected_exfils, Some(&schedule))
    }

    fn run_chaos_mission_with(
        &mut self,
        cfg: SelfHealConfig,
        expected_exfils: usize,
        schedule: Option<&ShardSchedule>,
    ) -> ChaosMissionReport {
        assert!(
            self.factory.is_some(),
            "install_programs must be called before run_chaos_mission"
        );
        self.set_heartbeat(cfg.heartbeat);
        let start = self.kernel.now();
        let exfil0 = self.shared.exfil.borrow().len();
        let mut report = ChaosMissionReport {
            epochs: 0,
            heals: 0,
            leases_expired: 0,
            reelections: 0,
            exfil_count: 0,
            stalled: false,
            completed: false,
            elapsed_ticks: 0,
        };
        self.span_open("chaos-mission");
        let events0 = self.events_total;
        // Bounded bring-up (chaos may already be striking mid-protocol).
        self.kick_phase_bounded(TAG_TOPO, cfg.phase_budget_ticks, cfg.max_events_per_epoch);
        self.kick_phase_bounded(TAG_BIND, cfg.phase_budget_ticks, cfg.max_events_per_epoch);
        self.kick_phase_bounded(
            TAG_ANNOUNCE,
            cfg.phase_budget_ticks,
            cfg.max_events_per_epoch,
        );
        self.reinstall_programs();
        let now = self.kernel.now();
        for &a in &self.actors {
            self.kernel.schedule_timer(now, a, TAG_APP);
        }
        for epoch in 0..cfg.max_epochs {
            let horizon = self.kernel.now() + cfg.epoch_ticks;
            let run = match schedule {
                None => self
                    .kernel
                    .run_with_limits(Some(horizon), Some(cfg.max_events_per_epoch)),
                Some(schedule) => {
                    self.run_kernel_sharded(schedule, Some(horizon), Some(cfg.max_events_per_epoch))
                }
            };
            self.events_total += run.events_processed;
            report.epochs = epoch + 1;
            self.telemetry.incr("heal.epochs");
            if run.stop == StopReason::EventLimit {
                report.stalled = true;
                break;
            }
            if self.shared.exfil.borrow().len() - exfil0 >= expected_exfils {
                report.completed = true;
                break;
            }
            let expired = self.expired_leases() as u64;
            let periodic =
                cfg.refresh_every_epochs > 0 && (epoch + 1) % cfg.refresh_every_epochs == 0;
            if expired > 0 || periodic {
                report.leases_expired += expired;
                self.telemetry.incr_by("heal.leases_expired", expired);
                let reelected = self.heal(&cfg);
                report.heals += 1;
                report.reelections += reelected;
                self.telemetry.incr("heal.reemulations");
                self.telemetry.incr_by("heal.reelections", reelected);
            }
        }
        report.exfil_count = self.shared.exfil.borrow().len() - exfil0;
        report.elapsed_ticks = self.kernel.now() - start;
        self.span_close(self.events_total - events0);
        report
    }

    /// Standard metric bundle for the application phase.
    pub fn metrics(&self, app: &AppReport) -> RunMetrics {
        RunMetrics::from_ledger(
            self.medium.borrow().ledger(),
            app.last_exfil_ticks.unwrap_or(app.elapsed_ticks),
            app.messages,
            self.kernel.stats().counter("rt.data_units"),
        )
    }

    /// Current simulated time (accumulates across phases).
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Kernel events dispatched across every phase so far — the
    /// denominator of per-event cost metrics (allocations per event,
    /// nanoseconds per event).
    pub fn events_total(&self) -> u64 {
        self.events_total
    }
}

/// Converts the kernel's fixed-array per-window histogram into the
/// registry's [`FixedHistogram`] for publication.
fn window_hist_to_fixed(h: &WindowHist) -> FixedHistogram {
    FixedHistogram::from_parts(
        WINDOW_HIST_UPPERS.iter().map(|&u| u as f64).collect(),
        h.counts.to_vec(),
        h.count,
        h.sum as f64,
        h.min as f64,
        h.max as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_core::{NodeApi, NodeProgram};
    use wsn_net::{DeliveryChaos, DeploymentSpec};

    fn runtime(side: u32, per_cell: usize, seed: u64) -> PhysicalRuntime<f64> {
        let spec = DeploymentSpec::per_cell(side, per_cell);
        let deployment = spec.generate(seed);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            seed,
            |c| f64::from(c.col + c.row),
        )
    }

    #[test]
    fn topology_emulation_completes_and_routes_verify() {
        let mut rt = runtime(4, 3, 1);
        let report = rt.run_topology_emulation();
        assert!(report.complete, "incomplete tables");
        assert!(
            report.broadcasts >= 48,
            "every node broadcasts at least once"
        );
        assert!(
            report.suppressed > 0,
            "boundary crossings must occur and be suppressed"
        );
        rt.verify_routes().unwrap();
    }

    #[test]
    fn topology_emulation_is_deterministic() {
        let run = |seed| {
            let mut rt = runtime(4, 4, seed);
            let r = rt.run_topology_emulation();
            (r.elapsed_ticks, r.broadcasts, r.suppressed)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn binding_elects_closest_to_center() {
        let mut rt = runtime(4, 4, 2);
        rt.run_topology_emulation();
        let report = rt.run_binding();
        assert!(report.unique, "every cell must elect exactly one leader");
        assert!(report.tree_complete, "every node must learn its leader");
        for cell in rt.grid().nodes() {
            let leader = rt.leader_of(cell).expect("leader exists");
            let center = rt.deployment().grid().cell_center(cell);
            let leader_delta = rt.deployment().position(leader).distance(center);
            for &i in rt.deployment().nodes_in_cell(cell) {
                let d = rt.deployment().position(i).distance(center);
                assert!(
                    leader_delta <= d + 1e-12,
                    "cell {cell:?}: node {i} (δ={d}) closer than leader {leader} (δ={leader_delta})"
                );
            }
        }
    }

    #[test]
    fn binding_spanning_tree_reaches_leader() {
        let mut rt = runtime(3, 5, 3);
        rt.run_topology_emulation();
        let report = rt.run_binding();
        assert!(report.unique);
        for cell in rt.grid().nodes() {
            let leader = rt.leader_of(cell).unwrap();
            for &i in rt.deployment().nodes_in_cell(cell) {
                // Climb parents to the leader.
                let mut cur = i;
                let mut steps = 0;
                while cur != leader {
                    cur = rt.node(cur).parent_to_leader.expect("parent");
                    steps += 1;
                    assert!(steps <= rt.deployment().nodes_in_cell(cell).len(), "cycle");
                    assert_eq!(rt.node(cur).cell, cell, "tree left the cell");
                }
                assert_eq!(rt.node(i).leader, Some(leader));
            }
        }
    }

    /// Leaders each send their reading to the origin cell; the origin
    /// leader sums and exfiltrates once everything arrived.
    struct Gather {
        expected: usize,
        seen: usize,
        sum: f64,
    }
    impl NodeProgram<f64> for Gather {
        fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
            let v = api.read_sensor();
            api.compute(1);
            if api.coord() != GridCoord::new(0, 0) {
                api.send(GridCoord::new(0, 0), 1, v);
            } else {
                self.sum += v;
                self.seen += 1;
            }
        }
        fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, payload: f64) {
            self.sum += payload;
            self.seen += 1;
            if self.seen == self.expected {
                api.exfiltrate(self.sum);
            }
        }
    }

    fn run_gather(side: u32, per_cell: usize, seed: u64) -> (PhysicalRuntime<f64>, AppReport) {
        let mut rt = runtime(side, per_cell, seed);
        let topo = rt.run_topology_emulation();
        assert!(topo.complete);
        let bind = rt.run_binding();
        assert!(bind.unique && bind.tree_complete);
        let n = (side as usize).pow(2);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: n,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = rt.run_application();
        (rt, app)
    }

    #[test]
    fn application_gathers_exact_sum_on_emulated_grid() {
        let (mut rt, app) = run_gather(4, 3, 7);
        assert_eq!(app.exfil_count, 1);
        let results = rt.take_exfiltrated();
        let expected: f64 = (0..4u32)
            .flat_map(|r| (0..4u32).map(move |c| f64::from(c + r)))
            .sum();
        assert_eq!(results[0].payload, expected);
        assert_eq!(results[0].from, GridCoord::new(0, 0));
        // Physical forwarding takes at least one hop per virtual hop.
        assert!(app.physical_hops >= app.messages);
        assert!(
            app.last_exfil_ticks.unwrap() >= 6,
            "physical latency ≥ virtual 6 ticks"
        );
    }

    #[test]
    fn application_energy_exceeds_virtual_ideal() {
        let (rt, app) = run_gather(4, 3, 8);
        let m = rt.metrics(&app);
        // Virtual ideal for the same traffic: Σ hops × 2 = 2×Σ(c+r) = 48.
        assert!(
            m.total_energy > 48.0,
            "physical energy {} must exceed ideal 48",
            m.total_energy
        );
        assert_eq!(m.messages, 15);
    }

    #[test]
    fn churn_reelects_and_application_still_works() {
        let mut rt = runtime(2, 4, 9);
        rt.run_topology_emulation();
        let bind = rt.run_binding();
        assert!(bind.unique);
        let victim = rt.leader_of(GridCoord::new(1, 1)).unwrap();
        rt.medium().borrow_mut().kill(victim, rt.now());
        let (topo2, bind2) = rt.refresh_after_churn();
        assert!(topo2.complete);
        assert!(bind2.unique, "re-election must produce unique leaders");
        let new_leader = rt.leader_of(GridCoord::new(1, 1)).unwrap();
        assert_ne!(new_leader, victim);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 4,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = rt.run_application();
        assert_eq!(app.exfil_count, 1);
        let sum = rt.take_exfiltrated()[0].payload;
        assert_eq!(sum, 0.0 + 1.0 + 1.0 + 2.0);
    }

    #[test]
    fn uniform_random_deployment_with_repair_works_end_to_end() {
        let spec = DeploymentSpec::uniform(4, 100);
        let deployment = spec.generate(11);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            11,
            |_| 1.0,
        );
        let topo = rt.run_topology_emulation();
        assert!(topo.complete);
        rt.verify_routes().unwrap();
        let bind = rt.run_binding();
        assert!(bind.unique && bind.tree_complete);
        rt.install_programs(|_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = rt.run_application();
        assert_eq!(app.exfil_count, 1);
        assert_eq!(rt.take_exfiltrated()[0].payload, 16.0);
    }

    #[test]
    fn mission_without_churn_completes_every_round() {
        let mut rt = runtime(2, 3, 4);
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 4,
                seen: 0,
                sum: 0.0,
            })
        });
        let report = rt.run_mission(
            MissionConfig {
                rounds: 5,
                refresh_every: 0,
                churn_per_round: 0,
                churn_seed: 1,
                stop_on_first_death: false,
            },
            1,
        );
        assert_eq!(report.completed, 5);
        assert_eq!(report.killed, 0);
        assert_eq!(report.per_round, vec![true; 5]);
    }

    #[test]
    fn mission_with_refresh_survives_churn_longer() {
        let run = |refresh_every: u32| {
            let mut rt = runtime(2, 6, 4);
            rt.run_topology_emulation();
            assert!(rt.run_binding().unique);
            rt.install_programs(move |_| {
                Box::new(Gather {
                    expected: 4,
                    seen: 0,
                    sum: 0.0,
                })
            });
            rt.run_mission(
                MissionConfig {
                    rounds: 10,
                    refresh_every,
                    churn_per_round: 1,
                    churn_seed: 9,
                    stop_on_first_death: false,
                },
                1,
            )
        };
        let without = run(0);
        let with = run(1);
        assert!(
            with.completed > without.completed,
            "refresh {} vs none {}",
            with.completed,
            without.completed
        );
        assert_eq!(with.killed, 10);
        // Round 0 rides on the initial binding, so 9 refreshes for 10 rounds.
        assert_eq!(with.refreshes, 9);
    }

    #[test]
    fn sampling_phase_aggregates_cell_means() {
        let deployment = DeploymentSpec::per_cell(2, 5).generate(3);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            3,
            |c| f64::from(c.col * 10 + c.row),
        );
        rt.set_sampling_noise(2.0, 7);
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        let (elapsed, delivered) = rt.run_sampling();
        assert!(elapsed > 0);
        // Every follower's sample reaches its leader: 4 cells × 4 followers.
        assert_eq!(delivered, 16);
        for cell in rt.grid().nodes() {
            let leader = rt.leader_of(cell).unwrap();
            let aggregated = rt.node(leader).aggregated_reading();
            let truth = f64::from(cell.col * 10 + cell.row);
            // The 5-sample mean suppresses the σ=2 noise well below a
            // plausible single-sample error.
            assert!(
                (aggregated - truth).abs() < 2.5,
                "cell {cell:?}: aggregated {aggregated} vs truth {truth}"
            );
        }
    }

    #[test]
    fn without_sampling_leaders_read_their_own_noisy_sensor() {
        let deployment = DeploymentSpec::per_cell(2, 3).generate(3);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            3,
            |_| 5.0,
        );
        rt.set_sampling_noise(1.0, 9);
        rt.run_topology_emulation();
        rt.run_binding();
        let leader = rt.leader_of(GridCoord::new(0, 0)).unwrap();
        let reading = rt.node(leader).aggregated_reading();
        assert_ne!(reading, 5.0, "noise applies");
        assert!((reading - 5.0).abs() < 4.0);
    }

    #[test]
    fn arq_recovers_each_lost_hop() {
        // 10% loss with ARQ: the gather still completes, retransmissions
        // and duplicate-detections show up in the counters, and the
        // result is exact.
        let deployment = DeploymentSpec::per_cell(4, 3).generate(7);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            7,
            |c| f64::from(c.col + c.row),
        );
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        rt.set_link_model(LinkModel::lossy(0.10, 2));
        rt.enable_arq(10, 32);
        let app = rt.run_application();
        assert_eq!(app.exfil_count, 1, "ARQ must carry the merge through");
        assert!(
            app.retransmissions > 0,
            "10% loss must trigger retransmissions"
        );
        let expected: f64 = (0..4u32)
            .flat_map(|r| (0..4u32).map(move |c| f64::from(c + r)))
            .sum();
        assert_eq!(rt.take_exfiltrated()[0].payload, expected);
    }

    #[test]
    fn tdma_defers_but_preserves_results() {
        let run = |tdma: bool| {
            let deployment = DeploymentSpec::per_cell(2, 3).generate(5);
            let range = deployment.grid().range_for_adjacent_cell_reachability();
            let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
                deployment,
                RadioModel::uniform(range),
                LinkModel::ideal(),
                None,
                1,
                5,
                |_| 2.5,
            );
            rt.run_topology_emulation();
            rt.run_binding();
            rt.install_programs(move |_| {
                Box::new(Gather {
                    expected: 4,
                    seen: 0,
                    sum: 0.0,
                })
            });
            if tdma {
                rt.set_mac_model(wsn_net::MacModel::Tdma {
                    frame_slots: 8,
                    slot_ticks: 1,
                });
            }
            let app = rt.run_application();
            (
                app.last_exfil_ticks.unwrap(),
                rt.take_exfiltrated()[0].payload,
            )
        };
        let (lat_async, sum_async) = run(false);
        let (lat_tdma, sum_tdma) = run(true);
        assert_eq!(sum_async, sum_tdma, "MAC never changes results");
        assert!(lat_tdma > lat_async, "slotted access adds latency");
    }

    #[test]
    fn woken_nodes_join_after_refresh() {
        // "New nodes can be added to the network" (§5.1): pre-deployed
        // sleepers wake and participate after the periodic re-execution.
        let deployment = DeploymentSpec::per_cell(2, 3).generate(5);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            5,
            |_| 1.0,
        );
        // Put one node per cell to sleep before the protocols run.
        let sleepers: Vec<usize> = rt
            .grid()
            .nodes()
            .map(|c| rt.deployment().nodes_in_cell(c)[0])
            .collect();
        for &s in &sleepers {
            rt.medium().borrow_mut().kill(s, SimTime::ZERO);
        }
        rt.run_topology_emulation();
        let bind = rt.run_binding();
        assert!(bind.unique);
        for &s in &sleepers {
            assert!(
                rt.node(s).leader.is_none(),
                "sleeper {s} must not have participated"
            );
        }
        // Wake them; after a refresh they hold protocol state again.
        for &s in &sleepers {
            assert!(rt.medium().borrow_mut().wake(s));
        }
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 4,
                seen: 0,
                sum: 0.0,
            })
        });
        let (topo, bind2) = rt.refresh_after_churn();
        assert!(topo.complete);
        assert!(bind2.unique);
        for &s in &sleepers {
            assert!(
                rt.node(s).leader.is_some(),
                "woken node {s} joined the cell tree"
            );
        }
        let app = rt.run_application();
        assert_eq!(app.exfil_count, 1);
    }

    #[test]
    fn energy_aware_election_rotates_leadership() {
        let spec = DeploymentSpec::per_cell(2, 4);
        let deployment = spec.generate(3);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            3,
            |_| 1.0,
        );
        rt.set_election_policy(crate::node::ElectionPolicy::MaxResidualEnergy);
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 4,
                seen: 0,
                sum: 0.0,
            })
        });
        let mut leaders_over_time = Vec::new();
        for _ in 0..4 {
            let app = rt.run_application();
            assert_eq!(app.exfil_count, 1);
            leaders_over_time.push(rt.leader_of(GridCoord::new(0, 0)).expect("leader"));
            rt.refresh_after_churn(); // re-election under the energy policy
        }
        // The origin-cell leader carries the aggregation hotspot; under
        // the residual-energy policy it must hand leadership over.
        let distinct: std::collections::HashSet<usize> =
            leaders_over_time.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "leadership never rotated: {leaders_over_time:?}"
        );
    }

    #[test]
    #[should_panic(expected = "install_programs must be called")]
    fn application_without_programs_panics() {
        let mut rt = runtime(2, 2, 1);
        rt.run_topology_emulation();
        rt.run_binding();
        rt.run_application();
    }

    #[test]
    fn telemetry_spans_decompose_the_mission() {
        let mut rt = runtime(4, 3, 7);
        rt.enable_telemetry(true);
        let topo = rt.run_topology_emulation();
        let bind = rt.run_binding();
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = rt.run_application();
        assert_eq!(app.exfil_count, 1);

        let roots = rt.spans().roots();
        let names: Vec<&str> = roots.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["topology-emulation", "binding", "application"]);
        let phase_sum: u64 = roots.iter().map(SpanNode::duration_ticks).sum();
        assert_eq!(
            phase_sum,
            rt.now().ticks(),
            "phase durations decompose the run"
        );
        assert_eq!(roots[0].duration_ticks(), topo.elapsed_ticks);
        assert_eq!(roots[1].duration_ticks(), bind.elapsed_ticks);
        assert_eq!(roots[2].duration_ticks(), app.elapsed_ticks);
        // Binding nests its two sub-floods.
        let sub: Vec<&str> = roots[1].children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(sub, vec!["election", "announce"]);

        // Registry counters agree with the phase reports by construction.
        let reg = rt.telemetry();
        assert_eq!(reg.counter("phase.topo.broadcasts"), topo.broadcasts);
        assert_eq!(
            reg.counter("phase.bind.delta_broadcasts"),
            bind.delta_broadcasts
        );
        assert_eq!(reg.counter("phase.bind.leaders"), 16);
        assert_eq!(reg.counter(CTR_MESSAGES), app.messages);

        // The exported trace carries everything and round-trips.
        let doc = rt.record_trace();
        let meta = doc.meta.clone().unwrap();
        assert_eq!(meta.grid, 4);
        assert_eq!(meta.nodes, 48);
        assert_eq!(meta.total_ticks, rt.now().ticks());
        assert!(meta.events > 0);
        assert!(!doc.events.is_empty(), "event tracing was on");
        assert_eq!(doc.counter("topo.broadcast"), topo.broadcasts);
        assert_eq!(doc.counter(CTR_MESSAGES), app.messages);
        assert!(
            doc.histograms
                .iter()
                .any(|(k, _)| k == wsn_sim::METRIC_DISPATCH_LATENCY),
            "kernel metrics exported"
        );
        let fills: u64 = crate::node::FILL_COUNTERS
            .iter()
            .map(|c| doc.counter(c))
            .sum();
        assert!(fills > 0, "per-direction fill counters exported");
        let parsed = TraceDocument::from_jsonl(&doc.to_jsonl()).unwrap();
        assert_eq!(parsed.spans, doc.spans);
        assert_eq!(parsed.nodes.len(), 48);
        assert_eq!(parsed.events.len(), doc.events.len());
    }

    #[test]
    fn telemetry_disabled_records_no_spans_or_counters() {
        let (rt, _app) = run_gather(2, 3, 4);
        assert!(!rt.telemetry().is_enabled());
        assert!(rt.spans().roots().is_empty());
        let doc = rt.record_trace();
        assert!(doc.spans.is_empty());
        assert!(doc.events.is_empty(), "no tracer was installed");
        assert_eq!(doc.counter(CTR_MESSAGES), 0, "registry stayed empty");
        // The raw kernel statistics and node snapshots are still exported.
        assert!(doc.counter("rt.messages") > 0);
        assert_eq!(doc.nodes.len(), rt.deployment().node_count());
        assert!(
            doc.meta.unwrap().events > 0,
            "event totals are always tracked"
        );
    }

    #[test]
    fn telemetry_runs_are_deterministic() {
        let run = || {
            let mut rt = runtime(4, 3, 11);
            rt.enable_telemetry(false);
            rt.run_topology_emulation();
            rt.run_binding();
            rt.install_programs(move |_| {
                Box::new(Gather {
                    expected: 16,
                    seen: 0,
                    sum: 0.0,
                })
            });
            rt.run_application();
            (rt.spans().clone(), rt.record_trace().to_jsonl())
        };
        let (spans_a, trace_a) = run();
        let (spans_b, trace_b) = run();
        assert_eq!(spans_a, spans_b, "same seed, same span tree");
        assert_eq!(trace_a, trace_b, "same seed, same serialized trace");
    }

    fn gather_factory(
        expected: usize,
    ) -> impl FnMut(GridCoord) -> Box<dyn NodeProgram<f64>> + 'static {
        move |_| {
            Box::new(Gather {
                expected,
                seen: 0,
                sum: 0.0,
            })
        }
    }

    #[test]
    fn chaos_mission_without_chaos_completes_in_first_epoch() {
        let mut rt = runtime(2, 3, 21);
        rt.install_programs(gather_factory(4));
        let report = rt.run_chaos_mission(SelfHealConfig::default(), 1);
        assert!(report.completed, "{report:?}");
        assert!(!report.stalled);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.heals, 0);
        assert_eq!(report.exfil_count, 1);
        // Field is col + row on a 2×2 grid: 0 + 1 + 1 + 2.
        assert_eq!(rt.take_exfiltrated()[0].payload, 4.0);
    }

    #[test]
    fn chaos_mission_heals_after_leader_crash_mid_application() {
        // Probe run (no chaos) to learn who leads the origin cell; same
        // seed ⇒ the mission's bounded bring-up elects the same leaders.
        let victim = {
            let mut probe = runtime(2, 4, 21);
            probe.run_topology_emulation();
            assert!(probe.run_binding().unique);
            probe.leader_of(GridCoord::new(0, 0)).unwrap()
        };

        let cfg = SelfHealConfig::default();
        // A pending far-future chaos event keeps every bounded bring-up
        // phase running to its full horizon, so the application kicks off
        // at exactly 3 × phase_budget_ticks. One tick later the
        // origin-cell aggregator dies — too early for any remote
        // contribution to have landed — so remote sends die at the
        // corpse, its followers' leases expire unrenewed, and the next
        // epoch boundary heals.
        let crash_at = 3 * cfg.phase_budget_ticks + 1;
        let mut rt = runtime(2, 4, 21);
        rt.enable_telemetry(false);
        rt.install_programs(gather_factory(4));
        rt.install_chaos(ChaosPlan::none().crash_at(SimTime::from_ticks(crash_at), victim))
            .unwrap();
        let report = rt.run_chaos_mission(cfg, 1);
        assert!(
            report.completed,
            "self-healing must finish the gather: {report:?}"
        );
        assert!(!report.stalled);
        assert!(report.heals >= 1, "{report:?}");
        assert!(report.leases_expired >= 1, "{report:?}");
        assert!(report.reelections >= 1, "the crashed cell re-elects");
        let new_leader = rt.leader_of(GridCoord::new(0, 0)).unwrap();
        assert_ne!(new_leader, victim, "a live node took over the cell");

        // Recovery counters are mirrored into the telemetry registry.
        let reg = rt.telemetry();
        assert_eq!(reg.counter("heal.reemulations"), u64::from(report.heals));
        assert_eq!(reg.counter("heal.reelections"), report.reelections);
        assert_eq!(reg.counter("heal.leases_expired"), report.leases_expired);
        assert_eq!(reg.counter("heal.epochs"), u64::from(report.epochs));
        assert_eq!(rt.kernel.stats().counter("chaos.crash"), 1);
    }

    #[test]
    fn chaos_mission_is_deterministic() {
        let run = || {
            let mut rt = runtime(2, 4, 33);
            rt.install_programs(gather_factory(4));
            rt.install_chaos(
                ChaosPlan::none()
                    .delivery_at(
                        SimTime::from_ticks(10),
                        DeliveryChaos {
                            dup_prob: 0.2,
                            reorder_prob: 0.2,
                            reorder_max_extra_ticks: 3,
                        },
                    )
                    .crash_at(SimTime::from_ticks(60), 0),
            )
            .unwrap();
            let report = rt.run_chaos_mission(SelfHealConfig::default(), 1);
            (report, rt.now())
        };
        assert_eq!(run(), run(), "same seed and plan replay bit-identically");
    }

    /// Full observable state of a finished run, for engine differencing:
    /// the trace document (events, causal log, counters, gauges,
    /// histograms, per-node energy) plus exfiltrated payload order and
    /// the standard metric bundle.
    fn observables(rt: &PhysicalRuntime<f64>, app: &AppReport) -> (String, String, String) {
        let doc = rt.record_trace();
        let exfil: Vec<_> = rt
            .shared
            .exfil
            .borrow()
            .iter()
            .map(|e| (e.from, e.at, e.payload))
            .collect();
        (
            format!("{doc:?}"),
            format!("{exfil:?}"),
            format!("{:?}", rt.metrics(app)),
        )
    }

    fn gather_app(seed: u64, parallel: Option<ParallelConfig>) -> (String, String, String) {
        let mut rt = runtime(4, 3, seed);
        rt.enable_telemetry(true);
        rt.enable_causal_tracing();
        let topo = rt.run_topology_emulation();
        assert!(topo.complete);
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = match parallel {
            None => rt.run_application(),
            Some(cfg) => rt.run_application_parallel(&cfg),
        };
        assert_eq!(app.exfil_count, 1);
        observables(&rt, &app)
    }

    #[test]
    fn parallel_application_matches_sequential_bit_for_bit() {
        let sequential = gather_app(7, None);
        for cut_level in [1, 2] {
            for workers in [1, 3] {
                let cfg = ParallelConfig { cut_level, workers };
                assert_eq!(
                    gather_app(7, Some(cfg)),
                    sequential,
                    "sharded run at {cfg:?} diverged from the sequential reference"
                );
            }
        }
    }

    #[test]
    fn parallel_chaos_mission_matches_sequential() {
        let run = |parallel: bool| {
            let mut rt = runtime(2, 4, 33);
            rt.enable_causal_tracing();
            rt.install_programs(gather_factory(4));
            rt.install_chaos(
                ChaosPlan::none()
                    .delivery_at(
                        SimTime::from_ticks(10),
                        DeliveryChaos {
                            dup_prob: 0.2,
                            reorder_prob: 0.2,
                            reorder_max_extra_ticks: 3,
                        },
                    )
                    .crash_at(SimTime::from_ticks(60), 0),
            )
            .unwrap();
            let report = if parallel {
                rt.run_chaos_mission_parallel(
                    SelfHealConfig::default(),
                    1,
                    &ParallelConfig::at_cut(1),
                )
            } else {
                rt.run_chaos_mission(SelfHealConfig::default(), 1)
            };
            let causal = rt.causal_log().unwrap().borrow().canonical_events();
            (report, rt.now(), format!("{causal:?}"))
        };
        assert_eq!(
            run(false),
            run(true),
            "sharded chaos mission diverged from sequential"
        );
    }

    #[test]
    fn sharded_run_publishes_reconcilable_shard_telemetry() {
        let mut rt = runtime(4, 3, 7);
        rt.enable_telemetry(false);
        assert!(rt.run_topology_emulation().complete);
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        let app = rt.run_application_parallel(&ParallelConfig::at_cut(1));
        assert_eq!(app.exfil_count, 1);
        let t = rt.shard_telemetry();
        assert_eq!(t.gauge("shard.count"), Some(4.0));
        assert!(t.counter("shard.windows") > 0);
        // The per-shard counters must sum to the kernel's own dispatch
        // total for the run — the reconciliation TC010 automates.
        let total = t.counter("shard.events.total");
        assert!(total > 0);
        let sum: u64 = (0..4)
            .map(|s| t.counter(&labeled("shard.events", &[("shard", &s.to_string())])))
            .sum::<u64>()
            + t.counter(&labeled("shard.events", &[("shard", "global")]));
        assert_eq!(sum, total);
        // Staged and applied cross-shard counts balance.
        let staged: u64 = (0..4)
            .map(|s| t.counter(&labeled("shard.cross.staged", &[("shard", &s.to_string())])))
            .sum();
        let applied: u64 = (0..4)
            .map(|s| {
                t.counter(&labeled(
                    "shard.cross.applied",
                    &[("shard", &s.to_string())],
                ))
            })
            .sum();
        assert_eq!(staged, applied);
        assert!(staged > 0, "the gather app must cross quadrant boundaries");
        // The window histograms were published for every slot.
        for label in ["0", "1", "2", "3", "global"] {
            assert!(t
                .histogram(&labeled("shard.window.events", &[("shard", label)]))
                .is_some());
        }
        // Shard accounting never leaks into the main registry — that
        // would break bit-identical traces across engines.
        assert_eq!(rt.telemetry().counter("shard.events.total"), 0);
    }

    #[test]
    fn flight_dump_is_identical_across_engines() {
        let run = |parallel: bool| {
            let mut rt = runtime(4, 3, 7);
            rt.enable_flight_recorder(1, 8);
            assert!(rt.run_topology_emulation().complete);
            assert!(rt.run_binding().unique);
            rt.install_programs(move |_| {
                Box::new(Gather {
                    expected: 16,
                    seen: 0,
                    sum: 0.0,
                })
            });
            if parallel {
                rt.run_application_parallel(&ParallelConfig::at_cut(1));
            } else {
                rt.run_application();
            }
            rt.flight_dump("test").unwrap()
        };
        let seq = run(false);
        let par = run(true);
        assert!(seq.recorded > 0);
        assert_eq!(seq, par, "flight dumps diverged across engines");
        assert_eq!(seq.to_jsonl(), par.to_jsonl());
    }

    #[test]
    fn parallel_preconditions_reject_bad_cut_levels() {
        let rt = runtime(4, 3, 1);
        assert!(rt
            .parallel_preconditions(&ParallelConfig::at_cut(1))
            .is_ok());
        assert!(rt
            .parallel_preconditions(&ParallelConfig::at_cut(2))
            .is_ok());
        assert!(rt
            .parallel_preconditions(&ParallelConfig::at_cut(0))
            .is_err());
        assert!(rt
            .parallel_preconditions(&ParallelConfig::at_cut(3))
            .is_err());
        let rt3 = runtime(3, 5, 1);
        assert!(
            rt3.parallel_preconditions(&ParallelConfig::at_cut(1))
                .is_err(),
            "side 3 is not a power of two"
        );
    }
}
