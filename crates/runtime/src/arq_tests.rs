//! ARQ edge cases exercised on a hand-built two-node cell: retry
//! exhaustion, duplicate-data/duplicate-ack idempotence, and timeouts
//! against a peer that died with the packet in the air.

use crate::messages::{AppEnvelope, RtMsg};
use crate::node::{ArqConfig, Phase, RtNode, RtShared};
use std::cell::RefCell;
use std::rc::Rc;
use wsn_core::{GridCoord, NodeApi, NodeProgram, VirtualGrid};
use wsn_net::{
    DeliveryChaos, EnergyLedger, LinkModel, Medium, Point, RadioModel, SharedMedium, UnitDiskGraph,
};
use wsn_sim::{Kernel, SimTime};

struct CountReceives;
impl NodeProgram<f64> for CountReceives {
    fn on_init(&mut self, _api: &mut dyn NodeApi<f64>) {}
    fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, _payload: f64) {
        api.stat_incr("test.received");
    }
}

/// Node 0 is a follower whose spanning-tree parent is node 1, the cell
/// leader running [`CountReceives`]. Both use `cfg` for ARQ.
fn two_node_arq(cfg: ArqConfig) -> (Kernel<RtMsg<f64>>, SharedMedium) {
    let pts = [Point::new(0.2, 0.5), Point::new(0.8, 0.5)];
    let graph = UnitDiskGraph::build(&pts, 1.0);
    let medium = Medium::new(
        graph,
        RadioModel::uniform(1.0),
        LinkModel::ideal(),
        EnergyLedger::unlimited(2),
    )
    .shared();
    let cell = GridCoord::new(0, 0);
    let shared = Rc::new(RtShared::<f64> {
        grid: VirtualGrid::new(1),
        field: Box::new(|_| 0.0),
        exfil: RefCell::new(Vec::new()),
        tap: RefCell::new(None),
        staged_exfil: RefCell::new(Vec::new()),
    });
    let mut k: Kernel<RtMsg<f64>> = Kernel::new(3);
    for (i, &pt) in pts.iter().enumerate() {
        let node = RtNode::new(
            i,
            cell,
            pt,
            Point::new(0.5, 0.5),
            vec![(1 - i, cell)],
            medium.clone(),
            shared.clone(),
            1,
        );
        let a = k.add_actor(Box::new(node));
        medium.borrow_mut().bind_actor(i, a);
    }
    let follower = k.actor_mut::<RtNode<f64>>(0).unwrap();
    follower.phase = Phase::App;
    follower.parent_to_leader = Some(1);
    follower.arq = Some(cfg);
    let leader = k.actor_mut::<RtNode<f64>>(1).unwrap();
    leader.phase = Phase::App;
    leader.ldr = true;
    leader.arq = Some(cfg);
    leader.program = Some(Box::new(CountReceives));
    (k, medium)
}

fn envelope() -> AppEnvelope<f64> {
    AppEnvelope {
        src_cell: GridCoord::new(0, 0),
        dest_cell: GridCoord::new(0, 0),
        units: 1,
        round: 0,
        origin: 0,
        msg_id: 1,
        stamp: wsn_sim::CausalStamp::NONE,
        payload: 2.5,
    }
}

#[test]
fn retry_exhaustion_stops_at_max_retries() {
    let cfg = ArqConfig {
        max_retries: 3,
        timeout_ticks: 8,
    };
    let (mut k, medium) = two_node_arq(cfg);
    // The parent is dead from the start: every transmission is lost.
    medium.borrow_mut().kill(1, SimTime::ZERO);
    k.schedule_message(SimTime::ZERO, 0, 0, RtMsg::App(envelope()));
    k.run();
    // Exactly max_retries retransmissions, then one give-up; the timer
    // chain terminates (the run drained without a livelock).
    assert_eq!(k.stats().counter("rt.arq_retx"), 3);
    assert_eq!(k.stats().counter("rt.arq_gave_up"), 1);
    assert_eq!(k.stats().counter("test.received"), 0);
    assert_eq!(k.pending_events(), 0);
}

#[test]
fn duplicate_data_and_duplicate_acks_are_idempotent() {
    let cfg = ArqConfig {
        max_retries: 3,
        timeout_ticks: 50,
    };
    let (mut k, medium) = two_node_arq(cfg);
    // Every delivery is duplicated: the data hop arrives twice and each
    // resulting ack arrives twice.
    medium.borrow_mut().set_delivery_chaos(DeliveryChaos {
        dup_prob: 1.0,
        reorder_prob: 0.0,
        reorder_max_extra_ticks: 0,
    });
    k.schedule_message(SimTime::ZERO, 0, 0, RtMsg::App(envelope()));
    k.run();
    // The leader acked both copies but delivered exactly once.
    assert_eq!(k.stats().counter("test.received"), 1);
    assert_eq!(k.stats().counter("rt.arq_dup"), 1);
    // Redundant acks removed an already-absent pending entry: no
    // retransmission, no give-up.
    assert_eq!(k.stats().counter("rt.arq_retx"), 0);
    assert_eq!(k.stats().counter("rt.arq_gave_up"), 0);
}

#[test]
fn timeout_fires_after_peer_killed_mid_exchange() {
    let cfg = ArqConfig {
        max_retries: 2,
        timeout_ticks: 6,
    };
    let (mut k, medium) = two_node_arq(cfg);
    k.schedule_message(SimTime::ZERO, 0, 0, RtMsg::App(envelope()));
    // Process the send; the data hop is now in flight.
    k.run_until(SimTime::ZERO);
    assert_eq!(k.stats().counter("rt.arq_retx"), 0);
    // The peer dies with the packet in the air.
    medium.borrow_mut().kill(1, k.now());
    k.run();
    // The in-flight copy reached a dead node; no ack ever returned, so
    // the timeout path retransmitted until exhaustion.
    assert_eq!(k.stats().counter("rt.dead_rx"), 1);
    assert_eq!(k.stats().counter("rt.arq_retx"), 2);
    assert_eq!(k.stats().counter("rt.arq_gave_up"), 1);
    assert_eq!(k.stats().counter("test.received"), 0);
}
