//! # wsn-runtime — the runtime system (§5 of the paper)
//!
//! Implements the two functionalities the paper assigns to the runtime:
//!
//! 1. **Topology emulation** (§5.1) — overlaying the virtual grid on the
//!    arbitrary deployment. Each node fills a four-entry routing table
//!    (one per compass direction of the oriented grid): directly, when a
//!    radio neighbor lies in the adjacent cell, and otherwise by adopting
//!    a same-cell neighbor that already has a path. Broadcast messages
//!    from nodes in *other* cells are ignored on receipt, so protocol
//!    messages cross at most one cell boundary — the property that makes
//!    the protocol's cost local and parallel per cell.
//!
//! 2. **Binding virtual processes to physical nodes** (§5.2) — per-cell
//!    leader election by flooding δ = distance-to-cell-center values;
//!    the unique node whose δ (tie-broken by id) is a cell-wide minimum
//!    keeps `ldr = TRUE` and executes the virtual node's program. A
//!    follow-up announce flood (implied by the paper's "this node can
//!    start executing the program") builds per-cell spanning trees so
//!    followers can forward application traffic to their leader.
//!
//! [`PhysicalRuntime`] sequences the phases and then runs unmodified
//! [`wsn_core::NodeProgram`]s on the emulated topology: a virtual `send()`
//! becomes hop-by-hop physical forwarding — dimension-order across cells
//! via the emulated routing tables, up the spanning tree within the
//! destination cell — with every physical hop paying radio energy and
//! latency. The gap between this execution and the idealized
//! [`wsn_core::Vm`] is exactly the abstraction cost the paper's
//! methodology accepts (§7).

#![forbid(unsafe_code)]

pub mod messages;
pub mod node;
pub mod runner;
pub mod wire;

#[cfg(test)]
mod arq_tests;

pub use messages::{AppEnvelope, RtMsg};
pub use node::{
    dim_order_direction, ArqConfig, ElectionPolicy, HeartbeatConfig, Phase, RtNode, FILL_COUNTERS,
};
pub use runner::{
    AppReport, BindReport, ChaosMissionReport, MissionConfig, MissionReport, ParallelConfig,
    PhysicalRuntime, SelfHealConfig, TopoReport,
};
pub use wire::{
    decode_framed, decode_rtmsg, encode_rtmsg, frame_stamp, is_stamped_tag, set_frame_stamp,
    FramedProgram,
};
