//! The zero-copy wire codec: [`RtMsg`] on the certified fixed frame, plus
//! the framed-program adapter behind `PhysicalRuntime<FrameBuf>`.
//!
//! Every `RtMsg` variant encodes into one [`FrameBuf`] at the offsets
//! declared by [`wsn_core::framelayout`] — the table the frame-layout
//! certifier (`wsn-analyze` pass 7) proves sound. Two properties carry
//! the zero-copy discipline:
//!
//! * the causal stamp lives at a **variant-independent** offset, so a
//!   relay re-stamps a frame in place ([`set_frame_stamp`]) without
//!   decoding it;
//! * the payload region is bounded by the §4 closed forms, so a frame is
//!   a flat `[u8; FRAME_BYTES]` copy — no heap allocation per message.
//!
//! [`FramedProgram`] wraps any typed [`NodeProgram`] into a
//! `NodeProgram<FrameBuf>`: sends encode the payload into a fresh frame
//! (a stack value — cloning it through the medium is a memcpy), receives
//! decode once at the destination leader. Running
//! `PhysicalRuntime<FrameBuf>` this way keeps the entire hop-by-hop relay
//! path allocation-free, which is what the `wsn-lint --alloc-gate`
//! counting-allocator harness asserts.

use crate::messages::{AppEnvelope, RtMsg};
use std::marker::PhantomData;
use wsn_core::framelayout::{
    AUX_A_OFFSET, AUX_B_OFFSET, CELL_A_OFFSET, CELL_B_OFFSET, FRAME_LAYOUT_VERSION, MSG_ID_OFFSET,
    ORIGIN_OFFSET, PAYLOAD_LEN_OFFSET, PAYLOAD_OFFSET, ROUND_OFFSET, STAMP_LAMPORT_OFFSET,
    STAMP_SEQ_OFFSET, TAG_OFFSET, UNITS_OFFSET, VERSION_OFFSET,
};
use wsn_core::{GridCoord, NodeApi, NodeProgram};
use wsn_net::{FrameBuf, WireError, WirePayload};
use wsn_sim::CausalStamp;

fn put_cell(frame: &mut FrameBuf, offset: usize, cell: GridCoord) {
    frame.put_u32(offset, cell.col);
    frame.put_u32(offset + 4, cell.row);
}

fn get_cell(frame: &FrameBuf, offset: usize) -> GridCoord {
    GridCoord::new(frame.get_u32(offset), frame.get_u32(offset + 4))
}

/// Whether frames with this tag carry an in-place causal stamp.
pub fn is_stamped_tag(tag: u8) -> bool {
    wsn_core::RTMSG_VARIANTS
        .iter()
        .any(|v| v.tag == tag && v.stamped)
}

/// Reads the causal stamp of a stamped frame without decoding it.
pub fn frame_stamp(frame: &FrameBuf) -> CausalStamp {
    CausalStamp {
        seq: frame.get_u64(STAMP_SEQ_OFFSET),
        lamport: frame.get_u64(STAMP_LAMPORT_OFFSET),
    }
}

/// Writes `stamp` into a stamped frame in place — the relay fast path.
pub fn set_frame_stamp(frame: &mut FrameBuf, stamp: CausalStamp) {
    frame.put_u64(STAMP_SEQ_OFFSET, stamp.seq);
    frame.put_u64(STAMP_LAMPORT_OFFSET, stamp.lamport);
}

fn encode_envelope<P: WirePayload>(
    frame: &mut FrameBuf,
    env: &AppEnvelope<P>,
) -> Result<usize, WireError> {
    put_cell(frame, CELL_A_OFFSET, env.src_cell);
    put_cell(frame, CELL_B_OFFSET, env.dest_cell);
    frame.put_u32(ROUND_OFFSET, env.round);
    frame.put_u64(UNITS_OFFSET, env.units);
    frame.put_u64(ORIGIN_OFFSET, env.origin as u64);
    frame.put_u64(MSG_ID_OFFSET, env.msg_id);
    frame.put_u64(STAMP_SEQ_OFFSET, env.stamp.seq);
    frame.put_u64(STAMP_LAMPORT_OFFSET, env.stamp.lamport);
    let storage = frame.storage_mut();
    let written = env.payload.encode(&mut storage[PAYLOAD_OFFSET..])?;
    frame.put_u16(PAYLOAD_LEN_OFFSET, written as u16);
    Ok(written)
}

fn decode_envelope<P: WirePayload>(frame: &FrameBuf) -> Result<AppEnvelope<P>, WireError> {
    let payload_len = usize::from(frame.get_u16(PAYLOAD_LEN_OFFSET));
    let storage = frame.storage();
    if PAYLOAD_OFFSET + payload_len > storage.len() {
        return Err(WireError::Truncated("payload"));
    }
    let payload = P::decode(&storage[PAYLOAD_OFFSET..PAYLOAD_OFFSET + payload_len])?;
    Ok(AppEnvelope {
        src_cell: get_cell(frame, CELL_A_OFFSET),
        dest_cell: get_cell(frame, CELL_B_OFFSET),
        units: frame.get_u64(UNITS_OFFSET),
        round: frame.get_u32(ROUND_OFFSET),
        origin: frame.get_u64(ORIGIN_OFFSET) as usize,
        msg_id: frame.get_u64(MSG_ID_OFFSET),
        stamp: CausalStamp {
            seq: frame.get_u64(STAMP_SEQ_OFFSET),
            lamport: frame.get_u64(STAMP_LAMPORT_OFFSET),
        },
        payload,
    })
}

/// Encodes `msg` into `frame` at the certified layout offsets. The frame
/// is reused as-is (recycled frames need no zeroing — every meaningful
/// byte is overwritten and `len` delimits the rest).
pub fn encode_rtmsg<P: WirePayload>(msg: &RtMsg<P>, frame: &mut FrameBuf) -> Result<(), WireError> {
    frame.clear();
    frame.put_u8(VERSION_OFFSET, FRAME_LAYOUT_VERSION as u8);
    frame.put_u16(PAYLOAD_LEN_OFFSET, 0);
    let mut payload_len = 0usize;
    match msg {
        RtMsg::Topo {
            sender,
            sender_cell,
            dirs,
        } => {
            frame.put_u8(TAG_OFFSET, 1);
            put_cell(frame, CELL_A_OFFSET, *sender_cell);
            frame.put_u64(ORIGIN_OFFSET, *sender as u64);
            let bits = dirs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &d)| acc | (u64::from(d) << i));
            frame.put_u64(AUX_A_OFFSET, bits);
        }
        RtMsg::Delta {
            sender_cell,
            delta,
            candidate,
        } => {
            frame.put_u8(TAG_OFFSET, 2);
            put_cell(frame, CELL_A_OFFSET, *sender_cell);
            frame.put_u64(AUX_B_OFFSET, delta.to_bits());
            frame.put_u64(ORIGIN_OFFSET, *candidate as u64);
        }
        RtMsg::Announce {
            sender_cell,
            leader,
            hops,
            sender,
        } => {
            frame.put_u8(TAG_OFFSET, 3);
            put_cell(frame, CELL_A_OFFSET, *sender_cell);
            frame.put_u64(ORIGIN_OFFSET, *leader as u64);
            frame.put_u64(AUX_A_OFFSET, u64::from(*hops));
            frame.put_u64(AUX_B_OFFSET, *sender as u64);
        }
        RtMsg::App(env) => {
            frame.put_u8(TAG_OFFSET, 4);
            payload_len = encode_envelope(frame, env)?;
        }
        RtMsg::AppArq {
            seq,
            hop_sender,
            env,
        } => {
            frame.put_u8(TAG_OFFSET, 5);
            payload_len = encode_envelope(frame, env)?;
            frame.put_u64(AUX_A_OFFSET, *seq);
            frame.put_u64(AUX_B_OFFSET, *hop_sender as u64);
        }
        RtMsg::Ack { seq, from } => {
            frame.put_u8(TAG_OFFSET, 6);
            frame.put_u64(AUX_A_OFFSET, *seq);
            frame.put_u64(ORIGIN_OFFSET, *from as u64);
        }
        RtMsg::Sample {
            sender_cell,
            reading,
        } => {
            frame.put_u8(TAG_OFFSET, 7);
            put_cell(frame, CELL_A_OFFSET, *sender_cell);
            frame.put_u64(AUX_B_OFFSET, reading.to_bits());
        }
        RtMsg::Heartbeat {
            sender_cell,
            leader,
            seq,
        } => {
            frame.put_u8(TAG_OFFSET, 8);
            put_cell(frame, CELL_A_OFFSET, *sender_cell);
            frame.put_u64(ORIGIN_OFFSET, *leader as u64);
            frame.put_u64(AUX_A_OFFSET, *seq);
        }
    }
    frame.set_len(PAYLOAD_OFFSET + payload_len);
    Ok(())
}

/// Decodes a frame back into the typed message. Total on everything
/// [`encode_rtmsg`] produces.
pub fn decode_rtmsg<P: WirePayload>(frame: &FrameBuf) -> Result<RtMsg<P>, WireError> {
    let version = frame.get_u8(VERSION_OFFSET);
    if u64::from(version) != FRAME_LAYOUT_VERSION {
        return Err(WireError::Truncated("layout version"));
    }
    let tag = frame.get_u8(TAG_OFFSET);
    Ok(match tag {
        1 => {
            let bits = frame.get_u64(AUX_A_OFFSET);
            let mut dirs = [false; 4];
            for (i, d) in dirs.iter_mut().enumerate() {
                *d = bits & (1 << i) != 0;
            }
            RtMsg::Topo {
                sender: frame.get_u64(ORIGIN_OFFSET) as usize,
                sender_cell: get_cell(frame, CELL_A_OFFSET),
                dirs,
            }
        }
        2 => RtMsg::Delta {
            sender_cell: get_cell(frame, CELL_A_OFFSET),
            delta: f64::from_bits(frame.get_u64(AUX_B_OFFSET)),
            candidate: frame.get_u64(ORIGIN_OFFSET) as usize,
        },
        3 => RtMsg::Announce {
            sender_cell: get_cell(frame, CELL_A_OFFSET),
            leader: frame.get_u64(ORIGIN_OFFSET) as usize,
            hops: frame.get_u64(AUX_A_OFFSET) as u32,
            sender: frame.get_u64(AUX_B_OFFSET) as usize,
        },
        4 => RtMsg::App(decode_envelope(frame)?),
        5 => RtMsg::AppArq {
            seq: frame.get_u64(AUX_A_OFFSET),
            hop_sender: frame.get_u64(AUX_B_OFFSET) as usize,
            env: decode_envelope(frame)?,
        },
        6 => RtMsg::Ack {
            seq: frame.get_u64(AUX_A_OFFSET),
            from: frame.get_u64(ORIGIN_OFFSET) as usize,
        },
        7 => RtMsg::Sample {
            sender_cell: get_cell(frame, CELL_A_OFFSET),
            reading: f64::from_bits(frame.get_u64(AUX_B_OFFSET)),
        },
        8 => RtMsg::Heartbeat {
            sender_cell: get_cell(frame, CELL_A_OFFSET),
            leader: frame.get_u64(ORIGIN_OFFSET) as usize,
            seq: frame.get_u64(AUX_A_OFFSET),
        },
        other => return Err(WireError::BadTag(other)),
    })
}

/// A [`NodeApi`] view that encodes typed payloads into frames on the way
/// out — the adapter half of the zero-copy hot path.
struct FramedApi<'a, P> {
    inner: &'a mut dyn NodeApi<FrameBuf>,
    _payload: PhantomData<P>,
}

impl<P: WirePayload> NodeApi<P> for FramedApi<'_, P> {
    fn coord(&self) -> GridCoord {
        self.inner.coord()
    }
    fn grid(&self) -> wsn_core::VirtualGrid {
        self.inner.grid()
    }
    fn now(&self) -> wsn_sim::SimTime {
        self.inner.now()
    }
    fn read_sensor(&mut self) -> f64 {
        self.inner.read_sensor()
    }
    fn compute(&mut self, units: u64) {
        self.inner.compute(units);
    }
    fn send(&mut self, dest: GridCoord, units: u64, payload: P) {
        let frame = FrameBuf::encode_payload(&payload)
            .expect("frame-certified payload exceeded the frame capacity");
        self.inner.send(dest, units, frame);
    }
    fn exfiltrate(&mut self, payload: P) {
        let frame = FrameBuf::encode_payload(&payload)
            .expect("frame-certified payload exceeded the frame capacity");
        self.inner.exfiltrate(frame);
    }
    fn residual_energy(&self) -> Option<f64> {
        self.inner.residual_energy()
    }
    fn stat_incr(&mut self, name: &str) {
        self.inner.stat_incr(name);
    }
    fn stat_observe(&mut self, name: &str, value: f64) {
        self.inner.stat_observe(name, value);
    }
}

/// Wraps a typed [`NodeProgram`] so it runs on a frame-carrying runtime
/// (`PhysicalRuntime<FrameBuf>`): payloads decode exactly once, at the
/// destination leader; every relay hop moves a flat frame.
pub struct FramedProgram<P, Prog> {
    inner: Prog,
    _payload: PhantomData<P>,
}

impl<P, Prog> FramedProgram<P, Prog> {
    /// Wraps `inner`.
    pub fn new(inner: Prog) -> Self {
        FramedProgram {
            inner,
            _payload: PhantomData,
        }
    }
}

impl<P, Prog> NodeProgram<FrameBuf> for FramedProgram<P, Prog>
where
    P: WirePayload + 'static,
    Prog: NodeProgram<P>,
{
    fn on_init(&mut self, api: &mut dyn NodeApi<FrameBuf>) {
        let mut framed = FramedApi {
            inner: api,
            _payload: PhantomData,
        };
        self.inner.on_init(&mut framed);
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<FrameBuf>, from: GridCoord, payload: FrameBuf) {
        let decoded: P = payload
            .decode_payload()
            .expect("frame-certified payload decodes");
        let mut framed = FramedApi {
            inner: api,
            _payload: PhantomData,
        };
        self.inner.on_receive(&mut framed, from, decoded);
    }
}

/// Decodes a framed exfiltration back to its typed payload — drivers call
/// this once per result after the run.
pub fn decode_framed<P: WirePayload>(frame: &FrameBuf) -> Result<P, WireError> {
    frame.decode_payload()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::Payload;

    fn sample_envelope(payload: f64) -> AppEnvelope<f64> {
        AppEnvelope {
            src_cell: GridCoord::new(3, 1),
            dest_cell: GridCoord::new(0, 2),
            units: 13,
            round: 7,
            origin: 42,
            msg_id: 9001,
            stamp: CausalStamp {
                seq: 55,
                lamport: 77,
            },
            payload,
        }
    }

    fn all_variants() -> Vec<RtMsg<f64>> {
        vec![
            RtMsg::Topo {
                sender: 11,
                sender_cell: GridCoord::new(1, 2),
                dirs: [true, false, true, true],
            },
            RtMsg::Delta {
                sender_cell: GridCoord::new(2, 2),
                delta: -0.75,
                candidate: 6,
            },
            RtMsg::Announce {
                sender_cell: GridCoord::new(0, 3),
                leader: 17,
                hops: 4,
                sender: 23,
            },
            RtMsg::App(sample_envelope(2.5)),
            RtMsg::AppArq {
                seq: 31,
                hop_sender: 12,
                env: sample_envelope(-9.25),
            },
            RtMsg::Ack { seq: 31, from: 12 },
            RtMsg::Sample {
                sender_cell: GridCoord::new(3, 3),
                reading: 10.5,
            },
            RtMsg::Heartbeat {
                sender_cell: GridCoord::new(1, 0),
                leader: 5,
                seq: 88,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_and_keeps_its_discriminant() {
        let mut frame = FrameBuf::new();
        for msg in all_variants() {
            encode_rtmsg(&msg, &mut frame).unwrap();
            assert_eq!(
                frame.discriminant(),
                msg.discriminant(),
                "frame tag must equal the kernel discriminant"
            );
            let back: RtMsg<f64> = decode_rtmsg(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn recycled_frames_decode_cleanly_across_variants() {
        // Encode the largest variant first, then reuse the same frame for
        // every other variant: stale bytes past `len` must never leak.
        let mut frame = FrameBuf::new();
        encode_rtmsg(
            &RtMsg::AppArq {
                seq: u64::MAX,
                hop_sender: usize::MAX,
                env: sample_envelope(f64::MAX),
            },
            &mut frame,
        )
        .unwrap();
        for msg in all_variants() {
            encode_rtmsg(&msg, &mut frame).unwrap();
            let back: RtMsg<f64> = decode_rtmsg(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stamps_rewrite_in_place_without_decoding() {
        let mut frame = FrameBuf::new();
        encode_rtmsg(&RtMsg::App(sample_envelope(1.0)), &mut frame).unwrap();
        assert!(is_stamped_tag(frame.get_u8(TAG_OFFSET)));
        assert_eq!(
            frame_stamp(&frame),
            CausalStamp {
                seq: 55,
                lamport: 77
            }
        );
        set_frame_stamp(
            &mut frame,
            CausalStamp {
                seq: 100,
                lamport: 200,
            },
        );
        let RtMsg::App(env) = decode_rtmsg::<f64>(&frame).unwrap() else {
            panic!("tag changed");
        };
        assert_eq!(env.stamp.seq, 100);
        assert_eq!(env.stamp.lamport, 200);
        assert_eq!(env.payload, 1.0, "payload untouched by the re-stamp");
        assert!(!is_stamped_tag(6), "acks carry no stamp");
    }

    #[test]
    fn header_fields_land_on_the_certified_offsets() {
        let mut frame = FrameBuf::new();
        encode_rtmsg(&RtMsg::App(sample_envelope(0.0)), &mut frame).unwrap();
        assert_eq!(frame.get_u8(TAG_OFFSET), 4);
        assert_eq!(
            u64::from(frame.get_u8(VERSION_OFFSET)),
            FRAME_LAYOUT_VERSION
        );
        assert_eq!(frame.get_u32(CELL_A_OFFSET), 3);
        assert_eq!(frame.get_u32(CELL_B_OFFSET + 4), 2);
        assert_eq!(frame.get_u32(ROUND_OFFSET), 7);
        assert_eq!(frame.get_u64(UNITS_OFFSET), 13);
        assert_eq!(frame.get_u64(ORIGIN_OFFSET), 42);
        assert_eq!(frame.get_u64(MSG_ID_OFFSET), 9001);
        assert_eq!(frame.get_u64(STAMP_SEQ_OFFSET), 55);
        assert_eq!(frame.len(), PAYLOAD_OFFSET + 8);
    }

    #[test]
    fn bad_tags_and_versions_refuse() {
        let mut frame = FrameBuf::new();
        encode_rtmsg(&RtMsg::Ack::<f64> { seq: 1, from: 2 }, &mut frame).unwrap();
        frame.put_u8(TAG_OFFSET, 99);
        assert_eq!(decode_rtmsg::<f64>(&frame), Err(WireError::BadTag(99)));
        frame.put_u8(TAG_OFFSET, 6);
        frame.put_u8(VERSION_OFFSET, 9);
        assert!(decode_rtmsg::<f64>(&frame).is_err());
    }

    #[test]
    fn framed_program_adapter_encodes_and_decodes_at_the_edges() {
        use wsn_core::program::NodeProgram as _;
        struct Echo;
        impl NodeProgram<f64> for Echo {
            fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
                api.send(GridCoord::new(1, 1), 2, 6.5);
            }
            fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, payload: f64) {
                api.exfiltrate(payload * 2.0);
            }
        }

        struct CollectApi {
            sends: Vec<(GridCoord, u64, FrameBuf)>,
            exfils: Vec<FrameBuf>,
        }
        impl NodeApi<FrameBuf> for CollectApi {
            fn coord(&self) -> GridCoord {
                GridCoord::new(0, 0)
            }
            fn grid(&self) -> wsn_core::VirtualGrid {
                wsn_core::VirtualGrid::new(2)
            }
            fn now(&self) -> wsn_sim::SimTime {
                wsn_sim::SimTime::ZERO
            }
            fn read_sensor(&mut self) -> f64 {
                0.0
            }
            fn compute(&mut self, _units: u64) {}
            fn send(&mut self, dest: GridCoord, units: u64, payload: FrameBuf) {
                self.sends.push((dest, units, payload));
            }
            fn exfiltrate(&mut self, payload: FrameBuf) {
                self.exfils.push(payload);
            }
        }

        let mut api = CollectApi {
            sends: vec![],
            exfils: vec![],
        };
        let mut program = FramedProgram::<f64, _>::new(Echo);
        program.on_init(&mut api);
        assert_eq!(api.sends.len(), 1);
        let (dest, units, frame) = api.sends.pop().unwrap();
        assert_eq!((dest, units), (GridCoord::new(1, 1), 2));
        assert_eq!(decode_framed::<f64>(&frame).unwrap(), 6.5);
        program.on_receive(&mut api, GridCoord::new(0, 0), frame);
        assert_eq!(decode_framed::<f64>(&api.exfils[0]).unwrap(), 13.0);
    }
}
