//! Kernel messages exchanged by the runtime protocols.

use wsn_core::GridCoord;
use wsn_sim::{CausalStamp, Payload};

/// An application message in flight between virtual nodes, carried hop by
/// hop across physical nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct AppEnvelope<P> {
    /// Logical sender (virtual node = cell) — `senderCoord` in Figure 4.
    pub src_cell: GridCoord,
    /// Logical destination (virtual node = cell).
    pub dest_cell: GridCoord,
    /// Payload size in data units (drives energy and latency per hop).
    pub units: u64,
    /// Application epoch: bumped on every self-heal so envelopes from a
    /// pre-heal round cannot corrupt the restarted computation.
    pub round: u32,
    /// Physical id of the node that originated the envelope.
    pub origin: usize,
    /// Per-origin message id — `(origin, msg_id)` dedups end-to-end
    /// duplicates (ARQ retransmits, medium duplication chaos).
    pub msg_id: u64,
    /// Causal stamp of the hop send carrying this envelope
    /// ([`CausalStamp::NONE`] when causal tracing is off). Re-stamped on
    /// every hop, so the receiver always chains to the latest send.
    pub stamp: CausalStamp,
    /// Application payload.
    pub payload: P,
}

/// Everything a physical node can hear on the radio.
#[derive(Debug, Clone, PartialEq)]
pub enum RtMsg<P> {
    /// Topology emulation (§5.1): `sender` advertises which directions of
    /// its routing table are filled.
    Topo {
        /// Physical id of the advertising node.
        sender: usize,
        /// Its cell (receivers in other cells ignore the message).
        sender_cell: GridCoord,
        /// Which of N/E/S/W have a next hop, in `Direction::ALL` order.
        dirs: [bool; 4],
    },
    /// Binding (§5.2): the sender's currently-known cell minimum of
    /// `(δ, id)`.
    Delta {
        /// Cell of the sender.
        sender_cell: GridCoord,
        /// Distance-to-center of the best candidate known.
        delta: f64,
        /// Physical id of that candidate.
        candidate: usize,
    },
    /// Leader announcement flood building the per-cell spanning tree.
    Announce {
        /// Cell of the sender.
        sender_cell: GridCoord,
        /// The elected leader's physical id.
        leader: usize,
        /// Sender's hop distance to the leader.
        hops: u32,
        /// Physical id of the sender (becomes the receiver's parent).
        sender: usize,
    },
    /// Application traffic (fire-and-forget hop).
    App(AppEnvelope<P>),
    /// Application traffic under hop-by-hop ARQ: carries a per-sender
    /// sequence number the receiver acknowledges.
    AppArq {
        /// Per-hop-sender sequence number.
        seq: u64,
        /// Physical id of the transmitting hop (the ack's destination).
        hop_sender: usize,
        /// The envelope being relayed.
        env: AppEnvelope<P>,
    },
    /// Acknowledgment of an [`RtMsg::AppArq`] hop.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
        /// Physical id of the acknowledging node.
        from: usize,
    },
    /// A follower's local sample, climbing the spanning tree to the cell
    /// leader (the paper's "intra-cell readings").
    Sample {
        /// Cell of the sampling node (suppressed across boundaries).
        sender_cell: GridCoord,
        /// The raw local reading.
        reading: f64,
    },
    /// Leader liveness beacon flooded within the cell during the
    /// application phase; followers renew their leader lease on receipt.
    Heartbeat {
        /// Cell of the sender (suppressed across boundaries).
        sender_cell: GridCoord,
        /// Physical id of the leader being attested.
        leader: usize,
        /// Monotone beacon number (dedups the intra-cell flood).
        seq: u64,
    },
}

impl<P: 'static> Payload for RtMsg<P> {
    fn discriminant(&self) -> u64 {
        match self {
            RtMsg::Topo { .. } => 1,
            RtMsg::Delta { .. } => 2,
            RtMsg::Announce { .. } => 3,
            RtMsg::App(_) => 4,
            RtMsg::AppArq { .. } => 5,
            RtMsg::Ack { .. } => 6,
            RtMsg::Sample { .. } => 7,
            RtMsg::Heartbeat { .. } => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_distinguish_variants() {
        let topo: RtMsg<u32> = RtMsg::Topo {
            sender: 0,
            sender_cell: GridCoord::new(0, 0),
            dirs: [false; 4],
        };
        let delta: RtMsg<u32> = RtMsg::Delta {
            sender_cell: GridCoord::new(0, 0),
            delta: 1.0,
            candidate: 0,
        };
        let ann: RtMsg<u32> = RtMsg::Announce {
            sender_cell: GridCoord::new(0, 0),
            leader: 0,
            hops: 0,
            sender: 0,
        };
        let app: RtMsg<u32> = RtMsg::App(AppEnvelope {
            src_cell: GridCoord::new(0, 0),
            dest_cell: GridCoord::new(1, 1),
            units: 1,
            round: 0,
            origin: 0,
            msg_id: 1,
            stamp: CausalStamp::NONE,
            payload: 7,
        });
        let arq: RtMsg<u32> = RtMsg::AppArq {
            seq: 9,
            hop_sender: 2,
            env: AppEnvelope {
                src_cell: GridCoord::new(0, 0),
                dest_cell: GridCoord::new(1, 1),
                units: 1,
                round: 0,
                origin: 0,
                msg_id: 2,
                stamp: CausalStamp::NONE,
                payload: 7,
            },
        };
        let ack: RtMsg<u32> = RtMsg::Ack { seq: 9, from: 3 };
        let sample: RtMsg<u32> = RtMsg::Sample {
            sender_cell: GridCoord::new(0, 0),
            reading: 2.5,
        };
        let hb: RtMsg<u32> = RtMsg::Heartbeat {
            sender_cell: GridCoord::new(0, 0),
            leader: 4,
            seq: 11,
        };
        let ds: Vec<u64> = [&topo, &delta, &ann, &app, &arq, &ack, &sample, &hb]
            .iter()
            .map(|m| m.discriminant())
            .collect();
        // All eight variants carry distinct non-zero tags, so kernel
        // traces can tell protocol from application traffic.
        assert_eq!(ds, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(ds.iter().filter(|&&d| d == 0).count(), 0);
    }
}
