//! The physical node actor: protocol state machines plus application
//! forwarding.

use crate::messages::{AppEnvelope, RtMsg};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use wsn_core::{Direction, Exfiltrated, GridCoord, NodeApi, NodeProgram, VirtualGrid};
use wsn_net::{Point, SharedMedium};
use wsn_sim::{Actor, ActorId, Context, SharedCausalLog, SimTime};

/// Timer tags used by the phase kick-offs.
pub(crate) const TAG_TOPO: u64 = 1;
pub(crate) const TAG_BIND: u64 = 2;
pub(crate) const TAG_ANNOUNCE: u64 = 3;
pub(crate) const TAG_APP: u64 = 4;
pub(crate) const TAG_SAMPLE: u64 = 5;
pub(crate) const TAG_HEARTBEAT: u64 = 6;
/// Timer tags at and above this value carry an ARQ sequence number.
pub(crate) const TAG_ARQ_BASE: u64 = 1_000;

/// Which protocol the node is currently participating in. Messages from
/// other phases are ignored (with a counter), modeling stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before any protocol has started.
    Idle,
    /// Topology emulation (§5.1).
    Topo,
    /// δ-flood leader election (§5.2).
    Bind,
    /// Leader announcement / spanning-tree construction.
    Announce,
    /// Intra-cell sampling: followers ship raw readings to their leader.
    Sample,
    /// Application execution.
    App,
}

/// How a cell picks its leader (§5.2: "The choice of the node closest to
/// the geographic center … Residual energy level or more sophisticated
/// metrics could also be employed, especially if the role of leader is to
/// be periodically rotated among nodes in the cell").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElectionPolicy {
    /// Minimize δ, the distance to the cell center (the paper's default).
    #[default]
    ClosestToCenter,
    /// Maximize residual energy — equivalently, minimize consumed energy —
    /// so that re-elections rotate leadership toward fresh nodes.
    MaxResidualEnergy,
}

/// Hop-by-hop reliability parameters (an extension beyond the paper,
/// motivated by EXP-12: the asynchronous merge is safe but not live under
/// loss without retransmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Retransmissions attempted before giving a hop up.
    pub max_retries: u32,
    /// Ticks to wait for an acknowledgment. Must exceed the worst-case
    /// data + ack round trip (payload ticks + jitter bounds).
    pub timeout_ticks: u64,
}

/// Leader-liveness detection parameters for the self-healing loop.
/// Leaders beacon every `period_ticks`; a follower that goes
/// `lease_ticks` without hearing one considers its leader dead. The
/// lease must comfortably exceed the period plus intra-cell flood
/// latency, or healthy cells will churn spuriously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Interval between leader beacons.
    pub period_ticks: u64,
    /// Follower patience before declaring the leader dead.
    pub lease_ticks: u64,
}

#[derive(Debug, Clone)]
struct PendingHop<P> {
    to: usize,
    env: AppEnvelope<P>,
    retries_left: u32,
}

/// State shared by all node actors of one runtime instance.
pub(crate) struct RtShared<P> {
    pub grid: VirtualGrid,
    pub field: Box<dyn Fn(GridCoord) -> f64>,
    pub exfil: RefCell<Vec<Exfiltrated<P>>>,
    /// Sharded-scheduler order tap: while it holds a live tag,
    /// exfiltrations are staged under that tag and appended to `exfil` in
    /// canonical order at the window barrier, so the buffer reads exactly
    /// as a sequential run would have written it.
    pub tap: RefCell<Option<wsn_sim::OrderTap>>,
    pub staged_exfil: RefCell<Vec<(wsn_sim::DispatchTag, Exfiltrated<P>)>>,
}

impl<P> RtShared<P> {
    /// Records one exfiltration, staging it when a sharded window is in
    /// progress (see the `tap` field).
    pub fn push_exfil(&self, e: Exfiltrated<P>) {
        let tag = self
            .tap
            .borrow()
            .as_ref()
            .map(|t| t.get())
            .unwrap_or(wsn_sim::DispatchTag::NONE);
        if tag.is_none() {
            self.exfil.borrow_mut().push(e);
        } else {
            self.staged_exfil.borrow_mut().push((tag, e));
        }
    }

    /// Flushes staged exfiltrations into the main buffer in canonical
    /// window order (`tags` from the scheduler's barrier hook; intra-tag
    /// order is append order).
    pub fn assign_exfil_order(&self, tags: &[wsn_sim::DispatchTag]) {
        let mut staged = self.staged_exfil.borrow_mut();
        if staged.is_empty() {
            return;
        }
        let rank: std::collections::BTreeMap<wsn_sim::DispatchTag, usize> =
            tags.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut staged: Vec<_> = staged.drain(..).collect();
        staged.sort_by_key(|&(tag, _)| {
            rank.get(&tag)
                .copied()
                .unwrap_or_else(|| panic!("staged exfiltration under unknown tag {tag:?}"))
        });
        let mut exfil = self.exfil.borrow_mut();
        exfil.extend(staged.into_iter().map(|(_, e)| e));
    }
}

/// The direction's index into a routing table, in [`Direction::ALL`] order.
pub(crate) fn dir_idx(d: Direction) -> usize {
    match d {
        Direction::North => 0,
        Direction::East => 1,
        Direction::South => 2,
        Direction::West => 3,
    }
}

/// The per-direction routing-table-fill counter names, in
/// [`Direction::ALL`] order. Bumped once per `rtab` entry filled, whether
/// directly (a neighbor in the adjacent cell) or adopted from a topology
/// broadcast, so their sum counts filled routing-table entries.
pub const FILL_COUNTERS: [&str; 4] = [
    "topo.fill.north",
    "topo.fill.east",
    "topo.fill.south",
    "topo.fill.west",
];

/// The first direction of the dimension-order (column-first) route from
/// `from` to `to`; `None` when equal. Must match
/// [`VirtualGrid::next_hop`] so the physical execution follows the same
/// virtual route the analytical model assumes.
pub fn dim_order_direction(from: GridCoord, to: GridCoord) -> Option<Direction> {
    if from.col < to.col {
        Some(Direction::East)
    } else if from.col > to.col {
        Some(Direction::West)
    } else if from.row < to.row {
        Some(Direction::South)
    } else if from.row > to.row {
        Some(Direction::North)
    } else {
        None
    }
}

/// Whether candidate `a = (δ, id)` beats `b` in the election (§5.2's "value
/// less than its own", with ids breaking δ ties deterministically).
pub(crate) fn better_candidate(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// A physical sensor node participating in the runtime protocols.
pub struct RtNode<P: Clone + 'static> {
    /// Physical node id (index into the deployment).
    pub id: usize,
    /// The cell this node lies in (known locally: §5.1 assumes each node
    /// can compute `f(v_i)` from its coordinates).
    pub cell: GridCoord,
    pub(crate) position: Point,
    pub(crate) cell_center: Point,
    /// One-hop neighbors with their cells (neighbor discovery is assumed
    /// complete, as in the paper).
    pub(crate) neighbors: Vec<(usize, GridCoord)>,
    pub(crate) medium: SharedMedium,
    pub(crate) shared: Rc<RtShared<P>>,
    /// Size of a protocol control message in data units.
    pub(crate) control_units: u64,
    /// Current phase.
    pub phase: Phase,

    /// Routing table `rtab: DIR → next-hop physical node` (§5.1).
    pub rtab: [Option<usize>; 4],

    /// How this node scores itself in the election.
    pub election_policy: ElectionPolicy,
    /// `TRUE` while this node believes it is its cell's leader (§5.2).
    pub ldr: bool,
    pub(crate) best: (f64, usize),
    /// The elected leader this node knows of (after announcement).
    pub leader: Option<usize>,
    /// Next hop toward the leader on the per-cell spanning tree.
    pub parent_to_leader: Option<usize>,
    /// Hop distance to the leader.
    pub hops_to_leader: Option<u32>,

    pub(crate) program: Option<Box<dyn NodeProgram<P>>>,

    /// Additive measurement noise of this node's sensor.
    pub(crate) noise: f64,
    /// Sum and count of follower samples received (leaders only).
    pub(crate) sample_sum: f64,
    pub(crate) sample_count: u64,

    /// Hop-by-hop ARQ, when enabled.
    pub(crate) arq: Option<ArqConfig>,
    next_arq_seq: u64,
    pending_arq: HashMap<u64, PendingHop<P>>,
    seen_arq: HashSet<(usize, u64)>,

    /// Leader-liveness beaconing, when enabled.
    pub(crate) heartbeat: Option<HeartbeatConfig>,
    /// When a follower's leader lease runs out (None for leaders and
    /// before the application phase starts).
    pub lease_expires: Option<SimTime>,
    /// Highest heartbeat seq seen per attested leader (flood dedup).
    hb_last_seq: HashMap<usize, u64>,
    /// This node's own beacon counter (monotone across heals).
    hb_seq: u64,

    /// Application epoch this node participates in; envelopes stamped
    /// with a different round are dropped (see [`AppEnvelope::round`]).
    pub(crate) app_round: u32,
    /// Next [`AppEnvelope::msg_id`] this node will originate.
    next_msg_id: u64,
    /// End-to-end `(origin, msg_id)` dedup at delivery, protecting the
    /// application from medium duplication and ARQ re-sends.
    app_seen: HashSet<(usize, u64)>,

    /// Causal event log (shared with the medium), when causal tracing is
    /// enabled.
    pub(crate) causal: Option<SharedCausalLog>,
    /// Sequence number of the most recent causal event on this node's
    /// application chain — the cause the next send or local milestone
    /// links to.
    cur_cause: u64,
}

impl<P: Clone + 'static> RtNode<P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        cell: GridCoord,
        position: Point,
        cell_center: Point,
        neighbors: Vec<(usize, GridCoord)>,
        medium: SharedMedium,
        shared: Rc<RtShared<P>>,
        control_units: u64,
    ) -> Self {
        let delta = position.distance(cell_center);
        RtNode {
            id,
            cell,
            position,
            cell_center,
            neighbors,
            medium,
            shared,
            control_units,
            phase: Phase::Idle,
            rtab: [None; 4],
            election_policy: ElectionPolicy::default(),
            ldr: false,
            best: (delta, id),
            leader: None,
            parent_to_leader: None,
            hops_to_leader: None,
            program: None,
            noise: 0.0,
            sample_sum: 0.0,
            sample_count: 0,
            arq: None,
            next_arq_seq: 0,
            pending_arq: HashMap::new(),
            seen_arq: HashSet::new(),
            heartbeat: None,
            lease_expires: None,
            hb_last_seq: HashMap::new(),
            hb_seq: 0,
            app_round: 0,
            next_msg_id: 0,
            app_seen: HashSet::new(),
            causal: None,
            cur_cause: 0,
        }
    }

    /// Attaches the shared causal log; application traffic through this
    /// node records stamped send events and chained local milestones.
    pub(crate) fn enable_causal(&mut self, log: SharedCausalLog) {
        self.causal = Some(log);
    }

    /// δ: Euclidean distance to the cell center.
    pub fn delta(&self) -> f64 {
        self.position.distance(self.cell_center)
    }

    /// This node's election key under its policy (smaller wins).
    fn election_key(&self) -> f64 {
        match self.election_policy {
            ElectionPolicy::ClosestToCenter => self.delta(),
            ElectionPolicy::MaxResidualEnergy => {
                // Minimizing consumption maximizes residual, and works for
                // unlimited-budget ledgers too.
                self.medium.borrow().ledger().consumed(self.id)
            }
        }
    }

    /// Drops the per-round deduplication state (application and ARQ
    /// `seen` sets) while keeping leadership, routes, and the spanning
    /// tree intact. `clear` retains each set's capacity, so a
    /// steady-state loop that prunes between rounds re-inserts into
    /// already-sized tables — the no-alloc gate's maintenance hook.
    pub fn prune_dedup_state(&mut self) {
        self.app_seen.clear();
        self.seen_arq.clear();
    }

    /// Clears all protocol-derived state (routing table, election,
    /// spanning tree) so the protocols can re-run after churn. Energy
    /// already spent stays spent.
    pub fn reset_protocols(&mut self) {
        self.rtab = [None; 4];
        self.ldr = false;
        self.best = (self.election_key(), self.id);
        self.leader = None;
        self.parent_to_leader = None;
        self.hops_to_leader = None;
        self.phase = Phase::Idle;
        self.pending_arq.clear();
        self.seen_arq.clear();
        self.sample_sum = 0.0;
        self.sample_count = 0;
        // Liveness state resets with the protocols; `app_round`,
        // `next_msg_id`, and `hb_seq` stay monotone so stale traffic from
        // the previous epoch can never alias fresh traffic.
        self.lease_expires = None;
        self.hb_last_seq.clear();
        self.app_seen.clear();
        self.cur_cause = 0;
    }

    fn dirs_filled(&self) -> [bool; 4] {
        [
            self.rtab[0].is_some(),
            self.rtab[1].is_some(),
            self.rtab[2].is_some(),
            self.rtab[3].is_some(),
        ]
    }

    fn broadcast_topo(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        ctx.stats().incr("topo.broadcast");
        let msg = RtMsg::Topo {
            sender: self.id,
            sender_cell: self.cell,
            dirs: self.dirs_filled(),
        };
        self.medium
            .clone()
            .borrow_mut()
            .broadcast(ctx, self.id, self.control_units, msg);
    }

    fn broadcast_delta(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        ctx.stats().incr("bind.broadcast");
        let msg = RtMsg::Delta {
            sender_cell: self.cell,
            delta: self.best.0,
            candidate: self.best.1,
        };
        self.medium
            .clone()
            .borrow_mut()
            .broadcast(ctx, self.id, self.control_units, msg);
    }

    fn broadcast_announce(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        let (Some(leader), Some(hops)) = (self.leader, self.hops_to_leader) else {
            return;
        };
        ctx.stats().incr("announce.broadcast");
        let msg = RtMsg::Announce {
            sender_cell: self.cell,
            leader,
            hops,
            sender: self.id,
        };
        self.medium
            .clone()
            .borrow_mut()
            .broadcast(ctx, self.id, self.control_units, msg);
    }

    fn start_topology_emulation(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        self.phase = Phase::Topo;
        // "Some entries of the routing table can be filled in using the
        // initially available information": a neighbor lying in the
        // adjacent cell in direction d is a direct next hop. Lowest id
        // wins for determinism.
        let medium = self.medium.clone();
        let medium = medium.borrow();
        for d in Direction::ALL {
            let Some(adj) = self.shared.grid.neighbor(self.cell, d) else {
                continue;
            };
            let direct = self
                .neighbors
                .iter()
                .filter(|&&(n, c)| c == adj && medium.is_alive(n))
                .map(|&(n, _)| n)
                .min();
            if direct.is_some() {
                ctx.stats().incr(FILL_COUNTERS[dir_idx(d)]);
            }
            self.rtab[dir_idx(d)] = direct;
        }
        drop(medium);
        self.broadcast_topo(ctx);
    }

    fn on_topo(
        &mut self,
        ctx: &mut Context<'_, RtMsg<P>>,
        sender: usize,
        sender_cell: GridCoord,
        dirs: [bool; 4],
    ) {
        if self.phase != Phase::Topo {
            ctx.stats().incr("topo.stale");
            return;
        }
        if sender_cell != self.cell {
            // "the message is ignored" — it crossed exactly one boundary
            // and dies here.
            ctx.stats().incr("topo.suppressed");
            return;
        }
        let mut adopted = false;
        for d in Direction::ALL {
            let i = dir_idx(d);
            // Only adopt directions that actually lead somewhere.
            if dirs[i]
                && self.rtab[i].is_none()
                && self.shared.grid.neighbor(self.cell, d).is_some()
            {
                self.rtab[i] = Some(sender);
                adopted = true;
                ctx.stats().incr("topo.adopted");
                ctx.stats().incr(FILL_COUNTERS[i]);
            }
        }
        if adopted {
            self.broadcast_topo(ctx);
        }
    }

    fn start_binding(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        self.phase = Phase::Bind;
        // "Each node maintains a flag ldr initially set to TRUE."
        self.ldr = true;
        self.best = (self.election_key(), self.id);
        self.broadcast_delta(ctx);
    }

    fn on_delta(
        &mut self,
        ctx: &mut Context<'_, RtMsg<P>>,
        sender_cell: GridCoord,
        delta: f64,
        candidate: usize,
    ) {
        if self.phase != Phase::Bind {
            ctx.stats().incr("bind.stale");
            return;
        }
        if sender_cell != self.cell {
            // "messages crossing cell boundaries are suppressed"
            ctx.stats().incr("bind.suppressed");
            return;
        }
        if better_candidate((delta, candidate), self.best) {
            self.best = (delta, candidate);
            if candidate != self.id {
                self.ldr = false;
            }
            // "broadcasts the updated value to all v_j ∈ N_{v_i}"
            self.broadcast_delta(ctx);
        }
    }

    fn start_announce(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        self.phase = Phase::Announce;
        if self.ldr {
            self.leader = Some(self.id);
            self.hops_to_leader = Some(0);
            self.parent_to_leader = None;
            self.broadcast_announce(ctx);
        }
    }

    fn on_announce(
        &mut self,
        ctx: &mut Context<'_, RtMsg<P>>,
        sender_cell: GridCoord,
        leader: usize,
        hops: u32,
        sender: usize,
    ) {
        // Announce is valid during the announce phase and also during App
        // (late tree improvements are harmless and keep churn recovery
        // simple).
        if self.phase != Phase::Announce && self.phase != Phase::App {
            ctx.stats().incr("announce.stale");
            return;
        }
        if sender_cell != self.cell {
            ctx.stats().incr("announce.suppressed");
            return;
        }
        if self.ldr {
            return;
        }
        let new_hops = hops + 1;
        if self.hops_to_leader.is_none_or(|h| new_hops < h) {
            self.leader = Some(leader);
            self.parent_to_leader = Some(sender);
            self.hops_to_leader = Some(new_hops);
            self.broadcast_announce(ctx);
        }
    }

    /// Transmits `env` one physical hop to `to`, with or without ARQ.
    fn tx_hop(&mut self, ctx: &mut Context<'_, RtMsg<P>>, to: usize, mut env: AppEnvelope<P>) {
        let units = env.units;
        if self.causal.is_some() {
            // Chain to the incoming hop's send when relaying, or to this
            // node's latest chain event (phase start, merge) when
            // originating. The fresh stamp rides in the envelope so the
            // receiver keeps the chain going.
            let cause = if env.stamp.is_some() {
                env.stamp.seq
            } else {
                self.cur_cause
            };
            env.stamp = self.medium.clone().borrow_mut().causal_send_stamp(
                self.id,
                ctx.now(),
                cause,
                "app.hop",
                units,
            );
        }
        match self.arq {
            None => {
                self.medium
                    .clone()
                    .borrow_mut()
                    .unicast(ctx, self.id, to, units, RtMsg::App(env));
            }
            Some(cfg) => {
                let seq = self.next_arq_seq;
                self.next_arq_seq += 1;
                self.medium.clone().borrow_mut().unicast(
                    ctx,
                    self.id,
                    to,
                    units,
                    RtMsg::AppArq {
                        seq,
                        hop_sender: self.id,
                        env: env.clone(),
                    },
                );
                self.pending_arq.insert(
                    seq,
                    PendingHop {
                        to,
                        env,
                        retries_left: cfg.max_retries,
                    },
                );
                ctx.set_timer(cfg.timeout_ticks, TAG_ARQ_BASE + seq);
            }
        }
    }

    fn on_arq_timeout(&mut self, ctx: &mut Context<'_, RtMsg<P>>, seq: u64) {
        let Some(cfg) = self.arq else { return };
        let (to, env) = match self.pending_arq.get_mut(&seq) {
            None => return, // acknowledged in the meantime
            Some(pending) => {
                if pending.retries_left == 0 {
                    self.pending_arq.remove(&seq);
                    ctx.stats().incr("rt.arq_gave_up");
                    return;
                }
                pending.retries_left -= 1;
                (pending.to, pending.env.clone())
            }
        };
        ctx.stats().incr("rt.arq_retx");
        let units = env.units;
        let mut env = env;
        if self.causal.is_some() {
            // A retransmission is a fresh physical send caused by the
            // previous (timed-out) one; re-stamp the envelope and the
            // pending copy so later retries chain on.
            let stamp = self.medium.clone().borrow_mut().causal_send_stamp(
                self.id,
                ctx.now(),
                env.stamp.seq,
                "app.retx",
                units,
            );
            env.stamp = stamp;
            if let Some(pending) = self.pending_arq.get_mut(&seq) {
                pending.env.stamp = stamp;
            }
        }
        self.medium.clone().borrow_mut().unicast(
            ctx,
            self.id,
            to,
            units,
            RtMsg::AppArq {
                seq,
                hop_sender: self.id,
                env,
            },
        );
        ctx.set_timer(cfg.timeout_ticks, TAG_ARQ_BASE + seq);
    }

    fn on_app_arq(
        &mut self,
        ctx: &mut Context<'_, RtMsg<P>>,
        seq: u64,
        hop_sender: usize,
        env: AppEnvelope<P>,
    ) {
        // Always acknowledge (an ack costs one control unit), even for
        // duplicates — the sender retransmits precisely because an earlier
        // ack was lost.
        let units = 1;
        self.medium.clone().borrow_mut().unicast(
            ctx,
            self.id,
            hop_sender,
            units,
            RtMsg::Ack { seq, from: self.id },
        );
        if !self.seen_arq.insert((hop_sender, seq)) {
            ctx.stats().incr("rt.arq_dup");
            return;
        }
        self.on_app(ctx, env);
    }

    /// Forwards an application envelope one physical hop (§4.2's
    /// shortest-path grid routing, realized on the emulated topology).
    fn forward_app(&mut self, ctx: &mut Context<'_, RtMsg<P>>, env: AppEnvelope<P>) {
        ctx.stats().incr("rt.app_hops");
        if env.dest_cell == self.cell {
            // Intra-cell: climb the spanning tree to the leader.
            match self.parent_to_leader {
                Some(parent) => self.tx_hop(ctx, parent, env),
                None => {
                    ctx.stats().incr("rt.no_route_to_leader");
                }
            }
        } else {
            let dir = dim_order_direction(self.cell, env.dest_cell)
                .expect("dest differs from current cell");
            match self.rtab[dir_idx(dir)] {
                Some(next) => self.tx_hop(ctx, next, env),
                None => {
                    ctx.stats().incr("rt.no_route");
                }
            }
        }
    }

    fn on_app(&mut self, ctx: &mut Context<'_, RtMsg<P>>, env: AppEnvelope<P>) {
        if self.phase != Phase::App {
            ctx.stats().incr("rt.app_stale");
            return;
        }
        if env.round != self.app_round {
            // An envelope from a pre-heal epoch (still in flight or ARQ
            // re-sent across the reset). Delivering it would double-count
            // a merge piece in the restarted computation.
            ctx.stats().incr("rt.app_wrong_round");
            return;
        }
        if env.stamp.is_some() {
            // Whatever this envelope triggers next (a forward hop, a
            // merge, an exfiltration) is caused by the hop that carried
            // it here.
            self.cur_cause = env.stamp.seq;
        }
        if env.dest_cell == self.cell && self.ldr {
            if !self.app_seen.insert((env.origin, env.msg_id)) {
                // Medium duplication or an ARQ retransmit that slipped a
                // hop dedup: the application must see each logical
                // message exactly once.
                ctx.stats().incr("rt.app_dedup");
                return;
            }
            let Some(mut program) = self.program.take() else {
                // A node that wrongly believes it leads (e.g. after an
                // election disturbed by loss or churn) has no program;
                // dropping is the safe behavior — the periodic protocol
                // re-execution (§5.1) is the repair path.
                ctx.stats().incr("rt.no_program");
                return;
            };
            ctx.stats().incr("rt.delivered");
            let src = env.src_cell;
            {
                let mut api = RtApi { node: self, ctx };
                program.on_receive(&mut api, src, env.payload);
            }
            self.program = Some(program);
        } else {
            self.forward_app(ctx, env);
        }
    }

    /// This node's own raw reading: the cell's phenomenon value plus its
    /// sensor noise.
    fn own_reading(&self) -> f64 {
        (self.shared.field)(self.cell) + self.noise
    }

    fn start_sampling(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        self.phase = Phase::Sample;
        self.sample_sum = 0.0;
        self.sample_count = 0;
        if !self.ldr {
            if let Some(parent) = self.parent_to_leader {
                ctx.stats().incr("sample.sent");
                let msg = RtMsg::Sample {
                    sender_cell: self.cell,
                    reading: self.own_reading(),
                };
                self.medium
                    .clone()
                    .borrow_mut()
                    .unicast(ctx, self.id, parent, 1, msg);
            }
        }
    }

    fn on_sample(&mut self, ctx: &mut Context<'_, RtMsg<P>>, sender_cell: GridCoord, reading: f64) {
        if self.phase != Phase::Sample && self.phase != Phase::App {
            ctx.stats().incr("sample.stale");
            return;
        }
        if sender_cell != self.cell {
            ctx.stats().incr("sample.suppressed");
            return;
        }
        if self.ldr {
            ctx.stats().incr("sample.delivered");
            self.sample_sum += reading;
            self.sample_count += 1;
        } else if let Some(parent) = self.parent_to_leader {
            // Relay up the spanning tree.
            let msg = RtMsg::Sample {
                sender_cell,
                reading,
            };
            self.medium
                .clone()
                .borrow_mut()
                .unicast(ctx, self.id, parent, 1, msg);
        } else {
            ctx.stats().incr("sample.no_route");
        }
    }

    /// The reading the application sees: the mean of everything the
    /// sampling phase collected plus this node's own sample — or the own
    /// sample alone when sampling never ran (the PoC abstraction).
    pub fn aggregated_reading(&self) -> f64 {
        (self.sample_sum + self.own_reading()) / (self.sample_count as f64 + 1.0)
    }

    fn start_app(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        self.phase = Phase::App;
        if let Some(log) = &self.causal {
            // The root of this node's application chain: everything it
            // originates before receiving traffic links back here, so
            // every causal chain bottoms out at the phase start.
            self.cur_cause = log
                .borrow_mut()
                .record_local(self.id, ctx.now(), 0, "app.start");
        }
        if let Some(hb) = self.heartbeat {
            if self.ldr {
                self.lease_expires = None;
                ctx.set_timer(hb.period_ticks, TAG_HEARTBEAT);
            } else {
                // The lease starts now; only beacons refresh it.
                self.lease_expires = Some(ctx.now() + hb.lease_ticks);
            }
        }
        if let Some(mut program) = self.program.take() {
            {
                let mut api = RtApi { node: self, ctx };
                program.on_init(&mut api);
            }
            self.program = Some(program);
        }
    }

    fn beat(&mut self, ctx: &mut Context<'_, RtMsg<P>>) {
        let Some(hb) = self.heartbeat else { return };
        if self.phase != Phase::App || !self.ldr {
            // Superseded (a heal demoted us); let the timer chain die.
            return;
        }
        self.hb_seq += 1;
        ctx.stats().incr("hb.beat");
        let msg = RtMsg::Heartbeat {
            sender_cell: self.cell,
            leader: self.id,
            seq: self.hb_seq,
        };
        self.medium
            .clone()
            .borrow_mut()
            .broadcast(ctx, self.id, self.control_units, msg);
        ctx.set_timer(hb.period_ticks, TAG_HEARTBEAT);
    }

    fn on_heartbeat(
        &mut self,
        ctx: &mut Context<'_, RtMsg<P>>,
        sender_cell: GridCoord,
        leader: usize,
        seq: u64,
    ) {
        if self.phase != Phase::App {
            ctx.stats().incr("hb.stale");
            return;
        }
        if sender_cell != self.cell {
            // Liveness is a per-cell concern; beacons die at boundaries
            // like every other intra-cell flood.
            ctx.stats().incr("hb.suppressed");
            return;
        }
        let last = self.hb_last_seq.entry(leader).or_insert(0);
        if seq <= *last {
            ctx.stats().incr("hb.dup");
            return;
        }
        *last = seq;
        if let (Some(hb), false) = (self.heartbeat, self.ldr) {
            self.lease_expires = Some(ctx.now() + hb.lease_ticks);
            ctx.stats().incr("hb.renewed");
        }
        // Flood on so every cell member renews, not just the leader's
        // radio neighbors.
        let msg = RtMsg::Heartbeat {
            sender_cell,
            leader,
            seq,
        };
        self.medium
            .clone()
            .borrow_mut()
            .broadcast(ctx, self.id, self.control_units, msg);
    }
}

impl<P: Clone + 'static> Actor<RtMsg<P>> for RtNode<P> {
    fn on_timer(&mut self, ctx: &mut Context<'_, RtMsg<P>>, tag: u64) {
        if !self.medium.clone().borrow().is_alive(self.id) {
            // Dead (or sleeping) nodes take no protocol actions.
            ctx.stats().incr("rt.dead_timer");
            return;
        }
        if tag >= TAG_ARQ_BASE {
            self.on_arq_timeout(ctx, tag - TAG_ARQ_BASE);
            return;
        }
        match tag {
            TAG_TOPO => self.start_topology_emulation(ctx),
            TAG_BIND => self.start_binding(ctx),
            TAG_ANNOUNCE => self.start_announce(ctx),
            TAG_SAMPLE => self.start_sampling(ctx),
            TAG_APP => self.start_app(ctx),
            TAG_HEARTBEAT => self.beat(ctx),
            other => panic!("unknown runtime timer tag {other}"),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RtMsg<P>>, _from: ActorId, msg: RtMsg<P>) {
        if !self.medium.clone().borrow().is_alive(self.id) {
            // A packet already in flight to a node that died mid-air.
            ctx.stats().incr("rt.dead_rx");
            return;
        }
        match msg {
            RtMsg::Topo {
                sender,
                sender_cell,
                dirs,
            } => self.on_topo(ctx, sender, sender_cell, dirs),
            RtMsg::Delta {
                sender_cell,
                delta,
                candidate,
            } => self.on_delta(ctx, sender_cell, delta, candidate),
            RtMsg::Announce {
                sender_cell,
                leader,
                hops,
                sender,
            } => self.on_announce(ctx, sender_cell, leader, hops, sender),
            RtMsg::App(env) => self.on_app(ctx, env),
            RtMsg::AppArq {
                seq,
                hop_sender,
                env,
            } => self.on_app_arq(ctx, seq, hop_sender, env),
            RtMsg::Ack { seq, from: _ } => {
                self.pending_arq.remove(&seq);
            }
            RtMsg::Sample {
                sender_cell,
                reading,
            } => self.on_sample(ctx, sender_cell, reading),
            RtMsg::Heartbeat {
                sender_cell,
                leader,
                seq,
            } => self.on_heartbeat(ctx, sender_cell, leader, seq),
        }
    }
}

/// The [`NodeApi`] a leader's program sees when running on the physical
/// network.
struct RtApi<'a, 'b, P: Clone + 'static> {
    node: &'a mut RtNode<P>,
    ctx: &'a mut Context<'b, RtMsg<P>>,
}

impl<P: Clone + 'static> NodeApi<P> for RtApi<'_, '_, P> {
    fn coord(&self) -> GridCoord {
        self.node.cell
    }

    fn grid(&self) -> VirtualGrid {
        self.node.shared.grid
    }

    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn read_sensor(&mut self) -> f64 {
        self.node.aggregated_reading()
    }

    fn compute(&mut self, units: u64) {
        let id = self.node.id;
        self.node
            .medium
            .clone()
            .borrow_mut()
            .charge_compute(self.ctx, id, units as f64);
    }

    fn send(&mut self, dest: GridCoord, units: u64, payload: P) {
        assert!(
            self.node.shared.grid.contains(dest),
            "send to {dest:?} outside the grid"
        );
        self.ctx.stats().incr("rt.messages");
        self.ctx.stats().add("rt.data_units", units);
        let msg_id = self.node.next_msg_id;
        self.node.next_msg_id += 1;
        let mut env = AppEnvelope {
            src_cell: self.node.cell,
            dest_cell: dest,
            units,
            round: self.node.app_round,
            origin: self.node.id,
            msg_id,
            stamp: wsn_sim::CausalStamp::NONE,
            payload,
        };
        if dest == self.node.cell {
            // Logical self-message (Figure 4's "one of the four incoming
            // messages … is from the node to itself"): free and immediate.
            if let Some(log) = &self.node.causal {
                // No radio transmission, so the medium never sees it:
                // record the zero-latency send here and stamp the
                // envelope so the receiving handler chains to it.
                env.stamp = log.borrow_mut().record_send(
                    self.node.id,
                    self.ctx.now(),
                    self.node.cur_cause,
                    "app.self",
                    units,
                );
            }
            let me = self.ctx.id();
            self.ctx.send(me, SimTime::ZERO, RtMsg::App(env));
        } else {
            self.node.forward_app(self.ctx, env);
        }
    }

    fn exfiltrate(&mut self, payload: P) {
        self.ctx.stats().incr("rt.exfiltrated");
        if let Some(log) = &self.node.causal {
            // The terminal event of the application chain.
            self.node.cur_cause = log.borrow_mut().record_local(
                self.node.id,
                self.ctx.now(),
                self.node.cur_cause,
                "app.exfil",
            );
        }
        self.node.shared.push_exfil(Exfiltrated {
            from: self.node.cell,
            at: self.ctx.now(),
            payload,
        });
    }

    fn residual_energy(&self) -> Option<f64> {
        self.node.medium.borrow().ledger().residual(self.node.id)
    }

    fn stat_incr(&mut self, name: &str) {
        self.ctx.stats().incr(name);
    }

    fn stat_observe(&mut self, name: &str, value: f64) {
        self.ctx.stats().observe(name, value);
        if let Some(log) = &self.node.causal {
            // Quad-tree merge completions are the per-level milestones of
            // the causal chain: the merge fires when its last piece
            // arrives, so chaining to `cur_cause` (that piece's hop)
            // follows the latest — i.e. critical — input path.
            if let Some(level) = name
                .strip_prefix("merge.level")
                .and_then(|s| s.strip_suffix(".complete"))
            {
                self.node.cur_cause = log.borrow_mut().record_local(
                    self.node.id,
                    self.ctx.now(),
                    self.node.cur_cause,
                    &format!("merge.level{level}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_order_is_column_first() {
        let a = GridCoord::new(1, 1);
        assert_eq!(
            dim_order_direction(a, GridCoord::new(3, 0)),
            Some(Direction::East)
        );
        assert_eq!(
            dim_order_direction(a, GridCoord::new(0, 3)),
            Some(Direction::West)
        );
        assert_eq!(
            dim_order_direction(a, GridCoord::new(1, 3)),
            Some(Direction::South)
        );
        assert_eq!(
            dim_order_direction(a, GridCoord::new(1, 0)),
            Some(Direction::North)
        );
        assert_eq!(dim_order_direction(a, a), None);
    }

    #[test]
    fn dim_order_matches_virtual_grid_next_hop() {
        let g = VirtualGrid::new(6);
        for from in g.nodes() {
            for to in g.nodes() {
                let expect = g.next_hop(from, to);
                let got = dim_order_direction(from, to).map(|d| g.neighbor(from, d).unwrap());
                assert_eq!(got, expect, "{from:?} -> {to:?}");
            }
        }
    }

    #[test]
    fn dir_idx_matches_all_order() {
        for (i, d) in Direction::ALL.iter().enumerate() {
            assert_eq!(dir_idx(*d), i);
        }
    }

    #[test]
    fn candidate_ordering_breaks_ties_by_id() {
        assert!(better_candidate((1.0, 5), (2.0, 1)));
        assert!(!better_candidate((2.0, 1), (1.0, 5)));
        assert!(better_candidate((1.0, 1), (1.0, 2)));
        assert!(!better_candidate((1.0, 2), (1.0, 2)));
    }
}
