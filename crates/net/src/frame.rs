//! Fixed-size wire frames — the zero-copy transport representation.
//!
//! The §4 payload analysis gives closed-form bounds on every message the
//! synthesized program can send; the frame-layout certifier (`wsn-analyze`
//! pass 7) turns those bounds into a proof that all reachable traffic fits
//! one statically chosen frame size. This module supplies the runtime side
//! of that contract, following the dot15d4 discipline of keeping *one*
//! representation — the buffer is the frame:
//!
//! * [`FrameBuf`] — a fixed `[u8; FRAME_BYTES]` buffer plus a fill length.
//!   Cloning is a memcpy; no heap allocation ever occurs per frame, which
//!   is what lets the counting-allocator gate assert zero allocations per
//!   event in steady state.
//! * [`WirePayload`] — bounded little-endian encodings for application
//!   payloads carried in a frame's payload region.
//! * [`FramePool`] — a run-sized arena of frames, allocated once up front
//!   (sized from the certificate's message bound) and recycled.
//!
//! Field offsets for the full `RtMsg`-on-frame layout are declared in
//! `wsn_core::framelayout` (the certifier's source of truth); this module
//! only fixes the buffer geometry those offsets must respect.

use wsn_sim::Payload;

/// Total size of one wire frame in bytes.
pub const FRAME_BYTES: usize = 2048;

/// Bytes reserved at the front of a frame for the message header (tag,
/// routing fields, causal stamp). The stamp is written in place inside
/// this region — see `wsn_core::framelayout`.
pub const FRAME_HEADER_BYTES: usize = 80;

/// Maximum payload bytes a frame can carry after the header.
pub const FRAME_PAYLOAD_CAPACITY: usize = FRAME_BYTES - FRAME_HEADER_BYTES;

/// Why an encode or decode refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The value needs more bytes than the destination region offers.
    Overflow {
        /// Bytes the encoding requires.
        needed: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// The byte region ended before the named field was complete.
    Truncated(&'static str),
    /// An unknown discriminant tag was read.
    BadTag(u8),
    /// The value has no wire representation by design (e.g. an
    /// accumulator that must never travel).
    Unrepresentable(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Overflow { needed, capacity } => {
                write!(
                    out,
                    "encoding needs {needed} bytes, only {capacity} available"
                )
            }
            WireError::Truncated(field) => write!(out, "frame truncated reading {field}"),
            WireError::BadTag(tag) => write!(out, "unknown frame tag {tag}"),
            WireError::Unrepresentable(what) => {
                write!(out, "{what} has no wire representation")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A fixed-size wire frame: `FRAME_BYTES` of storage plus the number of
/// bytes currently meaningful. Copying one is a flat memcpy.
#[derive(Clone)]
pub struct FrameBuf {
    len: u16,
    bytes: [u8; FRAME_BYTES],
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf {
            len: 0,
            bytes: [0; FRAME_BYTES],
        }
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        // Only the filled prefix is compared: recycled frames may carry
        // stale bytes past `len`, which must not affect equality.
        self.bytes() == other.bytes()
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "FrameBuf {{ len: {}, tag: {} }}",
            self.len, self.bytes[0]
        )
    }
}

impl Payload for FrameBuf {
    /// A frame's kernel discriminant is its tag byte, so dispatch traces
    /// of framed runs are byte-identical to their typed equivalents.
    fn discriminant(&self) -> u64 {
        u64::from(self.bytes[0])
    }
}

impl FrameBuf {
    /// A zeroed, empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently meaningful.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The filled prefix.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.len()]
    }

    /// The whole storage array (layout-offset writers use this).
    pub fn storage(&self) -> &[u8; FRAME_BYTES] {
        &self.bytes
    }

    /// Mutable whole storage.
    pub fn storage_mut(&mut self) -> &mut [u8; FRAME_BYTES] {
        &mut self.bytes
    }

    /// Declares the filled length (after writing through
    /// [`FrameBuf::storage_mut`]). Panics if `len > FRAME_BYTES`.
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= FRAME_BYTES,
            "frame length {len} exceeds {FRAME_BYTES}"
        );
        self.len = len as u16;
    }

    /// Resets to empty without touching the storage (recycled frames are
    /// overwritten field by field).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Writes `v` little-endian at `offset`.
    pub fn put_u8(&mut self, offset: usize, v: u8) {
        self.bytes[offset] = v;
    }

    /// Writes `v` little-endian at `offset`.
    pub fn put_u16(&mut self, offset: usize, v: u16) {
        self.bytes[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes `v` little-endian at `offset`.
    pub fn put_u32(&mut self, offset: usize, v: u32) {
        self.bytes[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes `v` little-endian at `offset`.
    pub fn put_u64(&mut self, offset: usize, v: u64) {
        self.bytes[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes `v` little-endian at `offset`.
    pub fn put_f64(&mut self, offset: usize, v: f64) {
        self.put_u64(offset, v.to_bits());
    }

    /// Reads the byte at `offset`.
    pub fn get_u8(&self, offset: usize) -> u8 {
        self.bytes[offset]
    }

    /// Reads a little-endian `u16` at `offset`.
    pub fn get_u16(&self, offset: usize) -> u16 {
        u16::from_le_bytes(self.bytes[offset..offset + 2].try_into().expect("2 bytes"))
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn get_u32(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.bytes[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn get_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.bytes[offset..offset + 8].try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64` at `offset`.
    pub fn get_f64(&self, offset: usize) -> f64 {
        f64::from_bits(self.get_u64(offset))
    }

    /// Encodes `payload` into the frame starting at offset 0 (the
    /// payload-region convention used when a frame *is* the application
    /// payload of a typed envelope).
    pub fn encode_payload<P: WirePayload>(payload: &P) -> Result<FrameBuf, WireError> {
        let mut frame = FrameBuf::new();
        let written = payload.encode(&mut frame.bytes)?;
        frame.set_len(written);
        Ok(frame)
    }

    /// Decodes a payload previously written by [`FrameBuf::encode_payload`].
    pub fn decode_payload<P: WirePayload>(&self) -> Result<P, WireError> {
        P::decode(self.bytes())
    }
}

/// A bounded little-endian wire encoding for an application payload.
///
/// Implementations must be *total* on decode over their own encodings
/// (`decode(encode(x)) == x`) and must report [`WireError::Overflow`]
/// rather than truncate. Values without a wire form (accumulators that
/// never travel) return [`WireError::Unrepresentable`] — the certifier's
/// `FL003` proves such values never reach a send site.
pub trait WirePayload: Sized {
    /// Exact encoded size of `self` in bytes.
    fn encoded_bytes(&self) -> usize;

    /// Writes `self` into the front of `out`, returning the bytes written.
    fn encode(&self, out: &mut [u8]) -> Result<usize, WireError>;

    /// Reads a value back from the front of `bytes`.
    fn decode(bytes: &[u8]) -> Result<Self, WireError>;
}

impl WirePayload for f64 {
    fn encoded_bytes(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut [u8]) -> Result<usize, WireError> {
        if out.len() < 8 {
            return Err(WireError::Overflow {
                needed: 8,
                capacity: out.len(),
            });
        }
        out[..8].copy_from_slice(&self.to_bits().to_le_bytes());
        Ok(8)
    }
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated("f64"));
        }
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes[..8].try_into().expect("8 bytes"),
        )))
    }
}

impl WirePayload for u64 {
    fn encoded_bytes(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut [u8]) -> Result<usize, WireError> {
        if out.len() < 8 {
            return Err(WireError::Overflow {
                needed: 8,
                capacity: out.len(),
            });
        }
        out[..8].copy_from_slice(&self.to_le_bytes());
        Ok(8)
    }
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated("u64"));
        }
        Ok(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")))
    }
}

impl WirePayload for u32 {
    fn encoded_bytes(&self) -> usize {
        4
    }
    fn encode(&self, out: &mut [u8]) -> Result<usize, WireError> {
        if out.len() < 4 {
            return Err(WireError::Overflow {
                needed: 4,
                capacity: out.len(),
            });
        }
        out[..4].copy_from_slice(&self.to_le_bytes());
        Ok(4)
    }
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 4 {
            return Err(WireError::Truncated("u32"));
        }
        Ok(u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")))
    }
}

impl WirePayload for () {
    fn encoded_bytes(&self) -> usize {
        0
    }
    fn encode(&self, _out: &mut [u8]) -> Result<usize, WireError> {
        Ok(0)
    }
    fn decode(_bytes: &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

/// A run-sized arena of reusable frames.
///
/// All storage is allocated once at construction (size it from the frame
/// certificate's per-run message bound); [`FramePool::acquire`] and
/// [`FramePool::release`] never touch the heap. The pool refuses to grow —
/// exhausting it is a sizing bug the caller should surface, not paper over
/// with a hidden allocation.
pub struct FramePool {
    free: Vec<FrameBuf>,
    capacity: usize,
}

impl FramePool {
    /// A pool of `frames` zeroed frames.
    pub fn with_capacity(frames: usize) -> Self {
        let mut free = Vec::with_capacity(frames);
        free.resize_with(frames, FrameBuf::new);
        FramePool {
            free,
            capacity: frames,
        }
    }

    /// Total frames owned by the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently checked out.
    pub fn in_use(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Takes a frame out of the arena, or `None` when the run outgrew its
    /// certified sizing.
    pub fn acquire(&mut self) -> Option<FrameBuf> {
        self.free.pop()
    }

    /// Returns a frame to the arena. The contents are kept as-is (frames
    /// are overwritten field by field on reuse); only the length resets.
    pub fn release(&mut self, mut frame: FrameBuf) {
        assert!(
            self.free.len() < self.capacity,
            "released more frames than the pool owns"
        );
        frame.clear();
        self.free.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_payloads_round_trip() {
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            let frame = FrameBuf::encode_payload(&v).unwrap();
            assert_eq!(frame.decode_payload::<f64>().unwrap(), v);
            assert_eq!(frame.len(), 8);
        }
        let frame = FrameBuf::encode_payload(&0xDEAD_BEEFu32).unwrap();
        assert_eq!(frame.decode_payload::<u32>().unwrap(), 0xDEAD_BEEF);
        let frame = FrameBuf::encode_payload(&u64::MAX).unwrap();
        assert_eq!(frame.decode_payload::<u64>().unwrap(), u64::MAX);
        let frame = FrameBuf::encode_payload(&()).unwrap();
        assert!(frame.is_empty());
        frame.decode_payload::<()>().unwrap();
    }

    #[test]
    fn fixed_offset_accessors_round_trip() {
        let mut f = FrameBuf::new();
        f.put_u8(0, 4);
        f.put_u16(2, 0xBEEF);
        f.put_u32(4, 77);
        f.put_u64(48, u64::MAX - 3);
        f.put_f64(56, -2.25);
        assert_eq!(f.get_u8(0), 4);
        assert_eq!(f.get_u16(2), 0xBEEF);
        assert_eq!(f.get_u32(4), 77);
        assert_eq!(f.get_u64(48), u64::MAX - 3);
        assert_eq!(f.get_f64(56), -2.25);
        assert_eq!(f.discriminant(), 4);
    }

    #[test]
    fn equality_ignores_stale_bytes_past_len() {
        let mut a = FrameBuf::new();
        a.put_u64(0, 42);
        a.set_len(8);
        let mut b = FrameBuf::new();
        b.put_u64(0, 42);
        b.put_u64(8, 999); // stale garbage past the fill
        b.set_len(8);
        assert_eq!(a, b);
        b.set_len(16);
        assert_ne!(a, b);
    }

    #[test]
    fn truncated_decode_refuses() {
        let frame = FrameBuf::new();
        assert_eq!(
            frame.decode_payload::<f64>(),
            Err(WireError::Truncated("f64"))
        );
    }

    #[test]
    fn pool_recycles_without_growth() {
        let mut pool = FramePool::with_capacity(2);
        assert_eq!(pool.capacity(), 2);
        let a = pool.acquire().unwrap();
        let mut b = pool.acquire().unwrap();
        assert_eq!(pool.in_use(), 2);
        assert!(pool.acquire().is_none(), "run-sized pool must not grow");
        b.put_u64(0, 7);
        b.set_len(8);
        pool.release(b);
        let b2 = pool.acquire().unwrap();
        assert!(b2.is_empty(), "recycled frames come back empty");
        pool.release(a);
        pool.release(b2);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn header_region_leaves_certified_payload_capacity() {
        assert_eq!(FRAME_BYTES, FRAME_HEADER_BYTES + FRAME_PAYLOAD_CAPACITY);
        const { assert!(FRAME_HEADER_BYTES >= 64, "header must fit the RtMsg fields") };
        assert_eq!(FRAME_BYTES % 8, 0, "frames stay 8-byte aligned");
    }
}
