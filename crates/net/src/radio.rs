//! Radio cost parameters.
//!
//! §3.2 of the paper: "for such [short-range omnidirectional] antennas, the
//! reception and transmission energy is of similar magnitude, and depends
//! only on the radio electronics \[Min & Chandrakasan\]. … the energy cost
//! for transmission, reception or computation of one unit of data is
//! defined to be one unit of energy." [`RadioModel::uniform`] is exactly
//! that model; the fields stay configurable so experiments can depart from
//! it (the paper: "a different set of cost functions can be used if the
//! characteristics of the deployment necessitate it").

use serde::{Deserialize, Serialize};

/// Energy and latency coefficients of a node's radio and CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Transmission range `r`.
    pub range: f64,
    /// Energy to transmit one unit of data.
    pub tx_energy_per_unit: f64,
    /// Energy to receive one unit of data.
    pub rx_energy_per_unit: f64,
    /// Energy to compute on one unit of data.
    pub compute_energy_per_unit: f64,
    /// Ticks to transmit one unit of data over one hop. Fractional rates
    /// are rounded up per message in [`RadioModel::tx_ticks`], so a
    /// mis-calibrated radio (e.g. a +50% hop-delay mutation) is
    /// expressible without losing the integer-tick kernel.
    pub ticks_per_unit: f64,
}

impl RadioModel {
    /// The paper's uniform cost model with the given range: one unit of
    /// energy per unit of data transmitted, received, or computed; one
    /// latency unit per data unit per hop.
    pub fn uniform(range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        RadioModel {
            range,
            tx_energy_per_unit: 1.0,
            rx_energy_per_unit: 1.0,
            compute_energy_per_unit: 1.0,
            ticks_per_unit: 1.0,
        }
    }

    /// Ticks to push `units` of data across one hop (at least one tick, so
    /// causality is preserved even for zero-length control messages).
    pub fn tx_ticks(&self, units: u64) -> u64 {
        ((units as f64 * self.ticks_per_unit).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_is_unit_cost() {
        let m = RadioModel::uniform(10.0);
        assert_eq!(m.tx_energy_per_unit, 1.0);
        assert_eq!(m.rx_energy_per_unit, 1.0);
        assert_eq!(m.compute_energy_per_unit, 1.0);
        assert_eq!(m.tx_ticks(5), 5);
    }

    #[test]
    fn zero_unit_message_still_takes_a_tick() {
        let m = RadioModel::uniform(10.0);
        assert_eq!(m.tx_ticks(0), 1);
    }

    #[test]
    fn fractional_rates_round_up_per_message() {
        let mut m = RadioModel::uniform(10.0);
        m.ticks_per_unit *= 1.5;
        assert_eq!(m.tx_ticks(2), 3);
        assert_eq!(m.tx_ticks(5), 8); // ceil(7.5)
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_range_panics() {
        RadioModel::uniform(0.0);
    }
}
