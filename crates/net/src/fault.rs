//! Scheduled fault injection: crashes, recoveries, link dynamics,
//! partitions, delivery anomalies, and energy shocks.
//!
//! The paper's topology-emulation protocol "should execute periodically"
//! because "new nodes can be added to the network or existing nodes can
//! leave or fail" (§5.1). Experiments exercise that path by scheduling a
//! [`ChaosPlan`]; the plan installs itself as an actor that applies each
//! [`FaultKind`] to the [`crate::medium::Medium`] at the scheduled
//! instant. The legacy crash-only [`FaultPlan`] remains as a thin
//! builder over `ChaosPlan`.

use crate::medium::{DeliveryChaos, SharedMedium};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::marker::PhantomData;
use wsn_sim::{Actor, ActorId, Context, Kernel, Payload, SimTime};

/// One kind of injected fault. Everything acts on the shared
/// [`crate::medium::Medium`], so a single injector actor can drive any
/// mix of kinds without touching protocol actors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Kill `node` (stops sending and receiving immediately).
    Crash { node: usize },
    /// Revive a previously crashed `node` (no-op if it was never killed
    /// or is energy-depleted).
    Recover { node: usize },
    /// Ramp the loss rate of the radio link `a`–`b` to `drop_prob`,
    /// overriding the base link model when worse.
    DegradeLink { a: usize, b: usize, drop_prob: f64 },
    /// Remove a previous [`FaultKind::DegradeLink`] override on `a`–`b`.
    RestoreLink { a: usize, b: usize },
    /// Block all traffic between `group_a` and `group_b` (nodes in
    /// neither group keep talking to everyone).
    Partition {
        group_a: Vec<usize>,
        group_b: Vec<usize>,
    },
    /// Remove the active partition, if any.
    HealPartition,
    /// Set the medium-wide duplication/reordering knobs.
    Delivery { chaos: DeliveryChaos },
    /// Instantly drain `units` of energy from `node`'s budget (a compute
    /// surge, a sensor stuck on, a battery fault).
    EnergyShock { node: usize, units: f64 },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash { node } => write!(f, "crash(node {node})"),
            FaultKind::Recover { node } => write!(f, "recover(node {node})"),
            FaultKind::DegradeLink { a, b, drop_prob } => {
                write!(f, "degrade-link({a}-{b}, p={drop_prob})")
            }
            FaultKind::RestoreLink { a, b } => write!(f, "restore-link({a}-{b})"),
            FaultKind::Partition { group_a, group_b } => {
                write!(f, "partition({group_a:?} | {group_b:?})")
            }
            FaultKind::HealPartition => write!(f, "heal-partition"),
            FaultKind::Delivery { chaos } => write!(
                f,
                "delivery(dup={}, reorder={}/{})",
                chaos.dup_prob, chaos.reorder_prob, chaos.reorder_max_extra_ticks
            ),
            FaultKind::EnergyShock { node, units } => {
                write!(f, "energy-shock(node {node}, {units} units)")
            }
        }
    }
}

/// A [`FaultKind`] scheduled at an absolute simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} {}", self.at.ticks(), self.kind)
    }
}

/// Why a [`ChaosPlan`] was rejected at install time. Index `event` is
/// the offending position in [`ChaosPlan::events`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// An event references a node index outside the deployment.
    NodeOutOfRange {
        event: usize,
        node: usize,
        node_count: usize,
    },
    /// An event is scheduled before the kernel's current time.
    EventInPast {
        event: usize,
        at: SimTime,
        now: SimTime,
    },
    /// A probability knob is outside `[0, 1]` (or NaN).
    InvalidProbability { event: usize, value: f64 },
    /// A partition group is empty, so the event would be a silent no-op.
    EmptyPartitionGroup { event: usize },
    /// A node appears in both partition groups.
    OverlappingPartitionGroups { event: usize, node: usize },
    /// A link fault names the same node twice.
    SelfLink { event: usize, node: usize },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::NodeOutOfRange {
                event,
                node,
                node_count,
            } => write!(
                f,
                "event {event}: node {node} out of range (deployment has {node_count} nodes)"
            ),
            ChaosError::EventInPast { event, at, now } => write!(
                f,
                "event {event}: scheduled at t={} but the kernel is already at t={}",
                at.ticks(),
                now.ticks()
            ),
            ChaosError::InvalidProbability { event, value } => {
                write!(f, "event {event}: probability {value} outside [0, 1]")
            }
            ChaosError::EmptyPartitionGroup { event } => {
                write!(f, "event {event}: partition group is empty")
            }
            ChaosError::OverlappingPartitionGroups { event, node } => write!(
                f,
                "event {event}: node {node} appears in both partition groups"
            ),
            ChaosError::SelfLink { event, node } => {
                write!(
                    f,
                    "event {event}: link fault names node {node} on both ends"
                )
            }
        }
    }
}

impl std::error::Error for ChaosError {}

fn valid_prob(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

/// A validated, installable schedule of [`ChaosEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Appends an arbitrary event.
    pub fn push(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(ChaosEvent { at, kind });
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(self, at: SimTime, node: usize) -> Self {
        self.push(at, FaultKind::Crash { node })
    }

    /// Schedules a recovery (rejoin) of `node` at `at`.
    pub fn recover_at(self, at: SimTime, node: usize) -> Self {
        self.push(at, FaultKind::Recover { node })
    }

    /// Schedules a loss ramp on link `a`–`b` at `at`.
    pub fn degrade_link_at(self, at: SimTime, a: usize, b: usize, drop_prob: f64) -> Self {
        self.push(at, FaultKind::DegradeLink { a, b, drop_prob })
    }

    /// Schedules removal of a loss ramp on link `a`–`b` at `at`.
    pub fn restore_link_at(self, at: SimTime, a: usize, b: usize) -> Self {
        self.push(at, FaultKind::RestoreLink { a, b })
    }

    /// Schedules a partition between two node groups at `at`.
    pub fn partition_at(self, at: SimTime, group_a: Vec<usize>, group_b: Vec<usize>) -> Self {
        self.push(at, FaultKind::Partition { group_a, group_b })
    }

    /// Schedules healing of the active partition at `at`.
    pub fn heal_partition_at(self, at: SimTime) -> Self {
        self.push(at, FaultKind::HealPartition)
    }

    /// Schedules a change of the medium's delivery-anomaly knobs at `at`.
    pub fn delivery_at(self, at: SimTime, chaos: DeliveryChaos) -> Self {
        self.push(at, FaultKind::Delivery { chaos })
    }

    /// Schedules an energy shock on `node` at `at`.
    pub fn energy_shock_at(self, at: SimTime, node: usize, units: f64) -> Self {
        self.push(at, FaultKind::EnergyShock { node, units })
    }

    /// Scheduled events, in insertion order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A copy of the plan with event `index` removed — the primitive the
    /// fuzzer's shrinker is built from.
    pub fn without_event(&self, index: usize) -> Self {
        let mut events = self.events.clone();
        events.remove(index);
        ChaosPlan { events }
    }

    /// Checks every event against the deployment size and the current
    /// kernel time. Called by [`ChaosPlan::install`]; exposed for tests
    /// and for validating plans before a run is even built.
    pub fn validate(&self, node_count: usize, now: SimTime) -> Result<(), ChaosError> {
        for (i, ev) in self.events.iter().enumerate() {
            if ev.at < now {
                return Err(ChaosError::EventInPast {
                    event: i,
                    at: ev.at,
                    now,
                });
            }
            let check_node = |node: usize| {
                if node >= node_count {
                    Err(ChaosError::NodeOutOfRange {
                        event: i,
                        node,
                        node_count,
                    })
                } else {
                    Ok(())
                }
            };
            match &ev.kind {
                FaultKind::Crash { node }
                | FaultKind::Recover { node }
                | FaultKind::EnergyShock { node, .. } => check_node(*node)?,
                FaultKind::DegradeLink { a, b, drop_prob } => {
                    check_node(*a)?;
                    check_node(*b)?;
                    if a == b {
                        return Err(ChaosError::SelfLink { event: i, node: *a });
                    }
                    if !valid_prob(*drop_prob) {
                        return Err(ChaosError::InvalidProbability {
                            event: i,
                            value: *drop_prob,
                        });
                    }
                }
                FaultKind::RestoreLink { a, b } => {
                    check_node(*a)?;
                    check_node(*b)?;
                    if a == b {
                        return Err(ChaosError::SelfLink { event: i, node: *a });
                    }
                }
                FaultKind::Partition { group_a, group_b } => {
                    if group_a.is_empty() || group_b.is_empty() {
                        return Err(ChaosError::EmptyPartitionGroup { event: i });
                    }
                    for &n in group_a.iter().chain(group_b) {
                        check_node(n)?;
                    }
                    for &n in group_a {
                        if group_b.contains(&n) {
                            return Err(ChaosError::OverlappingPartitionGroups {
                                event: i,
                                node: n,
                            });
                        }
                    }
                }
                FaultKind::HealPartition => {}
                FaultKind::Delivery { chaos } => {
                    if !valid_prob(chaos.dup_prob) {
                        return Err(ChaosError::InvalidProbability {
                            event: i,
                            value: chaos.dup_prob,
                        });
                    }
                    if !valid_prob(chaos.reorder_prob) {
                        return Err(ChaosError::InvalidProbability {
                            event: i,
                            value: chaos.reorder_prob,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates the plan and installs it into `kernel` as a
    /// chaos-injector actor bound to `medium`. Works mid-run: when the
    /// kernel has already started, the injector's timers are armed
    /// immediately relative to the current time. Returns the injector's
    /// actor id (harmless to ignore).
    pub fn install<M: Payload>(
        self,
        kernel: &mut Kernel<M>,
        medium: SharedMedium,
    ) -> Result<ActorId, ChaosError> {
        let node_count = medium.borrow().node_count();
        self.validate(node_count, kernel.now())?;
        Ok(kernel.add_actor(Box::new(ChaosInjector::<M> {
            plan: self,
            medium,
            _marker: PhantomData,
        })))
    }
}

/// A list of `(time, node)` crash-only failures: the legacy builder,
/// now a veneer over [`ChaosPlan`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, usize)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a failure of `node` at `time`.
    pub fn kill_at(mut self, time: SimTime, node: usize) -> Self {
        self.events.push((time, node));
        self
    }

    /// Scheduled failures.
    pub fn events(&self) -> &[(SimTime, usize)] {
        &self.events
    }

    /// The equivalent crash-only [`ChaosPlan`].
    pub fn into_chaos(self) -> ChaosPlan {
        self.events
            .into_iter()
            .fold(ChaosPlan::none(), |p, (t, n)| p.crash_at(t, n))
    }

    /// Installs the plan into `kernel` as a fault-injector actor bound to
    /// `medium`. Returns the injector's actor id (harmless to ignore) or
    /// a typed error for out-of-range nodes / past-scheduled events.
    pub fn install<M: Payload>(
        self,
        kernel: &mut Kernel<M>,
        medium: SharedMedium,
    ) -> Result<ActorId, ChaosError> {
        self.into_chaos().install(kernel, medium)
    }
}

struct ChaosInjector<M> {
    plan: ChaosPlan,
    medium: SharedMedium,
    _marker: PhantomData<fn() -> M>,
}

impl<M: Payload> Actor<M> for ChaosInjector<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let now = ctx.now().ticks();
        for (idx, ev) in self.plan.events.iter().enumerate() {
            ctx.set_timer(ev.at.ticks().saturating_sub(now), idx as u64);
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, M>, _from: ActorId, _msg: M) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let ev = self.plan.events[tag as usize].clone();
        let now = ctx.now();
        let mut medium = self.medium.borrow_mut();
        ctx.stats().incr("fault.injected");
        match ev.kind {
            FaultKind::Crash { node } => {
                medium.kill(node, now);
                ctx.stats().incr("chaos.crash");
            }
            FaultKind::Recover { node } => {
                if medium.wake(node) {
                    ctx.stats().incr("chaos.recover");
                } else {
                    ctx.stats().incr("chaos.recover_refused");
                }
            }
            FaultKind::DegradeLink { a, b, drop_prob } => {
                medium.degrade_link(a, b, drop_prob);
                ctx.stats().incr("chaos.degrade_link");
            }
            FaultKind::RestoreLink { a, b } => {
                medium.restore_link(a, b);
                ctx.stats().incr("chaos.restore_link");
            }
            FaultKind::Partition { group_a, group_b } => {
                medium.set_partition(&group_a, &group_b);
                ctx.stats().incr("chaos.partition");
            }
            FaultKind::HealPartition => {
                medium.heal_partition();
                ctx.stats().incr("chaos.heal_partition");
            }
            FaultKind::Delivery { chaos } => {
                medium.set_delivery_chaos(chaos);
                ctx.stats().incr("chaos.delivery");
            }
            FaultKind::EnergyShock { node, units } => {
                medium.drain_energy(node, units, now);
                ctx.stats().incr("chaos.energy_shock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyLedger;
    use crate::geometry::Point;
    use crate::graph::UnitDiskGraph;
    use crate::medium::{LinkModel, Medium};
    use crate::radio::RadioModel;

    /// Inert actor used to advance the kernel clock in tests.
    struct Idle;
    impl Actor<u32> for Idle {
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
    }

    fn two_node_medium() -> SharedMedium {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::unlimited(2),
        )
        .shared()
    }

    #[test]
    fn plan_builder_accumulates() {
        let p = FaultPlan::none()
            .kill_at(SimTime::from_ticks(5), 1)
            .kill_at(SimTime::from_ticks(9), 0);
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.events()[1], (SimTime::from_ticks(9), 0));
        let chaos = p.into_chaos();
        assert_eq!(chaos.len(), 2);
        assert_eq!(chaos.events()[0].kind, FaultKind::Crash { node: 1 });
    }

    #[test]
    fn injector_kills_on_schedule() {
        let medium = two_node_medium();
        let mut k: Kernel<u32> = Kernel::new(1);
        FaultPlan::none()
            .kill_at(SimTime::from_ticks(3), 0)
            .kill_at(SimTime::from_ticks(7), 1)
            .install(&mut k, medium.clone())
            .unwrap();
        k.run_until(SimTime::from_ticks(5));
        assert!(!medium.borrow().is_alive(0));
        assert!(medium.borrow().is_alive(1));
        k.run();
        assert!(!medium.borrow().is_alive(1));
        assert_eq!(medium.borrow().death_time(0), Some(SimTime::from_ticks(3)));
        assert_eq!(medium.borrow().first_death(), Some(SimTime::from_ticks(3)));
        assert_eq!(k.stats().counter("fault.injected"), 2);
    }

    #[test]
    fn chaos_plan_applies_every_kind() {
        let medium = two_node_medium();
        let mut k: Kernel<u32> = Kernel::new(1);
        ChaosPlan::none()
            .crash_at(SimTime::from_ticks(1), 0)
            .recover_at(SimTime::from_ticks(2), 0)
            .degrade_link_at(SimTime::from_ticks(3), 0, 1, 0.9)
            .partition_at(SimTime::from_ticks(4), vec![0], vec![1])
            .delivery_at(
                SimTime::from_ticks(5),
                DeliveryChaos {
                    dup_prob: 0.5,
                    reorder_prob: 0.0,
                    reorder_max_extra_ticks: 0,
                },
            )
            .energy_shock_at(SimTime::from_ticks(6), 1, 2.5)
            .restore_link_at(SimTime::from_ticks(7), 0, 1)
            .heal_partition_at(SimTime::from_ticks(8))
            .install(&mut k, medium.clone())
            .unwrap();
        k.run_until(SimTime::from_ticks(2));
        assert!(
            medium.borrow().is_alive(0),
            "crashed at t=1, recovered at t=2"
        );
        k.run_until(SimTime::from_ticks(4));
        assert!(medium.borrow().partition_blocks(0, 1));
        k.run();
        assert!(!medium.borrow().partition_blocks(0, 1), "healed");
        assert_eq!(medium.borrow().delivery_chaos().dup_prob, 0.5);
        assert_eq!(k.stats().counter("fault.injected"), 8);
        assert_eq!(k.stats().counter("chaos.crash"), 1);
        assert_eq!(k.stats().counter("chaos.recover"), 1);
        assert_eq!(k.stats().counter("chaos.heal_partition"), 1);
    }

    #[test]
    fn install_rejects_out_of_range_node() {
        let medium = two_node_medium();
        let mut k: Kernel<u32> = Kernel::new(1);
        let err = ChaosPlan::none()
            .crash_at(SimTime::from_ticks(3), 9)
            .install(&mut k, medium)
            .unwrap_err();
        assert_eq!(
            err,
            ChaosError::NodeOutOfRange {
                event: 0,
                node: 9,
                node_count: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn install_rejects_events_in_the_past() {
        let medium = two_node_medium();
        let mut k: Kernel<u32> = Kernel::new(1);
        // Advance the kernel past t=4 with a dummy message drain.
        let idle = k.add_actor(Box::new(Idle));
        k.schedule_message(SimTime::from_ticks(5), idle, idle, 0);
        k.run();
        let err = ChaosPlan::none()
            .crash_at(SimTime::from_ticks(4), 0)
            .install(&mut k, medium)
            .unwrap_err();
        assert!(matches!(err, ChaosError::EventInPast { event: 0, .. }));
    }

    #[test]
    fn validate_rejects_bad_probabilities_and_partitions() {
        let now = SimTime::ZERO;
        let bad_prob = ChaosPlan::none().degrade_link_at(SimTime::from_ticks(1), 0, 1, 1.5);
        assert!(matches!(
            bad_prob.validate(4, now),
            Err(ChaosError::InvalidProbability { event: 0, value }) if value == 1.5
        ));
        let nan = ChaosPlan::none().delivery_at(
            SimTime::from_ticks(1),
            DeliveryChaos {
                dup_prob: f64::NAN,
                reorder_prob: 0.0,
                reorder_max_extra_ticks: 0,
            },
        );
        assert!(matches!(
            nan.validate(4, now),
            Err(ChaosError::InvalidProbability { .. })
        ));
        let empty = ChaosPlan::none().partition_at(SimTime::from_ticks(1), vec![], vec![1]);
        assert_eq!(
            empty.validate(4, now),
            Err(ChaosError::EmptyPartitionGroup { event: 0 })
        );
        let overlap = ChaosPlan::none().partition_at(SimTime::from_ticks(1), vec![0, 1], vec![1]);
        assert_eq!(
            overlap.validate(4, now),
            Err(ChaosError::OverlappingPartitionGroups { event: 0, node: 1 })
        );
        let self_link = ChaosPlan::none().degrade_link_at(SimTime::from_ticks(1), 2, 2, 0.5);
        assert_eq!(
            self_link.validate(4, now),
            Err(ChaosError::SelfLink { event: 0, node: 2 })
        );
    }

    #[test]
    fn without_event_shrinks_by_one() {
        let plan = ChaosPlan::none()
            .crash_at(SimTime::from_ticks(1), 0)
            .crash_at(SimTime::from_ticks(2), 1)
            .heal_partition_at(SimTime::from_ticks(3));
        let shrunk = plan.without_event(1);
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.events()[0].kind, FaultKind::Crash { node: 0 });
        assert_eq!(shrunk.events()[1].kind, FaultKind::HealPartition);
        // Display is the shrink report's vocabulary.
        assert_eq!(format!("{}", plan.events()[0]), "t=1 crash(node 0)");
    }

    #[test]
    fn mid_run_install_arms_timers_relative_to_now() {
        let medium = two_node_medium();
        let mut k: Kernel<u32> = Kernel::new(1);
        let idle = k.add_actor(Box::new(Idle));
        k.schedule_message(SimTime::from_ticks(10), idle, idle, 0);
        k.run();
        assert_eq!(k.now(), SimTime::from_ticks(10));
        ChaosPlan::none()
            .crash_at(SimTime::from_ticks(15), 1)
            .install(&mut k, medium.clone())
            .unwrap();
        k.run();
        assert!(!medium.borrow().is_alive(1));
        assert_eq!(medium.borrow().death_time(1), Some(SimTime::from_ticks(15)));
    }
}
