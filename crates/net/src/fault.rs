//! Scheduled node-failure injection.
//!
//! The paper's topology-emulation protocol "should execute periodically"
//! because "new nodes can be added to the network or existing nodes can
//! leave or fail" (§5.1). Experiments exercise that path by scheduling
//! deaths with a [`FaultPlan`]; the plan installs itself as an actor that
//! kills nodes in the [`crate::medium::Medium`] at the scheduled instants.

use crate::medium::SharedMedium;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;
use wsn_sim::{Actor, ActorId, Context, Kernel, Payload, SimTime};

/// A list of `(time, node)` failures to inject.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, usize)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a failure of `node` at `time`.
    pub fn kill_at(mut self, time: SimTime, node: usize) -> Self {
        self.events.push((time, node));
        self
    }

    /// Scheduled failures.
    pub fn events(&self) -> &[(SimTime, usize)] {
        &self.events
    }

    /// Installs the plan into `kernel` as a fault-injector actor bound to
    /// `medium`. Returns the injector's actor id (harmless to ignore).
    pub fn install<M: Payload>(self, kernel: &mut Kernel<M>, medium: SharedMedium) -> ActorId {
        kernel.add_actor(Box::new(FaultInjector::<M> {
            plan: self,
            medium,
            _marker: PhantomData,
        }))
    }
}

struct FaultInjector<M> {
    plan: FaultPlan,
    medium: SharedMedium,
    _marker: PhantomData<fn() -> M>,
}

impl<M: Payload> Actor<M> for FaultInjector<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        for (idx, &(time, _)) in self.plan.events.iter().enumerate() {
            ctx.set_timer(time.ticks(), idx as u64);
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, M>, _from: ActorId, _msg: M) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let (_, node) = self.plan.events[tag as usize];
        self.medium.borrow_mut().kill(node, ctx.now());
        ctx.stats().incr("fault.injected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyLedger;
    use crate::geometry::Point;
    use crate::graph::UnitDiskGraph;
    use crate::medium::{LinkModel, Medium};
    use crate::radio::RadioModel;

    #[test]
    fn plan_builder_accumulates() {
        let p = FaultPlan::none()
            .kill_at(SimTime::from_ticks(5), 1)
            .kill_at(SimTime::from_ticks(9), 0);
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.events()[1], (SimTime::from_ticks(9), 0));
    }

    #[test]
    fn injector_kills_on_schedule() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::unlimited(2),
        )
        .shared();
        let mut k: Kernel<u32> = Kernel::new(1);
        FaultPlan::none()
            .kill_at(SimTime::from_ticks(3), 0)
            .kill_at(SimTime::from_ticks(7), 1)
            .install(&mut k, medium.clone());
        k.run_until(SimTime::from_ticks(5));
        assert!(!medium.borrow().is_alive(0));
        assert!(medium.borrow().is_alive(1));
        k.run();
        assert!(!medium.borrow().is_alive(1));
        assert_eq!(medium.borrow().death_time(0), Some(SimTime::from_ticks(3)));
        assert_eq!(medium.borrow().first_death(), Some(SimTime::from_ticks(3)));
        assert_eq!(k.stats().counter("fault.injected"), 2);
    }
}
