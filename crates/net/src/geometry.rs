//! Planar geometry for terrains and radio ranges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the terrain plane. `x` grows eastward, `y` grows southward,
/// so the origin is the terrain's north-west corner — matching the paper's
/// oriented grid whose level-k leaders sit at north-west corners.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Eastward coordinate.
    pub x: f64,
    /// Southward coordinate.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` (the paper's δ).
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for comparisons).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, closed on the north/west edges and open on
/// the south/east edges, so that a partition of the terrain into cells
/// assigns every point to exactly one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// North-west corner (inclusive).
    pub min: Point,
    /// South-east corner (exclusive).
    pub max: Point,
}

impl Rect {
    /// Constructs a rectangle from its corners; panics when degenerate.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(min.x < max.x && min.y < max.y, "degenerate rectangle");
        Rect { min, max }
    }

    /// Width (east–west extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north–south extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Half-open membership test.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// The farthest distance between any two points of the rectangle.
    pub fn diameter(&self) -> f64 {
        self.min.distance(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(1.5, -2.5);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn rect_center_and_dims() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.center(), Point::new(2.0, 1.0));
        assert!((r.diameter() - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_is_half_open() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(0.999, 0.999)));
        assert!(!r.contains(Point::new(1.0, 0.5)));
        assert!(!r.contains(Point::new(0.5, 1.0)));
        assert!(!r.contains(Point::new(-0.001, 0.5)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rect_panics() {
        Rect::new(Point::new(1.0, 0.0), Point::new(1.0, 1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Triangle inequality on random point triples.
        #[test]
        fn triangle_inequality(
            ax in -1e3f64..1e3, ay in -1e3f64..1e3,
            bx in -1e3f64..1e3, by in -1e3f64..1e3,
            cx in -1e3f64..1e3, cy in -1e3f64..1e3,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        /// A rectangle always contains its center.
        #[test]
        fn center_inside(
            x in -1e3f64..1e3, y in -1e3f64..1e3,
            w in 1e-3f64..1e3, h in 1e-3f64..1e3,
        ) {
            let r = Rect::new(Point::new(x, y), Point::new(x + w, y + h));
            prop_assert!(r.contains(r.center()));
        }
    }
}
