//! Deployment generators.
//!
//! The paper targets "large-scale, homogeneous, dense, arbitrarily deployed"
//! networks and assumes at least one sensor node in each geographic cell
//! (§3.2). We provide three placement families plus a *coverage repair*
//! pass that enforces the one-node-per-cell assumption by adding a node at
//! a random position inside any empty cell — modeling the paper's "as long
//! as there is at least one sensor node in each cell" precondition rather
//! than silently violating it.

use crate::geometry::Point;
use crate::terrain::{CellCoord, CellGrid, Terrain};
use serde::{Deserialize, Serialize};
use wsn_sim::DetRng;

/// How nodes are scattered over the terrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// `n` nodes i.i.d. uniform over the terrain.
    UniformRandom {
        /// Total node count.
        n: usize,
    },
    /// `per_cell` nodes per cell, each uniform within its cell. Dense and
    /// coverage-complete by construction; the closest synthetic equivalent
    /// of a planned high-density deployment.
    PerCell {
        /// Nodes per cell.
        per_cell: usize,
    },
    /// Gaussian clusters: `clusters` cluster centers uniform over the
    /// terrain, `per_cluster` nodes normally scattered around each with
    /// standard deviation `spread` (clipped to the terrain). Models
    /// airdropped deployments.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Nodes per cluster.
        per_cluster: usize,
        /// Standard deviation of the scatter.
        spread: f64,
    },
}

/// A complete description of a deployment to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Terrain side length `L`.
    pub terrain_side: f64,
    /// Cells per side `m` (the virtual grid is `m × m`).
    pub cells_per_side: u32,
    /// Node placement family.
    pub placement: Placement,
    /// When true, add one node at a random position inside every cell left
    /// empty by the placement (the paper's coverage assumption).
    pub ensure_coverage: bool,
}

impl DeploymentSpec {
    /// A dense, coverage-complete default: `per_cell` nodes in every cell
    /// of an `m × m` grid over a terrain where each cell has side 10.
    pub fn per_cell(m: u32, per_cell: usize) -> Self {
        DeploymentSpec {
            terrain_side: f64::from(m) * 10.0,
            cells_per_side: m,
            placement: Placement::PerCell { per_cell },
            ensure_coverage: true,
        }
    }

    /// Uniform-random placement of `n` nodes with coverage repair.
    pub fn uniform(m: u32, n: usize) -> Self {
        DeploymentSpec {
            terrain_side: f64::from(m) * 10.0,
            cells_per_side: m,
            placement: Placement::UniformRandom { n },
            ensure_coverage: true,
        }
    }

    /// Generates the deployment deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Deployment {
        let terrain = Terrain::square(self.terrain_side);
        let grid = CellGrid::new(terrain, self.cells_per_side);
        let mut rng = DetRng::stream(seed, 0xDE91);
        let mut positions = Vec::new();

        let uniform_point = |rng: &mut DetRng| {
            Point::new(
                rng.range_f64(0.0, terrain.side()),
                rng.range_f64(0.0, terrain.side()),
            )
        };

        match self.placement {
            Placement::UniformRandom { n } => {
                positions.extend((0..n).map(|_| uniform_point(&mut rng)));
            }
            Placement::PerCell { per_cell } => {
                for cell in grid.cells() {
                    let rect = grid.cell_rect(cell);
                    for _ in 0..per_cell {
                        positions.push(Point::new(
                            rng.range_f64(rect.min.x, rect.max.x),
                            rng.range_f64(rect.min.y, rect.max.y),
                        ));
                    }
                }
            }
            Placement::Clustered {
                clusters,
                per_cluster,
                spread,
            } => {
                for _ in 0..clusters {
                    let center = uniform_point(&mut rng);
                    for _ in 0..per_cluster {
                        let x = rng
                            .normal(center.x, spread)
                            .clamp(0.0, terrain.side() - f64::EPSILON * terrain.side());
                        let y = rng
                            .normal(center.y, spread)
                            .clamp(0.0, terrain.side() - f64::EPSILON * terrain.side());
                        positions.push(Point::new(x, y));
                    }
                }
            }
        }

        if self.ensure_coverage {
            let mut occupied = vec![false; grid.cell_count()];
            for &p in &positions {
                occupied[cell_index(&grid, grid.cell_of(p))] = true;
            }
            for cell in grid.cells() {
                if !occupied[cell_index(&grid, cell)] {
                    let rect = grid.cell_rect(cell);
                    positions.push(Point::new(
                        rng.range_f64(rect.min.x, rect.max.x),
                        rng.range_f64(rect.min.y, rect.max.y),
                    ));
                }
            }
        }

        Deployment::new(grid, positions)
    }
}

fn cell_index(grid: &CellGrid, c: CellCoord) -> usize {
    c.row as usize * grid.cells_per_side() as usize + c.col as usize
}

/// A concrete set of node positions over a cell-partitioned terrain.
#[derive(Debug, Clone)]
pub struct Deployment {
    grid: CellGrid,
    positions: Vec<Point>,
    nodes_by_cell: Vec<Vec<usize>>,
}

impl Deployment {
    /// Wraps explicit positions (used by tests and by generators).
    pub fn new(grid: CellGrid, positions: Vec<Point>) -> Self {
        let mut nodes_by_cell = vec![Vec::new(); grid.cell_count()];
        for (i, &p) in positions.iter().enumerate() {
            nodes_by_cell[cell_index(&grid, grid.cell_of(p))].push(i);
        }
        Deployment {
            grid,
            positions,
            nodes_by_cell,
        }
    }

    /// The cell partition.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Number of physical nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// All positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The cell node `i` lies in (the paper's map `f : V_R → V_V`).
    pub fn cell_of_node(&self, i: usize) -> CellCoord {
        self.grid.cell_of(self.positions[i])
    }

    /// Nodes lying in cell `c` (the paper's `E(v_{ij})`, the *emulation
    /// set* of virtual node `(i,j)`).
    pub fn nodes_in_cell(&self, c: CellCoord) -> &[usize] {
        &self.nodes_by_cell[cell_index(&self.grid, c)]
    }

    /// Whether every cell holds at least one node.
    pub fn covers_all_cells(&self) -> bool {
        self.nodes_by_cell.iter().all(|ns| !ns.is_empty())
    }

    /// Minimum and maximum nodes per cell.
    pub fn cell_occupancy_range(&self) -> (usize, usize) {
        let min = self.nodes_by_cell.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.nodes_by_cell.iter().map(Vec::len).max().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cell_places_exact_counts() {
        let d = DeploymentSpec::per_cell(4, 3).generate(1);
        assert_eq!(d.node_count(), 48);
        for cell in d.grid().cells() {
            assert_eq!(d.nodes_in_cell(cell).len(), 3);
        }
        assert!(d.covers_all_cells());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DeploymentSpec::uniform(6, 100);
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a.positions(), b.positions());
        let c = spec.generate(43);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn coverage_repair_fills_empty_cells() {
        // 3 nodes over 64 cells leaves most cells empty without repair.
        let spec = DeploymentSpec {
            terrain_side: 80.0,
            cells_per_side: 8,
            placement: Placement::UniformRandom { n: 3 },
            ensure_coverage: true,
        };
        let d = spec.generate(7);
        assert!(d.covers_all_cells());
        assert!(d.node_count() >= 64);
    }

    #[test]
    fn without_repair_sparse_deployment_misses_cells() {
        let spec = DeploymentSpec {
            terrain_side: 80.0,
            cells_per_side: 8,
            placement: Placement::UniformRandom { n: 3 },
            ensure_coverage: false,
        };
        let d = spec.generate(7);
        assert!(!d.covers_all_cells());
        assert_eq!(d.node_count(), 3);
    }

    #[test]
    fn positions_stay_inside_terrain() {
        for placement in [
            Placement::UniformRandom { n: 200 },
            Placement::PerCell { per_cell: 2 },
            Placement::Clustered {
                clusters: 5,
                per_cluster: 40,
                spread: 15.0,
            },
        ] {
            let spec = DeploymentSpec {
                terrain_side: 50.0,
                cells_per_side: 5,
                placement,
                ensure_coverage: false,
            };
            let d = spec.generate(3);
            for &p in d.positions() {
                assert!(
                    d.grid().terrain().bounds().contains(p),
                    "{p} outside terrain"
                );
            }
        }
    }

    #[test]
    fn cell_of_node_matches_membership_lists() {
        let d = DeploymentSpec::uniform(5, 80).generate(9);
        for i in 0..d.node_count() {
            let c = d.cell_of_node(i);
            assert!(d.nodes_in_cell(c).contains(&i));
        }
        let total: usize = d.grid().cells().map(|c| d.nodes_in_cell(c).len()).sum();
        assert_eq!(total, d.node_count());
    }

    #[test]
    fn occupancy_range_brackets_all_cells() {
        let d = DeploymentSpec::per_cell(3, 4).generate(2);
        assert_eq!(d.cell_occupancy_range(), (4, 4));
    }

    #[test]
    fn clustered_deployment_is_clumpy() {
        let spec = DeploymentSpec {
            terrain_side: 100.0,
            cells_per_side: 10,
            placement: Placement::Clustered {
                clusters: 2,
                per_cluster: 50,
                spread: 3.0,
            },
            ensure_coverage: false,
        };
        let d = spec.generate(11);
        let (min, max) = d.cell_occupancy_range();
        assert_eq!(min, 0, "tight clusters should leave empty cells");
        assert!(max > 5, "cluster cells should be dense, max={max}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Coverage repair always yields full coverage, for any placement.
        #[test]
        fn repair_guarantees_coverage(n in 0usize..60, m in 1u32..9, seed in 0u64..1000) {
            let spec = DeploymentSpec {
                terrain_side: f64::from(m) * 10.0,
                cells_per_side: m,
                placement: Placement::UniformRandom { n },
                ensure_coverage: true,
            };
            let d = spec.generate(seed);
            prop_assert!(d.covers_all_cells());
            prop_assert!(d.node_count() >= (m as usize).pow(2).max(n));
        }
    }
}
