//! The deployment terrain and its partition into cells.
//!
//! §5.1 of the paper: a square terrain of side `L` is partitioned into
//! non-overlapping equal cells of side `d` with `m = L/d` cells per side,
//! one cell per vertex of the `m × m` virtual grid `G_V`. Every node knows
//! its own coordinates and the terrain boundary, so it can compute which
//! cell it lies in and the cell's geographic center — both used by the
//! runtime protocols.

use crate::geometry::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A cell's (column, row) coordinates in the oriented grid.
/// Column 0 is the west edge; row 0 is the north edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    /// Column (west → east).
    pub col: u32,
    /// Row (north → south).
    pub row: u32,
}

impl CellCoord {
    /// Constructs a cell coordinate.
    pub const fn new(col: u32, row: u32) -> Self {
        CellCoord { col, row }
    }

    /// Manhattan (grid-hop) distance to `other` — the cost-model distance
    /// between virtual nodes under shortest-path grid routing.
    pub fn manhattan(self, other: CellCoord) -> u32 {
        self.col.abs_diff(other.col) + self.row.abs_diff(other.row)
    }
}

/// The square deployment terrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    side: f64,
}

impl Terrain {
    /// A square terrain of the given side length.
    pub fn square(side: f64) -> Self {
        assert!(
            side > 0.0 && side.is_finite(),
            "terrain side must be positive"
        );
        Terrain { side }
    }

    /// Side length `L`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Bounding rectangle `[0, L) × [0, L)`.
    pub fn bounds(&self) -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(self.side, self.side))
    }
}

/// The partition of a terrain into an `m × m` grid of square cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellGrid {
    terrain: Terrain,
    cells_per_side: u32,
}

impl CellGrid {
    /// Partitions `terrain` into `m × m` cells.
    pub fn new(terrain: Terrain, cells_per_side: u32) -> Self {
        assert!(cells_per_side > 0, "need at least one cell per side");
        CellGrid {
            terrain,
            cells_per_side,
        }
    }

    /// The terrain being partitioned.
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    /// Cells per side, `m`.
    pub fn cells_per_side(&self) -> u32 {
        self.cells_per_side
    }

    /// Total number of cells, `m²`.
    pub fn cell_count(&self) -> usize {
        (self.cells_per_side as usize).pow(2)
    }

    /// Cell side length `d = L / m`.
    pub fn cell_size(&self) -> f64 {
        self.terrain.side() / f64::from(self.cells_per_side)
    }

    /// The minimum transmission range that makes any two nodes in the same
    /// or edge-adjacent cells radio neighbors: `r ≥ d·√5` covers the worst
    /// case (opposite corners of a 1×2 cell domino). The paper states the
    /// relation as `d = r / c` for a constant `c`; this is that constant's
    /// tight value.
    pub fn range_for_adjacent_cell_reachability(&self) -> f64 {
        self.cell_size() * 5.0_f64.sqrt()
    }

    /// The cell containing `p`. Points on the south/east terrain boundary
    /// are clamped into the last cell so that deployments sampling the
    /// closed square never fall outside the partition.
    pub fn cell_of(&self, p: Point) -> CellCoord {
        let m = self.cells_per_side;
        let d = self.cell_size();
        let col = ((p.x / d).floor() as i64).clamp(0, i64::from(m) - 1) as u32;
        let row = ((p.y / d).floor() as i64).clamp(0, i64::from(m) - 1) as u32;
        CellCoord::new(col, row)
    }

    /// The rectangle of cell `c`.
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        assert!(self.in_bounds(c), "cell {c:?} out of bounds");
        let d = self.cell_size();
        let min = Point::new(f64::from(c.col) * d, f64::from(c.row) * d);
        Rect::new(min, Point::new(min.x + d, min.y + d))
    }

    /// The geographic center `X_{ij}` of cell `c` (used by the binding
    /// protocol, §5.2).
    pub fn cell_center(&self, c: CellCoord) -> Point {
        self.cell_rect(c).center()
    }

    /// Whether `c` is a valid cell of this grid.
    pub fn in_bounds(&self, c: CellCoord) -> bool {
        c.col < self.cells_per_side && c.row < self.cells_per_side
    }

    /// Iterates over all cells in row-major (north-to-south, west-to-east)
    /// order.
    pub fn cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let m = self.cells_per_side;
        (0..m).flat_map(move |row| (0..m).map(move |col| CellCoord::new(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> CellGrid {
        CellGrid::new(Terrain::square(40.0), 4)
    }

    #[test]
    fn cell_size_divides_terrain() {
        assert_eq!(grid4().cell_size(), 10.0);
        assert_eq!(grid4().cell_count(), 16);
    }

    #[test]
    fn cell_of_maps_interior_points() {
        let g = grid4();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(9.99, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(10.0, 0.0)), CellCoord::new(1, 0));
        assert_eq!(g.cell_of(Point::new(35.0, 25.0)), CellCoord::new(3, 2));
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let g = grid4();
        assert_eq!(g.cell_of(Point::new(40.0, 40.0)), CellCoord::new(3, 3));
        assert_eq!(g.cell_of(Point::new(-0.5, 50.0)), CellCoord::new(0, 3));
    }

    #[test]
    fn cell_rect_contains_its_center() {
        let g = grid4();
        for c in g.cells() {
            let rect = g.cell_rect(c);
            assert!(rect.contains(g.cell_center(c)));
            assert_eq!(g.cell_of(g.cell_center(c)), c);
        }
    }

    #[test]
    fn cells_iterates_row_major_exactly_once() {
        let g = grid4();
        let all: Vec<CellCoord> = g.cells().collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], CellCoord::new(0, 0));
        assert_eq!(all[1], CellCoord::new(1, 0));
        assert_eq!(all[4], CellCoord::new(0, 1));
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(CellCoord::new(0, 0).manhattan(CellCoord::new(3, 2)), 5);
        assert_eq!(CellCoord::new(3, 2).manhattan(CellCoord::new(0, 0)), 5);
        assert_eq!(CellCoord::new(1, 1).manhattan(CellCoord::new(1, 1)), 0);
    }

    #[test]
    fn adjacency_range_covers_worst_case_pair() {
        let g = grid4();
        let r = g.range_for_adjacent_cell_reachability();
        // Worst case: NW corner of a cell to SE corner of its east neighbor.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(20.0, 10.0); // two cells east, one south: NOT adjacent
        let adj = Point::new(19.999, 9.999); // far corner of the east neighbor
        assert!(a.distance(adj) <= r);
        assert!(a.distance(b) > r - 1e-9 || a.distance(b) <= r); // sanity only
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cell_rect_out_of_bounds_panics() {
        grid4().cell_rect(CellCoord::new(4, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_terrain_panics() {
        Terrain::square(0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every terrain point belongs to exactly the cell whose rect contains it.
        #[test]
        fn cell_of_agrees_with_rects(
            x in 0.0f64..100.0,
            y in 0.0f64..100.0,
            m in 1u32..12,
        ) {
            let g = CellGrid::new(Terrain::square(100.0), m);
            let p = Point::new(x, y);
            let c = g.cell_of(p);
            prop_assert!(g.in_bounds(c));
            prop_assert!(g.cell_rect(c).contains(p));
        }

        /// Manhattan distance is a metric on cell coordinates.
        #[test]
        fn manhattan_metric(
            a in 0u32..100, b in 0u32..100,
            c in 0u32..100, d in 0u32..100,
            e in 0u32..100, f in 0u32..100,
        ) {
            let p = CellCoord::new(a, b);
            let q = CellCoord::new(c, d);
            let r = CellCoord::new(e, f);
            prop_assert_eq!(p.manhattan(q), q.manhattan(p));
            prop_assert_eq!(p.manhattan(p), 0);
            prop_assert!(p.manhattan(r) <= p.manhattan(q) + q.manhattan(r));
        }
    }
}
