//! # wsn-net — physical sensor-network substrate
//!
//! The paper's runtime system (§5) presumes `n` identical sensor nodes
//! deployed over a square terrain of side `L`, each with transmission range
//! `r`, forming a unit-disk graph `G_R = (V_R, E_R)` with an edge whenever
//! the Euclidean distance is at most `r`. This crate builds that world:
//!
//! * [`geometry`] — points, rectangles, distances;
//! * [`terrain`] — the deployment terrain and its partition into square
//!   cells, one per virtual-grid vertex;
//! * [`deployment`] — deployment generators (uniform random, perturbed
//!   grid, clustered), with an optional *coverage repair* pass that
//!   guarantees at least one node per cell — the paper's standing
//!   assumption;
//! * [`graph`] — the unit-disk connectivity graph with BFS utilities,
//!   connected components, and per-cell induced-subgraph checks;
//! * [`radio`] & [`energy`] — the uniform cost model's physical side: unit
//!   energy per unit data transmitted/received/computed, with a per-node
//!   energy ledger;
//! * [`medium`] — the shared wireless medium used by node actors to
//!   unicast/broadcast to radio neighbors through the simulation kernel,
//!   with configurable latency, jitter, and loss;
//! * [`fault`] — chaos injection: crashes, recoveries, link degradation,
//!   partitions, delivery anomalies, and energy shocks on a schedule;
//! * [`frame`] — fixed-size wire frames, bounded payload encodings, and
//!   the run-sized frame arena behind the certified zero-copy hot path.

#![forbid(unsafe_code)]

pub mod deployment;
pub mod energy;
pub mod fault;
pub mod frame;
pub mod geometry;
pub mod graph;
pub mod medium;
pub mod radio;
pub mod terrain;

pub use deployment::{Deployment, DeploymentSpec, Placement};
pub use energy::{EnergyKind, EnergyLedger, EnergySnapshot};
pub use fault::{ChaosError, ChaosEvent, ChaosPlan, FaultKind, FaultPlan};
pub use frame::{
    FrameBuf, FramePool, WireError, WirePayload, FRAME_BYTES, FRAME_HEADER_BYTES,
    FRAME_PAYLOAD_CAPACITY,
};
pub use geometry::{Point, Rect};
pub use graph::UnitDiskGraph;
pub use medium::{DeliveryChaos, LinkModel, MacModel, Medium, SharedMedium};
pub use radio::RadioModel;
pub use terrain::{CellCoord, CellGrid, Terrain};
