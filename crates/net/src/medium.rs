//! The shared wireless medium.
//!
//! Node actors do not schedule kernel events at each other directly; they
//! go through the [`Medium`], which enforces the physical rules the paper
//! assumes:
//!
//! * only radio neighbors (unit-disk edges) can communicate;
//! * transmission is broadcast by nature — one transmission charges the
//!   sender once and every in-range receiver pays reception energy
//!   (the wireless broadcast advantage);
//! * latency follows the uniform cost model (ticks ∝ data units), plus
//!   optional uniform jitter so the asynchronous-delivery assumption of
//!   §4.3 ("latency of message delivery is unpredictable") is exercised;
//! * messages may be dropped with a configurable probability;
//! * dead nodes (failed or energy-depleted) neither send nor receive.
//!
//! The medium is shared among actors as `Rc<RefCell<_>>` — the kernel is
//! single-threaded, so this is safe and keeps actors free of locking.

use crate::energy::{EnergyKind, EnergyLedger};
use crate::graph::UnitDiskGraph;
use crate::radio::RadioModel;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use wsn_sim::{
    ActorId, CausalStamp, Context, DispatchTag, OrderTap, Payload, SharedCausalLog, SimTime,
};

/// Stochastic message duplication and reordering — the delivery anomalies
/// a chaos plan can switch on mid-run ([`crate::fault::FaultKind`]).
///
/// Duplication delivers a second copy of a successfully received message
/// a few ticks later; reordering adds bounded extra delay to a fraction of
/// deliveries so later sends can overtake earlier ones. Both default to
/// off and cost no RNG draws while off, so existing seeds replay
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryChaos {
    /// Probability that a delivered message is duplicated.
    pub dup_prob: f64,
    /// Probability that a delivery is held back for extra ticks.
    pub reorder_prob: f64,
    /// Maximum extra delay (uniform in `[1, max_extra_ticks]`) of a
    /// held-back delivery.
    pub reorder_max_extra_ticks: u64,
}

impl DeliveryChaos {
    /// No anomalies — the default.
    pub fn none() -> Self {
        DeliveryChaos {
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_max_extra_ticks: 0,
        }
    }

    fn is_off(&self) -> bool {
        self.dup_prob == 0.0 && self.reorder_prob == 0.0
    }
}

impl Default for DeliveryChaos {
    fn default() -> Self {
        DeliveryChaos::none()
    }
}

/// Channel-access discipline.
///
/// §2 of the paper: "the model could support synchronous algorithms
/// (e.g., TDMA), purely asynchronous message-passing paradigms, or a
/// combination of the two." [`MacModel::Ideal`] is the asynchronous
/// paradigm (transmit immediately); [`MacModel::Tdma`] defers every
/// transmission to the start of the sender's next slot, modeling a
/// synchronized, collision-free schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacModel {
    /// Transmit immediately (no channel-access delay).
    Ideal,
    /// Slotted access: node `i` owns slot `i mod frame_slots`; a frame is
    /// `frame_slots × slot_ticks` long, and a transmission waits for the
    /// start of the sender's next slot.
    Tdma {
        /// Slots per frame.
        frame_slots: u64,
        /// Ticks per slot.
        slot_ticks: u64,
    },
}

impl MacModel {
    /// Ticks node `sender` must wait at `now_ticks` before transmitting.
    pub fn access_delay(self, sender: usize, now_ticks: u64) -> u64 {
        match self {
            MacModel::Ideal => 0,
            MacModel::Tdma {
                frame_slots,
                slot_ticks,
            } => {
                assert!(frame_slots > 0 && slot_ticks > 0, "degenerate TDMA frame");
                let frame = frame_slots * slot_ticks;
                let my_slot_start = (sender as u64 % frame_slots) * slot_ticks;
                let pos = now_ticks % frame;
                if pos <= my_slot_start {
                    my_slot_start - pos
                } else {
                    frame - pos + my_slot_start
                }
            }
        }
    }
}

/// Stochastic link behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Independent per-delivery drop probability.
    pub drop_prob: f64,
    /// Maximum extra delivery delay, drawn uniformly from `[0, jitter]`.
    pub jitter_ticks: u64,
}

impl LinkModel {
    /// Perfect links: no loss, no jitter — the cost-model ideal.
    pub fn ideal() -> Self {
        LinkModel {
            drop_prob: 0.0,
            jitter_ticks: 0,
        }
    }

    /// Lossy links with the given drop probability and jitter bound.
    pub fn lossy(drop_prob: f64, jitter_ticks: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of [0,1]");
        LinkModel {
            drop_prob,
            jitter_ticks,
        }
    }
}

/// The shared-state wireless medium.
pub struct Medium {
    graph: UnitDiskGraph,
    radio: RadioModel,
    link: LinkModel,
    mac: MacModel,
    ledger: EnergyLedger,
    alive: Vec<bool>,
    death_time: Vec<Option<SimTime>>,
    actor_of: Vec<Option<ActorId>>,
    /// Per-link drop-probability overrides, keyed by canonical (min, max)
    /// node pair; the effective drop rate is the max of this and the
    /// global link model (a chaos plan can ramp a link up, never repair it
    /// below the ambient loss).
    link_overrides: BTreeMap<(usize, usize), f64>,
    /// Partition group per node (0 = unassigned). Traffic between nodes in
    /// different non-zero groups is blocked.
    partition: Option<Vec<u8>>,
    /// Duplication / reordering anomalies.
    chaos: DeliveryChaos,
    /// Causal send/deliver event log, when causal tracing is enabled.
    causal: Option<SharedCausalLog>,
    /// A send event recorded by the caller for the very next
    /// transmission (see [`Medium::causal_send_stamp`]).
    prestamp: Option<CausalStamp>,
    /// Sharded-scheduler order tap: while it holds a live tag, energy
    /// charges are journaled instead of applied, so the f64 accumulation
    /// order can be replayed canonically at the window barrier
    /// (see [`Medium::apply_energy_journal`]).
    tap: Option<OrderTap>,
    /// Deferred charges `(tag, node, kind, units)` in append order.
    journal: Vec<(DispatchTag, usize, EnergyKind, f64)>,
}

/// Handle shared by all node actors in one simulation.
pub type SharedMedium = Rc<RefCell<Medium>>;

impl Medium {
    /// Creates a medium over `graph` with the given radio, link model and
    /// energy ledger (which must track exactly the graph's nodes).
    pub fn new(
        graph: UnitDiskGraph,
        radio: RadioModel,
        link: LinkModel,
        ledger: EnergyLedger,
    ) -> Self {
        assert_eq!(
            graph.node_count(),
            ledger.node_count(),
            "ledger population must match graph"
        );
        let n = graph.node_count();
        Medium {
            graph,
            radio,
            link,
            mac: MacModel::Ideal,
            ledger,
            alive: vec![true; n],
            death_time: vec![None; n],
            actor_of: vec![None; n],
            link_overrides: BTreeMap::new(),
            partition: None,
            chaos: DeliveryChaos::none(),
            causal: None,
            prestamp: None,
            tap: None,
            journal: Vec::new(),
        }
    }

    /// Number of physical nodes in the medium.
    pub fn node_count(&self) -> usize {
        self.alive.len()
    }

    /// Wraps a medium for sharing among actors.
    pub fn shared(self) -> SharedMedium {
        Rc::new(RefCell::new(self))
    }

    /// Associates physical node `node` with kernel actor `actor`.
    /// Must be called for every node before any traffic flows.
    pub fn bind_actor(&mut self, node: usize, actor: ActorId) {
        self.actor_of[node] = Some(actor);
    }

    /// The connectivity graph.
    pub fn graph(&self) -> &UnitDiskGraph {
        &self.graph
    }

    /// The radio model.
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// The current link model.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Replaces the link model mid-simulation (e.g. reliable control
    /// phases followed by a lossy application phase).
    pub fn set_link(&mut self, link: LinkModel) {
        self.link = link;
    }

    /// The channel-access discipline.
    pub fn mac(&self) -> MacModel {
        self.mac
    }

    /// Replaces the channel-access discipline.
    pub fn set_mac(&mut self, mac: MacModel) {
        self.mac = mac;
    }

    /// The energy ledger (read side).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Raises the drop probability of the link `{a, b}` to `drop_prob`
    /// (both directions). Repeated calls at increasing probabilities model
    /// a loss ramp; [`Medium::restore_link`] removes the override.
    pub fn degrade_link(&mut self, a: usize, b: usize, drop_prob: f64) {
        let key = (a.min(b), a.max(b));
        self.link_overrides.insert(key, drop_prob);
    }

    /// Removes the per-link override of `{a, b}`, restoring the global
    /// link model.
    pub fn restore_link(&mut self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        self.link_overrides.remove(&key);
    }

    /// Splits the network: traffic between `group_a` and `group_b` is
    /// blocked (both directions) until [`Medium::heal_partition`]. Nodes
    /// in neither group keep talking to everyone.
    pub fn set_partition(&mut self, group_a: &[usize], group_b: &[usize]) {
        let mut groups = vec![0u8; self.alive.len()];
        for &n in group_a {
            groups[n] = 1;
        }
        for &n in group_b {
            groups[n] = 2;
        }
        self.partition = Some(groups);
    }

    /// Removes the partition, if one is active.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Whether a partition currently blocks `from -> to`.
    pub fn partition_blocks(&self, from: usize, to: usize) -> bool {
        match &self.partition {
            None => false,
            Some(groups) => groups[from] != 0 && groups[to] != 0 && groups[from] != groups[to],
        }
    }

    /// Attaches a shared causal log: every subsequent transmission
    /// records a send event and every arrival a deliver event (at the
    /// scheduled delivery instant, linked to the send by sequence
    /// number).
    pub fn set_causal(&mut self, log: SharedCausalLog) {
        self.causal = Some(log);
    }

    /// The attached causal log, if tracing is enabled.
    pub fn causal_log(&self) -> Option<&SharedCausalLog> {
        self.causal.as_ref()
    }

    /// Records a send event on behalf of the caller and arms it for the
    /// next transmission, so the caller can copy the returned stamp into
    /// the message payload *before* handing it to
    /// [`Medium::unicast`]/[`Medium::broadcast`] (which would otherwise
    /// self-stamp with a generic label and no cause). Returns
    /// [`CausalStamp::NONE`] when causal tracing is off.
    pub fn causal_send_stamp(
        &mut self,
        from: usize,
        now: SimTime,
        cause: u64,
        label: &str,
        units: u64,
    ) -> CausalStamp {
        let Some(log) = &self.causal else {
            return CausalStamp::NONE;
        };
        let stamp = log.borrow_mut().record_send(from, now, cause, label, units);
        self.prestamp = Some(stamp);
        stamp
    }

    /// The stamp for the transmission happening right now: the armed
    /// pre-stamp if the caller recorded one, else a fresh generic send
    /// event (control traffic the application layer never stamps).
    fn tx_stamp(&mut self, from: usize, now: SimTime, units: u64) -> CausalStamp {
        if let Some(stamp) = self.prestamp.take() {
            return stamp;
        }
        match &self.causal {
            Some(log) => log.borrow_mut().record_send(from, now, 0, "net.tx", units),
            None => CausalStamp::NONE,
        }
    }

    /// Records the deliver event paired with `stamp` at arrival time
    /// `at`, reusing the send event's label so waterfalls read naturally.
    fn record_deliver(&self, at: SimTime, to: usize, stamp: CausalStamp, units: u64) {
        if let Some(log) = &self.causal {
            let mut log = log.borrow_mut();
            let label = if stamp.is_some() {
                log.events()[stamp.seq as usize - 1].label.clone()
            } else {
                "net.rx".to_string()
            };
            log.record_deliver(to, at, stamp, &label, units);
        }
    }

    /// Replaces the duplication/reordering anomaly model.
    pub fn set_delivery_chaos(&mut self, chaos: DeliveryChaos) {
        self.chaos = chaos;
    }

    /// The current duplication/reordering anomaly model.
    pub fn delivery_chaos(&self) -> DeliveryChaos {
        self.chaos
    }

    /// Connects the medium to the sharded scheduler's order tap. While
    /// the tap holds a live [`DispatchTag`], energy charges are journaled
    /// under that tag instead of hitting the ledger, because f64
    /// accumulation is order-sensitive and shard processing order differs
    /// from the sequential dispatch order. The runtime only engages
    /// sharded execution on unlimited ledgers, so deferring charges
    /// cannot change depletion behavior.
    pub fn set_order_tap(&mut self, tap: OrderTap) {
        self.tap = Some(tap);
    }

    /// Replays all journaled charges into the ledger in canonical window
    /// order (`tags` is the scheduler's barrier-hook order; intra-tag
    /// charges keep their append order). Called once per window barrier.
    pub fn apply_energy_journal(&mut self, tags: &[DispatchTag]) {
        if self.journal.is_empty() {
            return;
        }
        let rank: BTreeMap<DispatchTag, usize> =
            tags.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut journal = std::mem::take(&mut self.journal);
        journal.sort_by_key(|&(tag, ..)| {
            rank.get(&tag)
                .copied()
                .unwrap_or_else(|| panic!("journaled charge under unknown dispatch tag {tag:?}"))
        });
        for (_, node, kind, units) in journal {
            self.ledger.charge(node, kind, units);
        }
    }

    /// Charges the ledger directly, or journals the charge when a sharded
    /// window is in progress (see [`Medium::set_order_tap`]).
    fn charge_energy(&mut self, node: usize, kind: EnergyKind, units: f64) {
        let tag = self
            .tap
            .as_ref()
            .map(|t| t.get())
            .unwrap_or(DispatchTag::NONE);
        if tag.is_none() {
            self.ledger.charge(node, kind, units);
        } else {
            self.journal.push((tag, node, kind, units));
        }
    }

    /// Instantly burns `units` of compute energy from `node` (a chaos
    /// energy shock), killing it if its budget runs out. A no-op on
    /// unlimited ledgers beyond the accounting entry.
    pub fn drain_energy(&mut self, node: usize, units: f64, now: SimTime) {
        self.charge_energy(node, EnergyKind::Compute, units);
        self.check_depletion(node, now);
    }

    /// The effective drop probability of `from -> to`: the global link
    /// model, raised by any per-link override.
    fn effective_drop(&self, from: usize, to: usize) -> f64 {
        let key = (from.min(to), from.max(to));
        match self.link_overrides.get(&key) {
            Some(&p) => p.max(self.link.drop_prob),
            None => self.link.drop_prob,
        }
    }

    /// Whether `node` is alive (not failed, not depleted).
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Marks `node` dead at `now` (fault injection or budget depletion).
    pub fn kill(&mut self, node: usize, now: SimTime) {
        if self.alive[node] {
            self.alive[node] = false;
            self.death_time[node] = Some(now);
        }
    }

    /// Brings `node` (back) to life — §5.1's "new nodes can be added to
    /// the network", modeled as pre-deployed nodes waking up. A node that
    /// died of budget depletion stays dead (its ledger is still empty).
    pub fn wake(&mut self, node: usize) -> bool {
        if self.ledger.is_depleted(node) {
            return false;
        }
        self.alive[node] = true;
        self.death_time[node] = None;
        true
    }

    /// When `node` died, if it did.
    pub fn death_time(&self, node: usize) -> Option<SimTime> {
        self.death_time[node]
    }

    /// Earliest death in the network — the "system lifetime" under the
    /// first-node-death definition.
    pub fn first_death(&self) -> Option<SimTime> {
        self.death_time.iter().flatten().min().copied()
    }

    /// Charges computation energy to `node` (e.g. a merge over `units` of
    /// data), killing it if the budget runs out.
    pub fn charge_compute<M: Payload>(
        &mut self,
        ctx: &mut Context<'_, M>,
        node: usize,
        units: f64,
    ) {
        self.charge_energy(
            node,
            EnergyKind::Compute,
            units * self.radio.compute_energy_per_unit,
        );
        ctx.stats().incr("medium.compute");
        self.check_depletion(node, ctx.now());
    }

    fn check_depletion(&mut self, node: usize, now: SimTime) {
        if self.ledger.is_depleted(node) {
            self.kill(node, now);
        }
    }

    fn delivery_delay<M: Payload>(
        &self,
        ctx: &mut Context<'_, M>,
        from: usize,
        units: u64,
    ) -> SimTime {
        let access = self.mac.access_delay(from, ctx.now().ticks());
        let base = self.radio.tx_ticks(units);
        let jitter = if self.link.jitter_ticks == 0 {
            0
        } else {
            ctx.rng().bounded_u64(self.link.jitter_ticks + 1)
        };
        SimTime::from_ticks(access + base + jitter)
    }

    /// Attempts delivery of one already-transmitted copy to `to`: loss,
    /// partition and liveness checks, reception energy, and the optional
    /// chaos anomalies (reorder delay, duplicated copy). Returns whether
    /// the primary copy was delivered.
    fn try_deliver<M: Payload + Clone>(
        &mut self,
        ctx: &mut Context<'_, M>,
        from: usize,
        to: usize,
        units: u64,
        msg: M,
        stamp: CausalStamp,
    ) -> bool {
        if self.partition_blocks(from, to) {
            ctx.stats().incr("medium.partition_blocked");
            ctx.stats().incr("medium.dropped");
            return false;
        }
        if !self.alive[to] || ctx.rng().chance(self.effective_drop(from, to)) {
            ctx.stats().incr("medium.dropped");
            return false;
        }
        self.charge_energy(
            to,
            EnergyKind::Rx,
            units as f64 * self.radio.rx_energy_per_unit,
        );
        self.check_depletion(to, ctx.now());
        ctx.stats().incr("medium.delivered");
        let mut delay = self.delivery_delay(ctx, from, units);
        let actor = self.actor_of[to].expect("destination node has no bound actor");
        if self.chaos.is_off() {
            self.record_deliver(ctx.now() + delay, to, stamp, units);
            ctx.send(actor, delay, msg);
            return true;
        }
        if self.chaos.reorder_prob > 0.0
            && self.chaos.reorder_max_extra_ticks > 0
            && ctx.rng().chance(self.chaos.reorder_prob)
        {
            delay = delay + 1 + ctx.rng().bounded_u64(self.chaos.reorder_max_extra_ticks);
            ctx.stats().incr("medium.reordered");
        }
        if self.chaos.dup_prob > 0.0 && ctx.rng().chance(self.chaos.dup_prob) {
            // The duplicate is a second physical reception: it pays rx
            // energy and lands a few ticks after the original.
            self.charge_energy(
                to,
                EnergyKind::Rx,
                units as f64 * self.radio.rx_energy_per_unit,
            );
            self.check_depletion(to, ctx.now());
            let dup_delay = delay + 1 + ctx.rng().bounded_u64(4);
            ctx.stats().incr("medium.duplicated");
            self.record_deliver(ctx.now() + dup_delay, to, stamp, units);
            ctx.send(actor, dup_delay, msg.clone());
        }
        self.record_deliver(ctx.now() + delay, to, stamp, units);
        ctx.send(actor, delay, msg);
        true
    }

    /// Sends `msg` from `from` to radio neighbor `to` carrying `units` of
    /// data. Returns `true` when the message was put on the air *and*
    /// survived the loss process (the sender cannot observe the
    /// difference; the return value is for harness bookkeeping only).
    ///
    /// Panics if `to` is not a radio neighbor of `from` — protocols built
    /// on the virtual architecture must route hop by hop.
    pub fn unicast<M: Payload + Clone>(
        &mut self,
        ctx: &mut Context<'_, M>,
        from: usize,
        to: usize,
        units: u64,
        msg: M,
    ) -> bool {
        assert!(
            self.graph.are_neighbors(from, to),
            "unicast {from}->{to}: not radio neighbors"
        );
        if !self.alive[from] {
            self.prestamp = None;
            return false;
        }
        self.charge_energy(
            from,
            EnergyKind::Tx,
            units as f64 * self.radio.tx_energy_per_unit,
        );
        ctx.stats().incr("medium.tx");
        ctx.stats().add("medium.tx_units", units);
        self.check_depletion(from, ctx.now());
        let stamp = self.tx_stamp(from, ctx.now(), units);
        self.try_deliver(ctx, from, to, units, msg, stamp)
    }

    /// Broadcasts `msg` from `from` to *all* its radio neighbors with one
    /// transmission (one tx charge; each live receiver pays rx). Returns
    /// the number of neighbors that actually received it.
    pub fn broadcast<M: Payload + Clone>(
        &mut self,
        ctx: &mut Context<'_, M>,
        from: usize,
        units: u64,
        msg: M,
    ) -> usize {
        if !self.alive[from] {
            self.prestamp = None;
            return 0;
        }
        self.charge_energy(
            from,
            EnergyKind::Tx,
            units as f64 * self.radio.tx_energy_per_unit,
        );
        ctx.stats().incr("medium.tx");
        ctx.stats().add("medium.tx_units", units);
        self.check_depletion(from, ctx.now());

        let stamp = self.tx_stamp(from, ctx.now(), units);
        let neighbors: Vec<usize> = self.graph.neighbors(from).to_vec();
        let mut delivered = 0;
        for to in neighbors {
            if self.try_deliver(ctx, from, to, units, msg.clone(), stamp) {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod mac_tests {
    use super::*;

    #[test]
    fn ideal_mac_never_waits() {
        for t in [0u64, 5, 99] {
            assert_eq!(MacModel::Ideal.access_delay(3, t), 0);
        }
    }

    #[test]
    fn tdma_waits_for_own_slot() {
        let mac = MacModel::Tdma {
            frame_slots: 4,
            slot_ticks: 2,
        }; // frame = 8
           // Node 0 owns [0,2), node 1 [2,4), node 2 [4,6), node 3 [6,8).
        assert_eq!(mac.access_delay(0, 0), 0);
        assert_eq!(mac.access_delay(1, 0), 2);
        assert_eq!(mac.access_delay(3, 0), 6);
        // Mid-frame: node 0 at t=1 is inside... access at slot *start*:
        // pos=1 > start=0 → wait to next frame start = 7.
        assert_eq!(mac.access_delay(0, 1), 7);
        assert_eq!(mac.access_delay(2, 3), 1);
        assert_eq!(mac.access_delay(2, 4), 0);
        assert_eq!(mac.access_delay(2, 5), 7);
        // Slot ownership wraps by node id.
        assert_eq!(mac.access_delay(4, 0), 0);
        assert_eq!(mac.access_delay(5, 0), 2);
    }

    #[test]
    fn tdma_delay_is_bounded_by_frame() {
        let mac = MacModel::Tdma {
            frame_slots: 8,
            slot_ticks: 3,
        };
        for sender in 0..20 {
            for now in 0..50 {
                assert!(mac.access_delay(sender, now) < 24);
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate TDMA")]
    fn zero_slot_frame_panics() {
        MacModel::Tdma {
            frame_slots: 0,
            slot_ticks: 1,
        }
        .access_delay(0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use wsn_sim::{Actor, Kernel};

    /// Message: just the hop count so far.
    type Msg = u32;

    struct Node {
        phys: usize,
        medium: SharedMedium,
        forward_to: Option<usize>,
        received: Vec<Msg>,
    }

    impl Actor<Msg> for Node {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ActorId, msg: Msg) {
            self.received.push(msg);
            if let Some(next) = self.forward_to {
                self.medium
                    .clone()
                    .borrow_mut()
                    .unicast(ctx, self.phys, next, 2, msg + 1);
            }
        }
    }

    fn three_node_line() -> (Kernel<Msg>, SharedMedium, Vec<ActorId>) {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::unlimited(3),
        )
        .shared();
        let mut k: Kernel<Msg> = Kernel::new(7);
        let mut actors = Vec::new();
        for phys in 0..3 {
            let forward_to = if phys < 2 { Some(phys + 1) } else { None };
            let a = k.add_actor(Box::new(Node {
                phys,
                medium: medium.clone(),
                forward_to,
                received: vec![],
            }));
            medium.borrow_mut().bind_actor(phys, a);
            actors.push(a);
        }
        (k, medium, actors)
    }

    #[test]
    fn unicast_chain_delivers_and_charges() {
        let (mut k, medium, actors) = three_node_line();
        // Kick node 0 with an external message; it forwards 0->1->2.
        k.schedule_message(SimTime::ZERO, actors[0], actors[0], 0);
        k.run();
        let n2: &Node = k.actor(actors[2]).unwrap();
        assert_eq!(n2.received, vec![2]);
        let m = medium.borrow();
        // node0: tx 2 units; node1: rx 2 + tx 2; node2: rx 2.
        assert_eq!(m.ledger().consumed(0), 2.0);
        assert_eq!(m.ledger().consumed(1), 4.0);
        assert_eq!(m.ledger().consumed(2), 2.0);
        // Latency: 2 ticks per hop, 2 hops (delivery of the kick is at t=0).
        assert_eq!(k.now(), SimTime::from_ticks(4));
    }

    #[test]
    fn causal_log_pairs_every_delivery_with_its_send() {
        use wsn_sim::{shared_causal_log, CausalKind};
        let (mut k, medium, actors) = three_node_line();
        let log = shared_causal_log();
        medium.borrow_mut().set_causal(log.clone());
        k.schedule_message(SimTime::ZERO, actors[0], actors[0], 0);
        k.run();
        let log = log.borrow();
        // Two hops: send+deliver per hop, plus the kick is not a medium
        // transmission and records nothing.
        let sends: Vec<_> = log
            .events()
            .iter()
            .filter(|e| e.kind == CausalKind::Send)
            .collect();
        let delivers: Vec<_> = log
            .events()
            .iter()
            .filter(|e| e.kind == CausalKind::Deliver)
            .collect();
        assert_eq!(sends.len(), 2);
        assert_eq!(delivers.len(), 2);
        for d in &delivers {
            let s = &log.events()[d.cause as usize - 1];
            assert_eq!(s.kind, CausalKind::Send);
            assert!(d.lamport > s.lamport);
            // The deliver is recorded at the arrival instant: exactly
            // tx_ticks(2 units) = 2 ticks after the send.
            assert_eq!(d.time - s.time, 2);
            assert_eq!(d.units, s.units);
        }
        // Un-prestamped medium traffic self-stamps with the generic label.
        assert!(sends.iter().all(|s| s.label == "net.tx"));
    }

    #[test]
    fn dead_sender_clears_an_armed_prestamp() {
        use wsn_sim::{shared_causal_log, CausalKind};
        let (mut k, medium, actors) = three_node_line();
        let log = shared_causal_log();
        medium.borrow_mut().set_causal(log.clone());
        medium.borrow_mut().kill(0, SimTime::ZERO);
        // Arm a prestamp for node 0, whose transmission then fails: the
        // stamp must not leak onto node 1's later unrelated send.
        medium
            .borrow_mut()
            .causal_send_stamp(0, SimTime::ZERO, 0, "app.hop", 2);
        struct Kick {
            medium: SharedMedium,
            from: usize,
            to: usize,
        }
        impl Actor<Msg> for Kick {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ActorId, msg: Msg) {
                self.medium
                    .clone()
                    .borrow_mut()
                    .unicast(ctx, self.from, self.to, 1, msg);
            }
        }
        let k0 = k.add_actor(Box::new(Kick {
            medium: medium.clone(),
            from: 0,
            to: 1,
        }));
        let k1 = k.add_actor(Box::new(Kick {
            medium: medium.clone(),
            from: 1,
            to: 2,
        }));
        k.schedule_message(SimTime::ZERO, k0, k0, 0);
        k.schedule_message(SimTime::from_ticks(1), k1, k1, 0);
        k.run();
        let _ = actors;
        let log = log.borrow();
        let sends: Vec<_> = log
            .events()
            .iter()
            .filter(|e| e.kind == CausalKind::Send)
            .collect();
        // The armed app.hop stamp (dead sender) plus node 1's generic one.
        assert_eq!(sends.len(), 2);
        let live = sends.iter().find(|s| s.node == 1).unwrap();
        assert_eq!(live.label, "net.tx", "prestamp did not leak");
    }

    #[test]
    #[should_panic(expected = "not radio neighbors")]
    fn unicast_beyond_range_panics() {
        let (mut k, medium, actors) = three_node_line();
        struct Bad {
            medium: SharedMedium,
        }
        impl Actor<Msg> for Bad {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ActorId, _: Msg) {
                self.medium.clone().borrow_mut().unicast(ctx, 0, 2, 1, 0);
            }
        }
        let bad = k.add_actor(Box::new(Bad {
            medium: medium.clone(),
        }));
        let _ = actors;
        k.schedule_message(SimTime::ZERO, bad, bad, 0);
        k.run();
    }

    #[test]
    fn broadcast_charges_tx_once() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let graph = UnitDiskGraph::build(&pts, 1.5);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.5),
            LinkModel::ideal(),
            EnergyLedger::unlimited(4),
        )
        .shared();

        struct Caster {
            medium: SharedMedium,
            received: u32,
        }
        impl Actor<Msg> for Caster {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ActorId, msg: Msg) {
                if msg == 100 {
                    let delivered = self.medium.clone().borrow_mut().broadcast(ctx, 0, 3, 1);
                    assert_eq!(delivered, 3);
                } else {
                    self.received += 1;
                }
            }
        }
        let mut k: Kernel<Msg> = Kernel::new(9);
        let mut actors = Vec::new();
        for phys in 0..4 {
            let a = k.add_actor(Box::new(Caster {
                medium: medium.clone(),
                received: 0,
            }));
            medium.borrow_mut().bind_actor(phys, a);
            actors.push(a);
        }
        k.schedule_message(SimTime::ZERO, actors[0], actors[0], 100);
        k.run();
        let m = medium.borrow();
        assert_eq!(
            m.ledger().consumed_kind(0, EnergyKind::Tx),
            3.0,
            "one tx charge"
        );
        for (phys, &actor) in actors.iter().enumerate().skip(1) {
            assert_eq!(m.ledger().consumed_kind(phys, EnergyKind::Rx), 3.0);
            let c: &Caster = k.actor(actor).unwrap();
            assert_eq!(c.received, 1);
        }
        assert_eq!(k.stats().counter("medium.tx"), 1);
        assert_eq!(k.stats().counter("medium.delivered"), 3);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let (mut k, medium, actors) = three_node_line();
        medium.borrow_mut().kill(1, SimTime::ZERO);
        k.schedule_message(SimTime::ZERO, actors[0], actors[0], 0);
        k.run();
        let n1: &Node = k.actor(actors[1]).unwrap();
        let n2: &Node = k.actor(actors[2]).unwrap();
        assert!(n1.received.is_empty());
        assert!(n2.received.is_empty());
        assert_eq!(medium.borrow().first_death(), Some(SimTime::ZERO));
    }

    #[test]
    fn wake_revives_killed_but_not_depleted_nodes() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let mut m = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::with_budget(2, 5.0),
        );
        m.kill(0, SimTime::from_ticks(3));
        assert!(!m.is_alive(0));
        assert!(m.wake(0), "fault-killed node revives");
        assert!(m.is_alive(0));
        assert_eq!(m.death_time(0), None);
        // Deplete node 1: wake must refuse.
        m.ledger.charge(1, EnergyKind::Tx, 6.0);
        m.kill(1, SimTime::from_ticks(5));
        assert!(!m.wake(1), "depleted node stays dead");
        assert!(!m.is_alive(1));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::lossy(0.3, 0),
            EnergyLedger::unlimited(2),
        )
        .shared();
        struct Spammer {
            medium: SharedMedium,
        }
        impl Actor<Msg> for Spammer {
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.medium.clone().borrow_mut().unicast(ctx, 0, 1, 1, 0);
                if tag > 0 {
                    ctx.set_timer(1, tag - 1);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ActorId, _: Msg) {}
        }
        struct Sink {
            received: u32,
        }
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ActorId, _: Msg) {
                self.received += 1;
            }
        }
        let mut k: Kernel<Msg> = Kernel::new(5);
        let s = k.add_actor(Box::new(Spammer {
            medium: medium.clone(),
        }));
        let r = k.add_actor(Box::new(Sink { received: 0 }));
        medium.borrow_mut().bind_actor(0, s);
        medium.borrow_mut().bind_actor(1, r);
        k.schedule_timer(SimTime::ZERO, s, 999);
        k.run();
        let sink: &Sink = k.actor(r).unwrap();
        let rate = f64::from(sink.received) / 1000.0;
        assert!(
            (rate - 0.7).abs() < 0.05,
            "delivery rate {rate} too far from 0.7"
        );
        assert_eq!(
            k.stats().counter("medium.dropped") + u64::from(sink.received),
            1000
        );
    }

    #[test]
    fn budget_depletion_kills_sender() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::with_budget(2, 5.0),
        )
        .shared();
        struct Burner {
            medium: SharedMedium,
        }
        impl Actor<Msg> for Burner {
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.medium.clone().borrow_mut().unicast(ctx, 0, 1, 3, 0);
                if tag > 0 {
                    ctx.set_timer(1, tag - 1);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ActorId, _: Msg) {}
        }
        struct Quiet;
        impl Actor<Msg> for Quiet {
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ActorId, _: Msg) {}
        }
        let mut k: Kernel<Msg> = Kernel::new(5);
        let b = k.add_actor(Box::new(Burner {
            medium: medium.clone(),
        }));
        let q = k.add_actor(Box::new(Quiet));
        medium.borrow_mut().bind_actor(0, b);
        medium.borrow_mut().bind_actor(1, q);
        k.schedule_timer(SimTime::ZERO, b, 10);
        k.run();
        let m = medium.borrow();
        assert!(
            !m.is_alive(0),
            "sender should deplete after 2 sends of 3 units"
        );
        assert!(m.first_death().is_some());
        // Exactly two transmissions spent energy (6 > 5).
        assert_eq!(m.ledger().consumed_kind(0, EnergyKind::Tx), 6.0);
    }

    /// One actor that unicasts 0->1 when kicked; node 1's actor records
    /// arrival times. Shared scaffolding for the chaos-knob tests.
    struct Pitcher {
        medium: SharedMedium,
    }
    impl Actor<Msg> for Pitcher {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ActorId, msg: Msg) {
            self.medium.clone().borrow_mut().unicast(ctx, 0, 1, 1, msg);
        }
    }
    struct Catcher {
        arrivals: Vec<(u64, Msg)>,
    }
    impl Actor<Msg> for Catcher {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ActorId, msg: Msg) {
            self.arrivals.push((ctx.now().ticks(), msg));
        }
    }

    fn pitcher_catcher(link: LinkModel) -> (Kernel<Msg>, SharedMedium, ActorId, ActorId) {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let medium = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            link,
            EnergyLedger::unlimited(2),
        )
        .shared();
        let mut k: Kernel<Msg> = Kernel::new(21);
        let p = k.add_actor(Box::new(Pitcher {
            medium: medium.clone(),
        }));
        let c = k.add_actor(Box::new(Catcher { arrivals: vec![] }));
        medium.borrow_mut().bind_actor(0, p);
        medium.borrow_mut().bind_actor(1, c);
        (k, medium, p, c)
    }

    #[test]
    fn degraded_link_overrides_base_loss_until_restored() {
        let (mut k, medium, p, c) = pitcher_catcher(LinkModel::ideal());
        medium.borrow_mut().degrade_link(1, 0, 1.0);
        k.schedule_message(SimTime::ZERO, p, p, 1);
        k.run();
        assert_eq!(k.stats().counter("medium.dropped"), 1);
        medium.borrow_mut().restore_link(0, 1);
        k.schedule_message(k.now(), p, p, 2);
        k.run();
        let catcher: &Catcher = k.actor(c).unwrap();
        assert_eq!(catcher.arrivals.len(), 1);
        assert_eq!(catcher.arrivals[0].1, 2);
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_healed() {
        let (mut k, medium, p, c) = pitcher_catcher(LinkModel::ideal());
        medium.borrow_mut().set_partition(&[0], &[1]);
        assert!(medium.borrow().partition_blocks(0, 1));
        assert!(medium.borrow().partition_blocks(1, 0));
        k.schedule_message(SimTime::ZERO, p, p, 1);
        k.run();
        assert_eq!(k.stats().counter("medium.partition_blocked"), 1);
        let blocked = {
            let catcher: &Catcher = k.actor(c).unwrap();
            catcher.arrivals.len()
        };
        assert_eq!(blocked, 0);
        medium.borrow_mut().heal_partition();
        assert!(!medium.borrow().partition_blocks(0, 1));
        k.schedule_message(k.now(), p, p, 2);
        k.run();
        let catcher: &Catcher = k.actor(c).unwrap();
        assert_eq!(catcher.arrivals.len(), 1);
    }

    #[test]
    fn duplication_chaos_delivers_extra_copies_and_charges_rx() {
        let (mut k, medium, p, c) = pitcher_catcher(LinkModel::ideal());
        medium.borrow_mut().set_delivery_chaos(DeliveryChaos {
            dup_prob: 1.0,
            reorder_prob: 0.0,
            reorder_max_extra_ticks: 0,
        });
        k.schedule_message(SimTime::ZERO, p, p, 7);
        k.run();
        let catcher: &Catcher = k.actor(c).unwrap();
        assert_eq!(catcher.arrivals.len(), 2, "original plus duplicate");
        assert!(catcher.arrivals.iter().all(|&(_, m)| m == 7));
        assert_eq!(k.stats().counter("medium.duplicated"), 1);
        // Two receptions → double rx energy for the 1-unit payload.
        assert_eq!(
            medium.borrow().ledger().consumed_kind(1, EnergyKind::Rx),
            2.0
        );
    }

    #[test]
    fn reordering_chaos_adds_bounded_extra_delay() {
        let (mut k, medium, p, c) = pitcher_catcher(LinkModel::ideal());
        medium.borrow_mut().set_delivery_chaos(DeliveryChaos {
            dup_prob: 0.0,
            reorder_prob: 1.0,
            reorder_max_extra_ticks: 5,
        });
        k.schedule_message(SimTime::ZERO, p, p, 3);
        k.run();
        let catcher: &Catcher = k.actor(c).unwrap();
        assert_eq!(catcher.arrivals.len(), 1);
        let tick = catcher.arrivals[0].0;
        // Baseline delivery is 1 tick (1 unit, ideal link); extra is in
        // [1, 1 + 5].
        assert!(
            (2..=7).contains(&tick),
            "reordered arrival at tick {tick} outside bound"
        );
        assert_eq!(k.stats().counter("medium.reordered"), 1);
    }

    #[test]
    fn chaos_off_draws_no_extra_randomness() {
        // Bit-identical arrivals with chaos explicitly set to none() vs
        // never touched: the gate must not consume RNG words.
        let run = |set_none: bool| {
            let (mut k, medium, p, c) = pitcher_catcher(LinkModel::lossy(0.3, 2));
            if set_none {
                medium
                    .borrow_mut()
                    .set_delivery_chaos(DeliveryChaos::none());
            }
            for i in 0..20u64 {
                k.schedule_message(SimTime::from_ticks(i * 10), p, p, i as Msg);
            }
            k.run();
            let catcher: &Catcher = k.actor(c).unwrap();
            catcher.arrivals.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drain_energy_shock_can_deplete_a_node() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let graph = UnitDiskGraph::build(&pts, 1.0);
        let mut m = Medium::new(
            graph,
            RadioModel::uniform(1.0),
            LinkModel::ideal(),
            EnergyLedger::with_budget(2, 5.0),
        );
        m.drain_energy(0, 2.0, SimTime::from_ticks(1));
        assert!(m.is_alive(0), "partial drain leaves the node up");
        m.drain_energy(0, 4.0, SimTime::from_ticks(2));
        assert!(!m.is_alive(0), "budget exhausted by the shock");
        assert_eq!(m.death_time(0), Some(SimTime::from_ticks(2)));
        assert!(!m.wake(0), "depleted nodes stay dead");
    }
}
