//! The unit-disk connectivity graph `G_R = (V_R, E_R)`.
//!
//! §5.1: vertices are sensor nodes; `(i, j) ∈ E_R` iff the Euclidean
//! distance `δ(v_i, v_j) ≤ r`. Neighbor sets `N_{v_i}` are what the runtime
//! protocols may use — a node only ever talks to its radio neighbors.
//!
//! Construction buckets nodes into coarse bins of side `r` so adjacency
//! building is `O(n · k)` in the average local density `k` rather than
//! `O(n²)`.

use crate::geometry::Point;
use std::collections::VecDeque;

/// An immutable unit-disk graph over node positions.
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    range: f64,
    adjacency: Vec<Vec<usize>>,
    edge_count: usize,
}

impl UnitDiskGraph {
    /// Builds the graph for `positions` and transmission range `range`.
    pub fn build(positions: &[Point], range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        let mut edge_count = 0;

        if n > 0 {
            // Coarse spatial hash with bin side = range.
            let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
            let min_y = positions.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
            let bin = |p: Point| -> (i64, i64) {
                (
                    ((p.x - min_x) / range).floor() as i64,
                    ((p.y - min_y) / range).floor() as i64,
                )
            };
            let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
                std::collections::HashMap::new();
            for (i, &p) in positions.iter().enumerate() {
                buckets.entry(bin(p)).or_default().push(i);
            }
            let range_sq = range * range;
            for (i, &p) in positions.iter().enumerate() {
                let (bx, by) = bin(p);
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(cands) = buckets.get(&(bx + dx, by + dy)) else {
                            continue;
                        };
                        for &j in cands {
                            if j > i && p.distance_sq(positions[j]) <= range_sq {
                                adjacency[i].push(j);
                                adjacency[j].push(i);
                                edge_count += 1;
                            }
                        }
                    }
                }
            }
            for adj in &mut adjacency {
                adj.sort_unstable();
            }
        }

        UnitDiskGraph {
            range,
            adjacency,
            edge_count,
        }
    }

    /// Transmission range `r`.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Radio neighbors of `i`, sorted ascending.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Degree of `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency[i].len()
    }

    /// Whether `i` and `j` are radio neighbors.
    pub fn are_neighbors(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&j).is_ok()
    }

    /// BFS hop distance from `src` to every vertex (`None` = unreachable).
    pub fn hop_distances(&self, src: usize) -> Vec<Option<u32>> {
        self.hop_distances_within(src, |_| true)
    }

    /// BFS hop distances restricted to vertices satisfying `allowed`
    /// (used for intra-cell paths: routes may not leave the cell).
    pub fn hop_distances_within<F: Fn(usize) -> bool>(
        &self,
        src: usize,
        allowed: F,
    ) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        if !allowed(src) {
            return dist;
        }
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertex must have a distance");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() && allowed(v) {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the whole graph is connected (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        match self.node_count() {
            0 => true,
            _ => self.hop_distances(0).iter().all(Option::is_some),
        }
    }

    /// Whether the subgraph induced by `subset` is connected. The paper
    /// assumes this per cell ("the subgraph of G_R induced by nodes in
    /// E(v_{ij}) is connected").
    pub fn subset_connected(&self, subset: &[usize]) -> bool {
        match subset.first() {
            None => true,
            Some(&start) => {
                let member = vec_to_mask(subset, self.node_count());
                let dist = self.hop_distances_within(start, |v| member[v]);
                subset.iter().all(|&v| dist[v].is_some())
            }
        }
    }

    /// The longest shortest path (in hops) between any two vertices of
    /// `subset`, staying inside `subset`. `None` if the subset is
    /// disconnected or empty. §5.1 bounds the topology-emulation latency by
    /// the maximum of this quantity over all cells.
    pub fn subset_diameter(&self, subset: &[usize]) -> Option<u32> {
        if subset.is_empty() {
            return None;
        }
        let member = vec_to_mask(subset, self.node_count());
        let mut diameter = 0;
        for &s in subset {
            let dist = self.hop_distances_within(s, |v| member[v]);
            for &v in subset {
                diameter = diameter.max(dist[v]?);
            }
        }
        Some(diameter)
    }

    /// Connected components as sorted vertex lists, largest first.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.adjacency[u] {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        comps
    }
}

fn vec_to_mask(subset: &[usize], n: usize) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in subset {
        mask[v] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn line_graph_adjacency() {
        let g = UnitDiskGraph::build(&line(5, 1.0), 1.0);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert!(g.are_neighbors(3, 4));
        assert!(!g.are_neighbors(0, 2));
    }

    #[test]
    fn range_is_inclusive() {
        let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let g = UnitDiskGraph::build(&pts, 2.0);
        assert!(g.are_neighbors(0, 1));
        let g2 = UnitDiskGraph::build(&pts, 1.999);
        assert!(!g2.are_neighbors(0, 1));
    }

    #[test]
    fn hop_distances_on_line() {
        let g = UnitDiskGraph::build(&line(6, 1.0), 1.0);
        let d = g.hop_distances(0);
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)]
        );
    }

    #[test]
    fn disconnected_components() {
        let mut pts = line(3, 1.0);
        pts.extend([Point::new(100.0, 0.0), Point::new(101.0, 0.0)]);
        let g = UnitDiskGraph::build(&pts, 1.0);
        assert!(!g.is_connected());
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(g.hop_distances(0)[3], None);
    }

    #[test]
    fn subset_connectivity_and_diameter() {
        let g = UnitDiskGraph::build(&line(6, 1.0), 1.0);
        assert!(g.subset_connected(&[1, 2, 3]));
        assert!(
            !g.subset_connected(&[0, 2]),
            "0 and 2 only connect through 1"
        );
        assert_eq!(g.subset_diameter(&[1, 2, 3]), Some(2));
        assert_eq!(g.subset_diameter(&[0, 2]), None);
        assert_eq!(g.subset_diameter(&[4]), Some(0));
        assert_eq!(g.subset_diameter(&[]), None);
        assert!(g.subset_connected(&[]));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = UnitDiskGraph::build(&[], 1.0);
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 0);
    }

    #[test]
    fn dense_clique() {
        let pts: Vec<Point> = (0..8).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let g = UnitDiskGraph::build(&pts, 10.0);
        assert_eq!(g.edge_count(), 8 * 7 / 2);
        for i in 0..8 {
            assert_eq!(g.degree(i), 7);
        }
        assert_eq!(g.subset_diameter(&(0..8).collect::<Vec<_>>()), Some(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_panics() {
        UnitDiskGraph::build(&[], 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
        prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 0..max)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        /// Bucketed construction agrees with the naive O(n²) definition.
        #[test]
        fn matches_naive_adjacency(pts in arb_points(60), range in 0.5f64..30.0) {
            let g = UnitDiskGraph::build(&pts, range);
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    if i == j { continue; }
                    let expect = pts[i].distance(pts[j]) <= range;
                    prop_assert_eq!(g.are_neighbors(i, j), expect, "pair ({}, {})", i, j);
                }
            }
        }

        /// Adjacency is symmetric and irreflexive; edge count matches.
        #[test]
        fn adjacency_invariants(pts in arb_points(80), range in 0.5f64..20.0) {
            let g = UnitDiskGraph::build(&pts, range);
            let mut half_edges = 0;
            for i in 0..g.node_count() {
                prop_assert!(!g.neighbors(i).contains(&i));
                for &j in g.neighbors(i) {
                    prop_assert!(g.neighbors(j).contains(&i));
                }
                half_edges += g.degree(i);
            }
            prop_assert_eq!(half_edges, 2 * g.edge_count());
        }

        /// Components partition the vertex set.
        #[test]
        fn components_partition(pts in arb_points(60), range in 0.5f64..10.0) {
            let g = UnitDiskGraph::build(&pts, range);
            let mut all: Vec<usize> = g.components().into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..pts.len()).collect::<Vec<_>>());
        }
    }
}
