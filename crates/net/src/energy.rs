//! Per-node energy accounting.
//!
//! The paper's system-level objective is "minimizing energy consumption of
//! the network as a whole … sometimes even at the expense of increased
//! latency", with *energy balance* called out as a first-class metric
//! (§2). The ledger tracks consumption per node and per cause so the
//! harness can report total energy, hotspots, Jain fairness, and
//! first-node-death lifetime.

use serde::{Deserialize, Serialize};

/// Why energy was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyKind {
    /// Radio transmission.
    Tx,
    /// Radio reception.
    Rx,
    /// In-node computation.
    Compute,
}

const KINDS: usize = 3;

fn kind_index(k: EnergyKind) -> usize {
    match k {
        EnergyKind::Tx => 0,
        EnergyKind::Rx => 1,
        EnergyKind::Compute => 2,
    }
}

/// Tracks energy consumption for a fixed population of nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// consumed[node][kind]
    consumed: Vec<[f64; KINDS]>,
    /// Initial budget per node; `None` = unlimited (pure-accounting runs).
    budget: Option<f64>,
}

impl EnergyLedger {
    /// A ledger for `n` nodes with unlimited budgets.
    pub fn unlimited(n: usize) -> Self {
        EnergyLedger {
            consumed: vec![[0.0; KINDS]; n],
            budget: None,
        }
    }

    /// A ledger for `n` nodes that each start with `budget` units.
    pub fn with_budget(n: usize, budget: f64) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        EnergyLedger {
            consumed: vec![[0.0; KINDS]; n],
            budget: Some(budget),
        }
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.consumed.len()
    }

    /// Charges `units` of `kind` energy to `node`.
    pub fn charge(&mut self, node: usize, kind: EnergyKind, units: f64) {
        debug_assert!(units >= 0.0);
        self.consumed[node][kind_index(kind)] += units;
    }

    /// Total consumption of `node` across causes.
    pub fn consumed(&self, node: usize) -> f64 {
        self.consumed[node].iter().sum()
    }

    /// Consumption of `node` for one cause.
    pub fn consumed_kind(&self, node: usize, kind: EnergyKind) -> f64 {
        self.consumed[node][kind_index(kind)]
    }

    /// Whether this ledger has no budget at all (pure accounting): the
    /// precondition for sharded execution, where charges are deferred to
    /// window barriers and mid-window depletion checks must be vacuous.
    pub fn is_unlimited(&self) -> bool {
        self.budget.is_none()
    }

    /// Remaining budget of `node` (`None` when unlimited).
    pub fn residual(&self, node: usize) -> Option<f64> {
        self.budget.map(|b| b - self.consumed(node))
    }

    /// Whether `node` has exhausted its budget.
    pub fn is_depleted(&self, node: usize) -> bool {
        matches!(self.residual(node), Some(r) if r <= 0.0)
    }

    /// Network-wide total consumption.
    pub fn total(&self) -> f64 {
        (0..self.node_count()).map(|i| self.consumed(i)).sum()
    }

    /// Highest per-node consumption — the hotspot that dies first under
    /// equal budgets.
    pub fn max_consumed(&self) -> f64 {
        (0..self.node_count())
            .map(|i| self.consumed(i))
            .fold(0.0, f64::max)
    }

    /// Mean per-node consumption.
    pub fn mean_consumed(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.total() / self.node_count() as f64
        }
    }

    /// Jain fairness index of per-node consumption:
    /// `(Σx)² / (n·Σx²)` ∈ (0, 1], 1 = perfectly balanced.
    /// Returns 1.0 for an idle network (balance is vacuously perfect).
    pub fn jain_fairness(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = (0..n).map(|i| self.consumed(i)).sum();
        let sum_sq: f64 = (0..n).map(|i| self.consumed(i).powi(2)).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n as f64 * sum_sq)
        }
    }

    /// Ratio of hotspot to mean consumption (1.0 = perfectly balanced);
    /// `None` for an idle network.
    pub fn hotspot_ratio(&self) -> Option<f64> {
        let mean = self.mean_consumed();
        (mean > 0.0).then(|| self.max_consumed() / mean)
    }

    /// Per-node breakdown of the whole ledger, in node order. This is the
    /// exportable form trace documents and inspection tools consume.
    pub fn snapshot(&self) -> Vec<EnergySnapshot> {
        (0..self.node_count())
            .map(|node| EnergySnapshot {
                node,
                tx: self.consumed_kind(node, EnergyKind::Tx),
                rx: self.consumed_kind(node, EnergyKind::Rx),
                compute: self.consumed_kind(node, EnergyKind::Compute),
                total: self.consumed(node),
            })
            .collect()
    }

    /// The `k` hottest nodes by total consumption, descending; ties break
    /// toward the lower node id so the ordering is deterministic.
    pub fn hottest(&self, k: usize) -> Vec<EnergySnapshot> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| {
            b.total
                .partial_cmp(&a.total)
                .expect("energy totals are finite")
                .then(a.node.cmp(&b.node))
        });
        all.truncate(k);
        all
    }
}

/// One node's share of an [`EnergyLedger`], broken down by cause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySnapshot {
    /// Node index in the ledger.
    pub node: usize,
    /// Energy spent transmitting.
    pub tx: f64,
    /// Energy spent receiving.
    pub rx: f64,
    /// Energy spent computing.
    pub compute: f64,
    /// Sum across all causes.
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_kind() {
        let mut l = EnergyLedger::unlimited(2);
        l.charge(0, EnergyKind::Tx, 3.0);
        l.charge(0, EnergyKind::Rx, 2.0);
        l.charge(0, EnergyKind::Tx, 1.0);
        l.charge(1, EnergyKind::Compute, 5.0);
        assert_eq!(l.consumed_kind(0, EnergyKind::Tx), 4.0);
        assert_eq!(l.consumed_kind(0, EnergyKind::Rx), 2.0);
        assert_eq!(l.consumed(0), 6.0);
        assert_eq!(l.consumed(1), 5.0);
        assert_eq!(l.total(), 11.0);
    }

    #[test]
    fn unlimited_budget_never_depletes() {
        let mut l = EnergyLedger::unlimited(1);
        l.charge(0, EnergyKind::Tx, 1e12);
        assert_eq!(l.residual(0), None);
        assert!(!l.is_depleted(0));
    }

    #[test]
    fn budget_depletion() {
        let mut l = EnergyLedger::with_budget(2, 10.0);
        l.charge(0, EnergyKind::Tx, 9.0);
        assert_eq!(l.residual(0), Some(1.0));
        assert!(!l.is_depleted(0));
        l.charge(0, EnergyKind::Rx, 1.5);
        assert!(l.is_depleted(0));
        assert!(!l.is_depleted(1));
    }

    #[test]
    fn jain_fairness_extremes() {
        let mut l = EnergyLedger::unlimited(4);
        assert_eq!(l.jain_fairness(), 1.0);
        for i in 0..4 {
            l.charge(i, EnergyKind::Tx, 5.0);
        }
        assert!((l.jain_fairness() - 1.0).abs() < 1e-12);
        let mut skewed = EnergyLedger::unlimited(4);
        skewed.charge(0, EnergyKind::Tx, 20.0);
        assert!((skewed.jain_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hotspot_ratio() {
        let mut l = EnergyLedger::unlimited(2);
        assert_eq!(l.hotspot_ratio(), None);
        l.charge(0, EnergyKind::Tx, 3.0);
        l.charge(1, EnergyKind::Tx, 1.0);
        assert_eq!(l.hotspot_ratio(), Some(1.5));
        assert_eq!(l.max_consumed(), 3.0);
        assert_eq!(l.mean_consumed(), 2.0);
    }

    #[test]
    fn empty_ledger_is_degenerate_but_safe() {
        let l = EnergyLedger::unlimited(0);
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.mean_consumed(), 0.0);
        assert_eq!(l.jain_fairness(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        EnergyLedger::with_budget(1, 0.0);
    }

    #[test]
    fn snapshot_breaks_down_by_cause() {
        let mut l = EnergyLedger::unlimited(2);
        l.charge(0, EnergyKind::Tx, 3.0);
        l.charge(0, EnergyKind::Rx, 2.0);
        l.charge(1, EnergyKind::Compute, 5.0);
        let snap = l.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            EnergySnapshot {
                node: 0,
                tx: 3.0,
                rx: 2.0,
                compute: 0.0,
                total: 5.0
            }
        );
        assert_eq!(
            snap[1],
            EnergySnapshot {
                node: 1,
                tx: 0.0,
                rx: 0.0,
                compute: 5.0,
                total: 5.0
            }
        );
    }

    #[test]
    fn hottest_orders_by_total_then_id() {
        let mut l = EnergyLedger::unlimited(4);
        l.charge(0, EnergyKind::Tx, 2.0);
        l.charge(1, EnergyKind::Tx, 9.0);
        l.charge(2, EnergyKind::Rx, 2.0); // ties with node 0 → node 0 first
        l.charge(3, EnergyKind::Compute, 5.0);
        let top: Vec<usize> = l.hottest(3).iter().map(|s| s.node).collect();
        assert_eq!(top, vec![1, 3, 0]);
        assert_eq!(
            l.hottest(10).len(),
            4,
            "k larger than population is clamped"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Jain index is always in (0, 1] and total equals sum of parts.
        #[test]
        fn jain_in_range(charges in prop::collection::vec(0.0f64..100.0, 1..50)) {
            let mut l = EnergyLedger::unlimited(charges.len());
            for (i, &c) in charges.iter().enumerate() {
                l.charge(i, EnergyKind::Tx, c);
            }
            let j = l.jain_fairness();
            prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain={j}");
            let total: f64 = charges.iter().sum();
            prop_assert!((l.total() - total).abs() < 1e-9);
            prop_assert!(l.max_consumed() >= l.mean_consumed() - 1e-12);
        }
    }
}
