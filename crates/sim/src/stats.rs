//! Run statistics: named counters, histograms, and time series.
//!
//! Protocols under test report what they did (messages sent, boundary
//! crossings suppressed, merge operations performed, …) through the
//! [`Stats`] sink carried by the kernel; the experiment harness reads the
//! totals back after the run. Keys are plain strings so that each crate can
//! define its own vocabulary without a central registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of named counters, gauges, histograms and time series.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Stats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `key` (creating it at zero).
    ///
    /// The fast path is allocation-free: a counter that already exists is
    /// bumped through `get_mut` without cloning the key, so per-event
    /// counters settle after their first touch and stay off the heap —
    /// the invariant the no-alloc gate (`wsn-lint --alloc-gate`) measures.
    pub fn add(&mut self, key: &str, delta: u64) {
        match self.counters.get_mut(key) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(key.to_owned(), delta);
            }
        }
    }

    /// Increments the counter `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets the gauge `key` to `value`. Allocation-free once the gauge
    /// exists, like [`Stats::add`].
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        match self.gauges.get_mut(key) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(key.to_owned(), value);
            }
        }
    }

    /// Current value of gauge `key`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records `value` into the histogram `key`. The key lookup is
    /// allocation-free once the histogram exists; the record itself
    /// appends to the sample vector (amortized growth).
    pub fn observe(&mut self, key: &str, value: f64) {
        match self.histograms.get_mut(key) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(key.to_owned(), h);
            }
        }
    }

    /// Drains `values` into the histogram `key` in order: one key
    /// lookup for the whole batch instead of one per observation. The
    /// vector keeps its capacity, so a per-run scratch buffer settles
    /// after its first fill. This is the flush half of the kernel's
    /// self-metrics fast path — the hot loop pushes raw observations
    /// into plain vectors and folds them here when the run returns.
    pub fn observe_drain(&mut self, key: &str, values: &mut Vec<f64>) {
        if values.is_empty() {
            return;
        }
        if !self.histograms.contains_key(key) {
            self.histograms.insert(key.to_owned(), Histogram::default());
        }
        let h = self.histograms.get_mut(key).expect("just ensured");
        for v in values.drain(..) {
            h.record(v);
        }
    }

    /// The histogram `key`, if any value was ever observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Appends `(tick, value)` to the time series `key`. The key lookup
    /// is allocation-free once the series exists.
    pub fn sample(&mut self, key: &str, tick: u64, value: f64) {
        match self.series.get_mut(key) {
            Some(s) => s.push(tick, value),
            None => {
                let mut s = TimeSeries::default();
                s.push(tick, value);
                self.series.insert(key.to_owned(), s);
            }
        }
    }

    /// The time series `key`, if any sample was recorded.
    pub fn time_series(&self, key: &str) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates over all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merges another sink into this one (counters add, gauges overwrite,
    /// histograms and series concatenate). Used by parallel sweeps.
    pub fn absorb(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &v in &h.values {
                dst.record(v);
            }
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k.clone()).or_default();
            for &(t, v) in &s.points {
                dst.push(t, v);
            }
        }
    }
}

/// An exact histogram that stores every observation.
///
/// Experiment populations are at most a few million values, so exactness is
/// affordable and keeps quantiles honest.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// All observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.min(x),
            })
        })
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.max(x),
            })
        })
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var =
            self.values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Exact quantile `q ∈ [0,1]` by nearest-rank, or `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            self.sorted = true;
        }
        let idx = ((q * (self.values.len() - 1) as f64).round()) as usize;
        Some(self.values[idx])
    }
}

/// An append-only `(tick, value)` series.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Appends one sample.
    pub fn push(&mut self, tick: u64, value: f64) {
        self.points.push((tick, value));
    }

    /// All samples in insertion order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("tx");
        s.add("tx", 4);
        assert_eq!(s.counter("tx"), 5);
        assert_eq!(s.counter("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut s = Stats::new();
        s.set_gauge("load", 0.5);
        s.set_gauge("load", 0.9);
        assert_eq!(s.gauge("load"), Some(0.9));
        assert_eq!(s.gauge("missing"), None);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        let sd = h.std_dev().unwrap();
        assert!((sd - 1.118).abs() < 1e-3);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::default();
        for v in 0..101 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn empty_histogram_is_none() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.std_dev(), None);
    }

    #[test]
    fn time_series_preserves_order() {
        let mut s = Stats::new();
        s.sample("energy", 1, 10.0);
        s.sample("energy", 5, 8.0);
        let ts = s.time_series("energy").unwrap();
        assert_eq!(ts.points(), &[(1, 10.0), (5, 8.0)]);
        assert_eq!(ts.last(), Some((5, 8.0)));
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = Stats::new();
        a.add("tx", 2);
        a.observe("lat", 1.0);
        let mut b = Stats::new();
        b.add("tx", 3);
        b.add("rx", 1);
        b.observe("lat", 3.0);
        b.sample("e", 1, 1.0);
        b.set_gauge("g", 7.0);
        a.absorb(&b);
        assert_eq!(a.counter("tx"), 5);
        assert_eq!(a.counter("rx"), 1);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.time_series("e").unwrap().points().len(), 1);
        assert_eq!(a.gauge("g"), Some(7.0));
    }

    #[test]
    fn counters_iterate_in_key_order() {
        let mut s = Stats::new();
        s.incr("b");
        s.incr("a");
        s.incr("c");
        let keys: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn gauges_and_histograms_iterate_in_key_order() {
        let mut s = Stats::new();
        s.set_gauge("z", 1.0);
        s.set_gauge("a", 2.0);
        s.observe("lat", 3.0);
        s.observe("lat", 5.0);
        let gauges: Vec<(&str, f64)> = s.gauges().collect();
        assert_eq!(gauges, vec![("a", 2.0), ("z", 1.0)]);
        let hists: Vec<&str> = s.histograms().map(|(k, _)| k).collect();
        assert_eq!(hists, vec!["lat"]);
        assert_eq!(s.histograms().next().unwrap().1.values(), &[3.0, 5.0]);
    }
}
