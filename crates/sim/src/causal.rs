//! Causal event records: Lamport-clocked send/deliver/local events.
//!
//! The kernel's dispatch trace ([`crate::trace`]) says *when* each actor
//! ran; it cannot say *why*. This module adds the why: a [`CausalLog`]
//! assigns every interesting runtime occurrence a globally unique
//! sequence number and a per-node Lamport clock, and records which
//! earlier event caused it. Senders stamp outgoing messages with a
//! [`CausalStamp`]; the medium records the matching deliver event at the
//! scheduled delivery instant; application handlers record local events
//! (merge completions, exfiltration) chained to the delivery that
//! triggered them.
//!
//! The resulting event list is a happens-before DAG: `cause` edges point
//! strictly backwards in sequence order, and simulated time is monotone
//! along every edge (an effect never precedes its cause). Because each
//! edge spans the interval `[cause.time, event.time]`, the durations
//! along any connected chain **telescope**: a walk from a phase-start
//! event to a terminal event sums *exactly* to the phase duration. That
//! telescoping identity is what makes critical-path extraction in
//! `wsn-obs` exact rather than approximate.
//!
//! Everything here is deterministic — sequence numbers are handed out in
//! record order, which the kernel's total event order fixes — so two
//! same-seed runs produce identical logs.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Metadata a sender attaches to an in-flight message: the send event's
/// sequence number and the sender's Lamport clock at the send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CausalStamp {
    /// Sequence number of the send event (0 = unstamped).
    pub seq: u64,
    /// Sender's Lamport clock at the send.
    pub lamport: u64,
}

impl CausalStamp {
    /// The stamp carried by messages sent while causal tracing is off.
    pub const NONE: CausalStamp = CausalStamp { seq: 0, lamport: 0 };

    /// Whether this stamp refers to a recorded send event.
    pub fn is_some(&self) -> bool {
        self.seq != 0
    }
}

/// What kind of occurrence a [`CausalEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// A message left a node (radio transmit or local self-send).
    Send,
    /// A message arrived at a node (recorded at the delivery instant).
    Deliver,
    /// A node-local milestone (phase start, merge completion, exfiltration).
    Local,
}

/// One recorded occurrence in the happens-before DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEvent {
    /// Globally unique sequence number, 1-based in record order.
    pub seq: u64,
    /// Simulated time of the occurrence.
    pub time: SimTime,
    /// Kernel actor id of the node the event happened on.
    pub node: usize,
    /// Send, deliver, or local.
    pub kind: CausalKind,
    /// Lamport clock after this event.
    pub lamport: u64,
    /// Sequence number of the event that caused this one (0 = root).
    pub cause: u64,
    /// Human-readable label, e.g. `"app.hop"`, `"merge.level1"`.
    pub label: String,
    /// Data units carried (0 for local events).
    pub units: u64,
}

/// Accumulates [`CausalEvent`]s and maintains per-node Lamport clocks.
#[derive(Debug, Default)]
pub struct CausalLog {
    events: Vec<CausalEvent>,
    clocks: Vec<u64>,
}

impl CausalLog {
    /// An empty log.
    pub fn new() -> Self {
        CausalLog::default()
    }

    fn clock_mut(&mut self, node: usize) -> &mut u64 {
        if node >= self.clocks.len() {
            self.clocks.resize(node + 1, 0);
        }
        &mut self.clocks[node]
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        time: SimTime,
        node: usize,
        kind: CausalKind,
        lamport: u64,
        cause: u64,
        label: &str,
        units: u64,
    ) -> u64 {
        let seq = self.events.len() as u64 + 1;
        self.events.push(CausalEvent {
            seq,
            time,
            node,
            kind,
            lamport,
            cause,
            label: label.to_string(),
            units,
        });
        seq
    }

    /// Records a send event on `node` and returns the stamp to attach to
    /// the outgoing message. `cause` is the event that triggered the send
    /// (0 when spontaneous).
    pub fn record_send(
        &mut self,
        node: usize,
        time: SimTime,
        cause: u64,
        label: &str,
        units: u64,
    ) -> CausalStamp {
        let clock = self.clock_mut(node);
        *clock += 1;
        let lamport = *clock;
        let seq = self.push(time, node, CausalKind::Send, lamport, cause, label, units);
        CausalStamp { seq, lamport }
    }

    /// Records a deliver event on `node` for a message carrying `stamp`,
    /// merging the sender's Lamport clock into the receiver's. Returns
    /// the deliver event's sequence number.
    pub fn record_deliver(
        &mut self,
        node: usize,
        time: SimTime,
        stamp: CausalStamp,
        label: &str,
        units: u64,
    ) -> u64 {
        let clock = self.clock_mut(node);
        *clock = (*clock).max(stamp.lamport) + 1;
        let lamport = *clock;
        self.push(
            time,
            node,
            CausalKind::Deliver,
            lamport,
            stamp.seq,
            label,
            units,
        )
    }

    /// Records a node-local milestone chained to `cause` (0 for roots).
    /// Returns the event's sequence number.
    pub fn record_local(&mut self, node: usize, time: SimTime, cause: u64, label: &str) -> u64 {
        let clock = self.clock_mut(node);
        *clock += 1;
        let lamport = *clock;
        self.push(time, node, CausalKind::Local, lamport, cause, label, 0)
    }

    /// The recorded events, in sequence order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the log, returning the event list.
    pub fn into_events(self) -> Vec<CausalEvent> {
        self.events
    }
}

/// A cloneable handle to a [`CausalLog`] shared between the medium, the
/// per-node runtimes, and the driver that exports the trace.
pub type SharedCausalLog = Rc<RefCell<CausalLog>>;

/// Creates a fresh shared log.
pub fn shared_causal_log() -> SharedCausalLog {
    Rc::new(RefCell::new(CausalLog::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn sequence_numbers_are_dense_and_one_based() {
        let mut log = CausalLog::new();
        let root = log.record_local(0, t(0), 0, "start");
        let stamp = log.record_send(0, t(1), root, "hop", 2);
        let del = log.record_deliver(1, t(3), stamp, "hop", 2);
        assert_eq!(root, 1);
        assert_eq!(stamp.seq, 2);
        assert_eq!(del, 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[1].cause, root);
        assert_eq!(log.events()[2].cause, stamp.seq);
    }

    #[test]
    fn lamport_clocks_merge_on_delivery() {
        let mut log = CausalLog::new();
        // Node 0 does a burst of local work; node 1 is idle.
        for _ in 0..5 {
            log.record_local(0, t(0), 0, "work");
        }
        let stamp = log.record_send(0, t(1), 0, "hop", 1);
        assert_eq!(stamp.lamport, 6);
        let del = log.record_deliver(1, t(2), stamp, "hop", 1);
        // The receiver's clock jumps past the sender's.
        assert_eq!(log.events()[del as usize - 1].lamport, 7);
        // And a causally later local event on node 1 keeps climbing.
        let next = log.record_local(1, t(2), del, "merge");
        assert_eq!(log.events()[next as usize - 1].lamport, 8);
    }

    #[test]
    fn every_event_lamport_exceeds_its_cause() {
        let mut log = CausalLog::new();
        let a = log.record_local(0, t(0), 0, "start");
        let s = log.record_send(0, t(1), a, "hop", 1);
        let d = log.record_deliver(3, t(4), s, "hop", 1);
        let m = log.record_local(3, t(4), d, "merge");
        let s2 = log.record_send(3, t(5), m, "hop", 2);
        log.record_deliver(7, t(9), s2, "hop", 2);
        for ev in log.events() {
            if ev.cause != 0 {
                let cause = &log.events()[ev.cause as usize - 1];
                assert!(ev.lamport > cause.lamport, "{ev:?} vs {cause:?}");
                assert!(ev.time >= cause.time);
            }
        }
    }

    #[test]
    fn unstamped_messages_are_distinguishable() {
        assert!(!CausalStamp::NONE.is_some());
        let mut log = CausalLog::new();
        let stamp = log.record_send(0, t(0), 0, "hop", 1);
        assert!(stamp.is_some());
    }

    #[test]
    fn shared_log_is_shared() {
        let log = shared_causal_log();
        let clone = Rc::clone(&log);
        log.borrow_mut().record_local(0, t(0), 0, "a");
        assert_eq!(clone.borrow().len(), 1);
    }
}
