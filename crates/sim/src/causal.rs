//! Causal event records: Lamport-clocked send/deliver/local events.
//!
//! The kernel's dispatch trace ([`crate::trace`]) says *when* each actor
//! ran; it cannot say *why*. This module adds the why: a [`CausalLog`]
//! assigns every interesting runtime occurrence a globally unique
//! sequence number and a per-node Lamport clock, and records which
//! earlier event caused it. Senders stamp outgoing messages with a
//! [`CausalStamp`]; the medium records the matching deliver event at the
//! scheduled delivery instant; application handlers record local events
//! (merge completions, exfiltration) chained to the delivery that
//! triggered them.
//!
//! The resulting event list is a happens-before DAG: `cause` edges point
//! strictly backwards in sequence order, and simulated time is monotone
//! along every edge (an effect never precedes its cause). Because each
//! edge spans the interval `[cause.time, event.time]`, the durations
//! along any connected chain **telescope**: a walk from a phase-start
//! event to a terminal event sums *exactly* to the phase duration. That
//! telescoping identity is what makes critical-path extraction in
//! `wsn-obs` exact rather than approximate.
//!
//! Everything here is deterministic — sequence numbers are handed out in
//! record order, which the kernel's total event order fixes — so two
//! same-seed runs produce identical logs.

use crate::shard::{DispatchTag, OrderTap};
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Metadata a sender attaches to an in-flight message: the send event's
/// sequence number and the sender's Lamport clock at the send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CausalStamp {
    /// Sequence number of the send event (0 = unstamped).
    pub seq: u64,
    /// Sender's Lamport clock at the send.
    pub lamport: u64,
}

impl CausalStamp {
    /// The stamp carried by messages sent while causal tracing is off.
    pub const NONE: CausalStamp = CausalStamp { seq: 0, lamport: 0 };

    /// Whether this stamp refers to a recorded send event.
    pub fn is_some(&self) -> bool {
        self.seq != 0
    }
}

/// What kind of occurrence a [`CausalEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// A message left a node (radio transmit or local self-send).
    Send,
    /// A message arrived at a node (recorded at the delivery instant).
    Deliver,
    /// A node-local milestone (phase start, merge completion, exfiltration).
    Local,
}

/// One recorded occurrence in the happens-before DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEvent {
    /// Globally unique sequence number, 1-based in record order.
    pub seq: u64,
    /// Simulated time of the occurrence.
    pub time: SimTime,
    /// Kernel actor id of the node the event happened on.
    pub node: usize,
    /// Send, deliver, or local.
    pub kind: CausalKind,
    /// Lamport clock after this event.
    pub lamport: u64,
    /// Sequence number of the event that caused this one (0 = root).
    pub cause: u64,
    /// Human-readable label, e.g. `"app.hop"`, `"merge.level1"`.
    pub label: String,
    /// Data units carried (0 for local events).
    pub units: u64,
}

/// Accumulates [`CausalEvent`]s and maintains per-node Lamport clocks.
///
/// Storage order is always append order — [`CausalStamp::seq`] indexes
/// into it — but under the sharded scheduler append order is *shard*
/// order, not the sequential kernel's dispatch order. The log therefore
/// keeps a parallel canonical permutation: events appended while an
/// [`OrderTap`] holds a live [`DispatchTag`] are staged, and
/// [`CausalLog::assign_order`] (called from the scheduler's barrier hook
/// with the window's canonical tag order) slots them into the global
/// order. [`CausalLog::canonical_events`] then renumbers sequence
/// numbers, cause edges, and Lamport clocks as if the log had been
/// written sequentially — the identity transform for a log that *was*.
#[derive(Debug, Default)]
pub struct CausalLog {
    events: Vec<CausalEvent>,
    clocks: Vec<u64>,
    /// Canonical position of `events[i]` (`u64::MAX` while staged).
    order_keys: Vec<u64>,
    /// Next canonical position to hand out.
    cursor: u64,
    /// Append indices awaiting a canonical position, with the dispatch
    /// tag they were recorded under (intra-tag order = append order).
    staged: Vec<(usize, DispatchTag)>,
    tap: Option<OrderTap>,
}

impl CausalLog {
    /// An empty log.
    pub fn new() -> Self {
        CausalLog::default()
    }

    fn clock_mut(&mut self, node: usize) -> &mut u64 {
        if node >= self.clocks.len() {
            self.clocks.resize(node + 1, 0);
        }
        &mut self.clocks[node]
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        time: SimTime,
        node: usize,
        kind: CausalKind,
        lamport: u64,
        cause: u64,
        label: &str,
        units: u64,
    ) -> u64 {
        let seq = self.events.len() as u64 + 1;
        self.events.push(CausalEvent {
            seq,
            time,
            node,
            kind,
            lamport,
            cause,
            label: label.to_string(),
            units,
        });
        let tag = self
            .tap
            .as_ref()
            .map(|t| t.get())
            .unwrap_or(DispatchTag::NONE);
        if tag.is_none() {
            self.order_keys.push(self.cursor);
            self.cursor += 1;
        } else {
            self.order_keys.push(u64::MAX);
            self.staged.push((self.events.len() - 1, tag));
        }
        seq
    }

    /// Connects the log to the sharded scheduler's order tap: events
    /// recorded while the tap holds a live [`DispatchTag`] are staged for
    /// barrier-time ordering instead of taking the next canonical slot.
    pub fn set_order_tap(&mut self, tap: OrderTap) {
        self.tap = Some(tap);
    }

    /// Assigns canonical positions to all staged events, in the order of
    /// their tags within `tags` (the window's canonical dispatch order
    /// from the scheduler's barrier hook), ties broken by append order.
    pub fn assign_order(&mut self, tags: &[DispatchTag]) {
        if self.staged.is_empty() {
            return;
        }
        let rank: BTreeMap<DispatchTag, usize> =
            tags.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut staged = std::mem::take(&mut self.staged);
        staged.sort_by_key(|&(idx, tag)| {
            (
                rank.get(&tag).copied().unwrap_or_else(|| {
                    panic!("staged causal event under unknown dispatch tag {tag:?}")
                }),
                idx,
            )
        });
        for (idx, _) in staged {
            self.order_keys[idx] = self.cursor;
            self.cursor += 1;
        }
    }

    /// Records a send event on `node` and returns the stamp to attach to
    /// the outgoing message. `cause` is the event that triggered the send
    /// (0 when spontaneous).
    pub fn record_send(
        &mut self,
        node: usize,
        time: SimTime,
        cause: u64,
        label: &str,
        units: u64,
    ) -> CausalStamp {
        let clock = self.clock_mut(node);
        *clock += 1;
        let lamport = *clock;
        let seq = self.push(time, node, CausalKind::Send, lamport, cause, label, units);
        CausalStamp { seq, lamport }
    }

    /// Records a deliver event on `node` for a message carrying `stamp`,
    /// merging the sender's Lamport clock into the receiver's. Returns
    /// the deliver event's sequence number.
    pub fn record_deliver(
        &mut self,
        node: usize,
        time: SimTime,
        stamp: CausalStamp,
        label: &str,
        units: u64,
    ) -> u64 {
        let clock = self.clock_mut(node);
        *clock = (*clock).max(stamp.lamport) + 1;
        let lamport = *clock;
        self.push(
            time,
            node,
            CausalKind::Deliver,
            lamport,
            stamp.seq,
            label,
            units,
        )
    }

    /// Records a node-local milestone chained to `cause` (0 for roots).
    /// Returns the event's sequence number.
    pub fn record_local(&mut self, node: usize, time: SimTime, cause: u64, label: &str) -> u64 {
        let clock = self.clock_mut(node);
        *clock += 1;
        let lamport = *clock;
        self.push(time, node, CausalKind::Local, lamport, cause, label, 0)
    }

    /// The recorded events, in sequence (append) order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// The log as the sequential kernel would have written it: events in
    /// canonical dispatch order, with sequence numbers, cause edges, and
    /// Lamport clocks renumbered to match. Lamport clocks are recomputed
    /// by replaying the canonical order (delivers merge the cause event's
    /// recomputed clock), because the append-order clocks were advanced in
    /// shard order. For a log recorded entirely outside sharded windows
    /// this is exactly `events().to_vec()`.
    ///
    /// Panics if staged events are still awaiting [`CausalLog::assign_order`].
    pub fn canonical_events(&self) -> Vec<CausalEvent> {
        assert!(
            self.staged.is_empty(),
            "canonical_events while {} events await assign_order",
            self.staged.len()
        );
        let n = self.events.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by_key(|&i| self.order_keys[i]);
        let mut new_seq = vec![0u64; n];
        for (pos, &old) in perm.iter().enumerate() {
            new_seq[old] = pos as u64 + 1;
        }
        let mut clocks: Vec<u64> = Vec::new();
        let mut lamports = vec![0u64; n];
        let mut out = Vec::with_capacity(n);
        for (pos, &old) in perm.iter().enumerate() {
            let ev = &self.events[old];
            if ev.node >= clocks.len() {
                clocks.resize(ev.node + 1, 0);
            }
            let cause = if ev.cause == 0 {
                0
            } else {
                let c = new_seq[ev.cause as usize - 1];
                debug_assert!(
                    c <= pos as u64,
                    "cause edge points forward in canonical order"
                );
                c
            };
            let lamport = match ev.kind {
                CausalKind::Deliver => {
                    let merged = if ev.cause == 0 {
                        0
                    } else {
                        lamports[ev.cause as usize - 1]
                    };
                    clocks[ev.node].max(merged) + 1
                }
                CausalKind::Send | CausalKind::Local => clocks[ev.node] + 1,
            };
            clocks[ev.node] = lamport;
            lamports[old] = lamport;
            out.push(CausalEvent {
                seq: pos as u64 + 1,
                cause,
                lamport,
                ..ev.clone()
            });
        }
        out
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the log, returning the event list.
    pub fn into_events(self) -> Vec<CausalEvent> {
        self.events
    }
}

/// A cloneable handle to a [`CausalLog`] shared between the medium, the
/// per-node runtimes, and the driver that exports the trace.
pub type SharedCausalLog = Rc<RefCell<CausalLog>>;

/// Creates a fresh shared log.
pub fn shared_causal_log() -> SharedCausalLog {
    Rc::new(RefCell::new(CausalLog::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn sequence_numbers_are_dense_and_one_based() {
        let mut log = CausalLog::new();
        let root = log.record_local(0, t(0), 0, "start");
        let stamp = log.record_send(0, t(1), root, "hop", 2);
        let del = log.record_deliver(1, t(3), stamp, "hop", 2);
        assert_eq!(root, 1);
        assert_eq!(stamp.seq, 2);
        assert_eq!(del, 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[1].cause, root);
        assert_eq!(log.events()[2].cause, stamp.seq);
    }

    #[test]
    fn lamport_clocks_merge_on_delivery() {
        let mut log = CausalLog::new();
        // Node 0 does a burst of local work; node 1 is idle.
        for _ in 0..5 {
            log.record_local(0, t(0), 0, "work");
        }
        let stamp = log.record_send(0, t(1), 0, "hop", 1);
        assert_eq!(stamp.lamport, 6);
        let del = log.record_deliver(1, t(2), stamp, "hop", 1);
        // The receiver's clock jumps past the sender's.
        assert_eq!(log.events()[del as usize - 1].lamport, 7);
        // And a causally later local event on node 1 keeps climbing.
        let next = log.record_local(1, t(2), del, "merge");
        assert_eq!(log.events()[next as usize - 1].lamport, 8);
    }

    #[test]
    fn every_event_lamport_exceeds_its_cause() {
        let mut log = CausalLog::new();
        let a = log.record_local(0, t(0), 0, "start");
        let s = log.record_send(0, t(1), a, "hop", 1);
        let d = log.record_deliver(3, t(4), s, "hop", 1);
        let m = log.record_local(3, t(4), d, "merge");
        let s2 = log.record_send(3, t(5), m, "hop", 2);
        log.record_deliver(7, t(9), s2, "hop", 2);
        for ev in log.events() {
            if ev.cause != 0 {
                let cause = &log.events()[ev.cause as usize - 1];
                assert!(ev.lamport > cause.lamport, "{ev:?} vs {cause:?}");
                assert!(ev.time >= cause.time);
            }
        }
    }

    #[test]
    fn unstamped_messages_are_distinguishable() {
        assert!(!CausalStamp::NONE.is_some());
        let mut log = CausalLog::new();
        let stamp = log.record_send(0, t(0), 0, "hop", 1);
        assert!(stamp.is_some());
    }

    #[test]
    fn shared_log_is_shared() {
        let log = shared_causal_log();
        let clone = Rc::clone(&log);
        log.borrow_mut().record_local(0, t(0), 0, "a");
        assert_eq!(clone.borrow().len(), 1);
    }

    #[test]
    fn canonical_is_identity_for_sequential_logs() {
        let mut log = CausalLog::new();
        let a = log.record_local(0, t(0), 0, "start");
        let s = log.record_send(0, t(1), a, "hop", 1);
        let d = log.record_deliver(3, t(4), s, "hop", 1);
        let m = log.record_local(3, t(4), d, "merge");
        let s2 = log.record_send(3, t(5), m, "hop", 2);
        log.record_deliver(7, t(9), s2, "hop", 2);
        assert_eq!(log.canonical_events(), log.events().to_vec());
    }

    #[test]
    fn staged_events_reorder_into_canonical_positions() {
        use crate::shard::order_tap;

        let tag = |slot: u32, idx: u32| DispatchTag {
            window: 0,
            slot,
            idx,
        };
        // Shard order appends slot 0's events before slot 1's, but the
        // canonical dispatch order interleaves them the other way.
        let tap = order_tap();
        let mut log = CausalLog::new();
        log.set_order_tap(tap.clone());

        tap.set(tag(0, 0));
        let s0 = log.record_send(0, t(5), 0, "hop", 1); // append 1
        tap.set(tag(1, 0));
        let s1 = log.record_send(2, t(5), 0, "hop", 1); // append 2
        let d1 = log.record_deliver(3, t(6), s1, "hop", 1); // append 3
        tap.set(DispatchTag::NONE);

        // Canonical order says shard 1's dispatch came first.
        log.assign_order(&[tag(1, 0), tag(0, 0)]);
        let canon = log.canonical_events();
        assert_eq!(canon.len(), 3);
        // s1 and d1 now lead; s0 trails with renumbered seq.
        assert_eq!(canon[0].node, 2);
        assert_eq!(canon[1].node, 3);
        assert_eq!(canon[1].cause, 1, "deliver cause remapped to new seq");
        assert_eq!(canon[2].node, 0);
        assert_eq!(canon[2].seq, 3);
        assert_eq!(canon[2].cause, 0);
        // Lamports replayed in canonical order: send=1, deliver merges to 2.
        assert_eq!(canon[0].lamport, 1);
        assert_eq!(canon[1].lamport, 2);
        assert_eq!(canon[2].lamport, 1);
        // Append-order accessors are untouched (stamp indexing contract).
        assert_eq!(log.events()[s0.seq as usize - 1].node, 0);
        assert_eq!(log.events()[d1 as usize - 1].cause, s1.seq);
    }

    #[test]
    #[should_panic(expected = "await assign_order")]
    fn canonical_with_pending_staged_events_panics() {
        let tap = crate::shard::order_tap();
        let mut log = CausalLog::new();
        log.set_order_tap(tap.clone());
        tap.set(DispatchTag {
            window: 0,
            slot: 0,
            idx: 0,
        });
        log.record_local(0, t(1), 0, "staged");
        log.canonical_events();
    }
}
