//! Per-shard observability: dispatch accounting and the flight recorder.
//!
//! PR 7's sharded kernel made side-512 runs possible but left the shards
//! themselves invisible: the only kernel metrics are the two global
//! histograms, so load skew across quadrants and epoch-barrier stalls —
//! the blockers ROADMAP names before true OS-thread workers — cannot be
//! measured, and nothing is retained for post-mortem when a gate trips.
//! This module adds both halves of that visibility with the no-alloc
//! discipline of PR 8:
//!
//! * [`ShardObs`] — fixed per-slot accounting arrays the sharded
//!   scheduler fills while it runs: events dispatched, cross-shard
//!   events staged/applied, barrier-stall units, and per-lane queue
//!   depth. Every update is an array index; nothing allocates after
//!   construction, and nothing is written into the kernel's own stats,
//!   tracer, or metrics — the bit-identical-observables contract of
//!   [`crate::shard`] is untouched.
//! * [`FlightRecorder`] — a preallocated fixed-capacity ring buffer per
//!   shard holding the most recent dispatched events with a monotonic
//!   dispatch stamp. Both the sequential loop and the sharded barrier
//!   (which emits in canonical sequential order) feed it, so a
//!   same-seed sequential and sharded run produce **byte-identical**
//!   snapshots — the recorder is itself a deterministic observable.
//!
//! Barrier-stall attribution: within one window every slot dispatches
//! independently and the epoch barrier waits for the straggler. With
//! deterministic lanes the wait is virtual, so the stall charged to a
//! slot is the skew proxy `straggler_events − own_events` — how many
//! dispatches the busiest shard performed while this shard's window was
//! already drained. Summed over windows it ranks exactly the quadrants
//! that would idle real OS threads.

use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceKind};

/// Bucket upper bounds for the per-shard window-size histograms
/// (events dispatched by one slot in one window).
pub const WINDOW_HIST_UPPERS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A fixed-bucket histogram of per-window dispatch counts; plain arrays
/// so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowHist {
    /// Bucket counts: one per upper bound plus the overflow bucket.
    pub counts: [u64; WINDOW_HIST_UPPERS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Default for WindowHist {
    fn default() -> Self {
        WindowHist {
            counts: [0; WINDOW_HIST_UPPERS.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl WindowHist {
    fn record(&mut self, v: u64) {
        let idx = WINDOW_HIST_UPPERS
            .iter()
            .position(|&u| v <= u)
            .unwrap_or(WINDOW_HIST_UPPERS.len());
        self.counts[idx] += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
    }
}

/// Per-slot dispatch accounting filled by
/// [`Kernel::run_sharded_observed`](crate::kernel::Kernel); slots are the
/// shards `0..shard_count` plus the global pseudo-shard at index
/// `shard_count`.
#[derive(Debug, Clone)]
pub struct ShardObs {
    shard_count: u32,
    events: Vec<u64>,
    cross_staged: Vec<u64>,
    cross_applied: Vec<u64>,
    barrier_stall: Vec<u64>,
    depth_max: Vec<u64>,
    depth_sum: Vec<u64>,
    window_hist: Vec<WindowHist>,
    /// Scratch: this window's per-slot dispatch counts.
    window_events: Vec<u64>,
    windows: u64,
    undercount: bool,
}

impl ShardObs {
    /// Accounting arrays for `shard_count` shards (plus the global slot).
    /// All storage is allocated here; recording is allocation-free.
    pub fn new(shard_count: u32) -> Self {
        let slots = shard_count as usize + 1;
        ShardObs {
            shard_count,
            events: vec![0; slots],
            cross_staged: vec![0; slots],
            cross_applied: vec![0; slots],
            barrier_stall: vec![0; slots],
            depth_max: vec![0; slots],
            depth_sum: vec![0; slots],
            window_hist: vec![WindowHist::default(); slots],
            window_events: vec![0; slots],
            windows: 0,
            undercount: false,
        }
    }

    /// Deliberately drops the first dispatch of every window from shard
    /// 0's event counter. Exists so TC010 can prove it notices a
    /// per-shard accounting leak — never use outside mutation tests.
    #[doc(hidden)]
    pub fn with_undercount_tap(mut self) -> Self {
        self.undercount = true;
        self
    }

    /// Shard count this accounting covers (excluding the global slot).
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Number of processing slots: one per shard plus the global slot.
    pub fn slot_count(&self) -> usize {
        self.shard_count as usize + 1
    }

    /// Barrier windows completed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Events dispatched on `slot`.
    pub fn events(&self, slot: usize) -> u64 {
        self.events[slot]
    }

    /// Sum of per-slot event counters (the quantity TC010 holds to the
    /// kernel's independent dispatch total).
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Cross-shard events staged *from* `slot` (outgoing).
    pub fn cross_staged(&self, slot: usize) -> u64 {
        self.cross_staged[slot]
    }

    /// Cross-shard events applied *into* `slot` (incoming).
    pub fn cross_applied(&self, slot: usize) -> u64 {
        self.cross_applied[slot]
    }

    /// Total cross-shard events (shard-to-shard; global-slot traffic is
    /// not counted — the certificate's closed form covers only the
    /// quadrant boundary).
    pub fn cross_total(&self) -> u64 {
        self.cross_applied.iter().sum()
    }

    /// Barrier-stall units charged to `slot` (see the module docs).
    pub fn barrier_stall(&self, slot: usize) -> u64 {
        self.barrier_stall[slot]
    }

    /// Deepest post-barrier queue observed on `slot`'s lane.
    pub fn depth_max(&self, slot: usize) -> u64 {
        self.depth_max[slot]
    }

    /// Sum of post-barrier queue depths on `slot` (divide by
    /// [`ShardObs::windows`] for the mean).
    pub fn depth_sum(&self, slot: usize) -> u64 {
        self.depth_sum[slot]
    }

    /// Histogram of `slot`'s per-window dispatch counts.
    pub fn window_hist(&self, slot: usize) -> &WindowHist {
        &self.window_hist[slot]
    }

    /// Records one dispatch on `slot` (in canonical barrier order).
    pub(crate) fn note_dispatch(&mut self, slot: usize) {
        if !(self.undercount && slot == 0 && self.window_events[0] == 0) {
            self.events[slot] += 1;
        }
        self.window_events[slot] += 1;
    }

    /// Records one cross-shard event staged from `from` toward `to`.
    /// Only shard-to-shard traffic counts; the global pseudo-slot is
    /// outside the certified boundary geometry.
    pub(crate) fn note_cross(&mut self, from: usize, to: usize) {
        let shards = self.shard_count as usize;
        if from < shards && to < shards {
            self.cross_staged[from] += 1;
            self.cross_applied[to] += 1;
        }
    }

    /// Records `slot`'s post-exchange queue depth for this window.
    pub(crate) fn note_depth(&mut self, slot: usize, depth: u64) {
        if depth > self.depth_max[slot] {
            self.depth_max[slot] = depth;
        }
        self.depth_sum[slot] += depth;
    }

    /// Closes one window: charges barrier stall against the straggler,
    /// folds the per-window counts into the histograms, and resets the
    /// scratch counters.
    pub(crate) fn end_window(&mut self) {
        let shards = self.shard_count as usize;
        let straggler = self.window_events[..shards]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        for slot in 0..self.slot_count() {
            let own = self.window_events[slot];
            if slot < shards {
                self.barrier_stall[slot] += straggler - own;
            }
            self.window_hist[slot].record(own);
            self.window_events[slot] = 0;
        }
        self.windows += 1;
    }
}

/// One retained dispatch: the trace fields plus the monotonic dispatch
/// stamp assigned in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRec {
    /// Canonical dispatch index within the recorder's lifetime.
    pub stamp: u64,
    /// Dispatch instant.
    pub time: SimTime,
    /// Receiving actor.
    pub target: usize,
    /// Message or timer.
    pub kind: TraceKind,
    /// Sender (messages) — unused for timers.
    pub a: usize,
    /// Payload discriminant (messages) or tag (timers).
    pub b: u64,
}

/// One shard's preallocated ring of recent dispatches.
#[derive(Debug, Clone)]
struct FlightRing {
    entries: Vec<FlightRec>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl FlightRing {
    fn new(cap: usize) -> Self {
        FlightRing {
            entries: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    fn record(&mut self, rec: FlightRec) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() < self.cap {
            // Capacity was reserved up front; this push never reallocates.
            self.entries.push(rec);
        } else {
            self.entries[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<FlightRec> {
        if self.entries.len() == self.cap && self.head > 0 {
            let mut out = Vec::with_capacity(self.entries.len());
            out.extend_from_slice(&self.entries[self.head..]);
            out.extend_from_slice(&self.entries[..self.head]);
            out
        } else {
            self.entries.clone()
        }
    }
}

/// A per-shard flight recorder: the most recent `capacity` dispatches of
/// each shard (and the global pseudo-shard), stamped in canonical
/// dispatch order. All storage is allocated at construction; recording
/// is allocation-free, so the recorder may stay enabled under the
/// `allocs_per_event = 0` gate.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    shard_of_actor: Vec<u32>,
    shard_count: u32,
    capacity: usize,
    rings: Vec<FlightRing>,
    stamp: u64,
}

impl FlightRecorder {
    /// A recorder mapping actor `i` to shard `shard_of_actor[i]` (actors
    /// beyond the map, e.g. late-installed injectors, land on the global
    /// pseudo-shard), retaining the last `capacity` dispatches per slot.
    pub fn new(shard_of_actor: Vec<u32>, shard_count: u32, capacity: usize) -> Self {
        assert!(shard_count > 0, "recorder needs at least one shard");
        let slots = shard_count as usize + 1;
        FlightRecorder {
            shard_of_actor,
            shard_count,
            capacity,
            rings: (0..slots).map(|_| FlightRing::new(capacity)).collect(),
            stamp: 0,
        }
    }

    /// Shard count (excluding the global pseudo-slot).
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Ring capacity per slot.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of slots: one per shard plus the global pseudo-shard.
    pub fn slot_count(&self) -> usize {
        self.shard_count as usize + 1
    }

    /// Dispatches stamped so far.
    pub fn recorded(&self) -> u64 {
        self.stamp
    }

    /// The slot an actor's dispatches land in.
    pub fn slot_of_actor(&self, actor: usize) -> usize {
        let shard = self
            .shard_of_actor
            .get(actor)
            .copied()
            .unwrap_or(crate::shard::GLOBAL_SHARD);
        if shard == crate::shard::GLOBAL_SHARD || shard >= self.shard_count {
            self.shard_count as usize
        } else {
            shard as usize
        }
    }

    /// Records one dispatched event (must be called in canonical
    /// dispatch order — the sequential loop and the sharded barrier both
    /// satisfy this by construction).
    pub fn record(&mut self, entry: &TraceEntry) {
        let slot = self.slot_of_actor(entry.target);
        let rec = FlightRec {
            stamp: self.stamp,
            time: entry.time,
            target: entry.target,
            kind: entry.kind,
            a: entry.a,
            b: entry.b,
        };
        self.stamp += 1;
        self.rings[slot].record(rec);
    }

    /// `slot`'s retained dispatches in chronological (stamp) order.
    pub fn snapshot(&self, slot: usize) -> Vec<FlightRec> {
        self.rings[slot].snapshot()
    }

    /// Dispatches overwritten (or discarded at capacity 0) on `slot`.
    pub fn dropped(&self, slot: usize) -> u64 {
        self.rings[slot].dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64, target: usize) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_ticks(t),
            target,
            kind: TraceKind::Timer,
            a: 0,
            b: t,
        }
    }

    #[test]
    fn recorder_slots_and_stamps() {
        let mut rec = FlightRecorder::new(vec![0, 1, 0], 2, 4);
        assert_eq!(rec.slot_count(), 3);
        rec.record(&entry(1, 0));
        rec.record(&entry(2, 1));
        rec.record(&entry(3, 2));
        rec.record(&entry(4, 9)); // beyond the map: global slot
        assert_eq!(rec.recorded(), 4);
        let s0 = rec.snapshot(0);
        assert_eq!(s0.len(), 2);
        assert_eq!((s0[0].stamp, s0[1].stamp), (0, 2));
        assert_eq!(rec.snapshot(1).len(), 1);
        assert_eq!(rec.snapshot(2)[0].stamp, 3);
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let mut rec = FlightRecorder::new(vec![0], 1, 3);
        for t in 0..8 {
            rec.record(&entry(t, 0));
        }
        assert_eq!(rec.dropped(0), 5);
        let stamps: Vec<u64> = rec.snapshot(0).iter().map(|r| r.stamp).collect();
        assert_eq!(stamps, vec![5, 6, 7]);
    }

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let mut rec = FlightRecorder::new(vec![0], 1, 1);
        for t in 0..5 {
            rec.record(&entry(t, 0));
        }
        let snap = rec.snapshot(0);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stamp, 4);
        assert_eq!(rec.dropped(0), 4);
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let mut rec = FlightRecorder::new(vec![0], 1, 0);
        rec.record(&entry(1, 0));
        assert!(rec.snapshot(0).is_empty());
        assert_eq!(rec.dropped(0), 1);
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn shard_obs_accounts_dispatches_and_stall() {
        let mut obs = ShardObs::new(2);
        // Window 0: shard 0 dispatches 3, shard 1 dispatches 1.
        for _ in 0..3 {
            obs.note_dispatch(0);
        }
        obs.note_dispatch(1);
        obs.note_cross(0, 1);
        obs.note_depth(0, 5);
        obs.note_depth(1, 2);
        obs.end_window();
        assert_eq!(obs.windows(), 1);
        assert_eq!(obs.events(0), 3);
        assert_eq!(obs.events(1), 1);
        assert_eq!(obs.total_events(), 4);
        // Stall: straggler did 3, shard 1 idled for 2 of them.
        assert_eq!(obs.barrier_stall(0), 0);
        assert_eq!(obs.barrier_stall(1), 2);
        assert_eq!(obs.cross_staged(0), 1);
        assert_eq!(obs.cross_applied(1), 1);
        assert_eq!(obs.cross_total(), 1);
        assert_eq!(obs.depth_max(0), 5);
        assert_eq!(obs.window_hist(0).max, 3);
        assert_eq!(obs.window_hist(0).count, 1);
    }

    #[test]
    fn global_slot_traffic_is_not_cross_shard() {
        let mut obs = ShardObs::new(2);
        obs.note_cross(0, 2); // to the global slot
        obs.note_cross(2, 1); // from the global slot
        assert_eq!(obs.cross_total(), 0);
        obs.note_cross(1, 0);
        assert_eq!(obs.cross_total(), 1);
    }

    #[test]
    fn undercount_tap_leaks_one_event_per_window() {
        let mut obs = ShardObs::new(2).with_undercount_tap();
        for _ in 0..3 {
            obs.note_dispatch(0);
        }
        obs.note_dispatch(1);
        obs.end_window();
        obs.note_dispatch(0);
        obs.end_window();
        // 4 + 1 dispatches, two windows with shard-0 activity: 2 leaked.
        assert_eq!(obs.total_events(), 3);
        // The window histograms still see the true counts.
        assert_eq!(obs.window_hist(0).sum, 4);
    }

    #[test]
    fn window_hist_buckets_and_bounds() {
        let mut h = WindowHist::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1004);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.counts[0], 2); // 0 and 1 both <= 1
        assert_eq!(h.counts[2], 1); // 3 <= 4
        assert_eq!(h.counts[WINDOW_HIST_UPPERS.len()], 1); // overflow
    }
}
