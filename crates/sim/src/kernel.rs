//! The simulation kernel: actors, contexts, and the run loop.

use crate::event::{EventKind, EventQueue};
use crate::flight::FlightRecorder;
use crate::rng::DetRng;
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceKind, Tracer};
use std::any::Any;

/// Index of an actor inside a [`Kernel`]. Actors are never removed, so ids
/// stay valid for the lifetime of the kernel.
pub type ActorId = usize;

/// Stats histogram key for per-event scheduling latency (ticks between an
/// event entering the queue and being dispatched). Recorded when
/// [`Kernel::enable_metrics`] is on.
pub const METRIC_DISPATCH_LATENCY: &str = "kernel.dispatch_latency";

/// Stats histogram key for queue depth sampled after each pop. Recorded
/// when [`Kernel::enable_metrics`] is on.
pub const METRIC_QUEUE_DEPTH: &str = "kernel.queue_depth";

/// Implemented by message types so traces can record a cheap discriminant.
pub trait Payload: 'static {
    /// A small integer identifying the message variant (for traces only;
    /// semantics are up to the implementor).
    fn discriminant(&self) -> u64 {
        0
    }
}

impl Payload for () {}
impl Payload for u32 {
    fn discriminant(&self) -> u64 {
        u64::from(*self)
    }
}
impl Payload for u64 {
    fn discriminant(&self) -> u64 {
        *self
    }
}

/// A simulated entity driven by messages and timers.
///
/// `Any` is a supertrait so callers can downcast a finished actor back to
/// its concrete type and read out final state
/// (see [`Kernel::actor`]).
pub trait Actor<M: Payload>: Any {
    /// Called once, in id order, when the run starts (before any event).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called for each message delivered to this actor.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] expires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events remained.
    QueueEmpty,
    /// An actor called [`Context::stop`].
    Stopped,
    /// The `until` horizon was reached.
    TimeLimit,
    /// The event budget was exhausted (likely a livelock — investigate).
    EventLimit,
}

/// Summary of a run loop invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Events dispatched during this invocation.
    pub events_processed: u64,
    /// Simulated clock when the loop returned.
    pub end_time: SimTime,
    /// Why the loop returned.
    pub stop: StopReason,
}

/// The facilities an actor may use while handling an event.
///
/// Fields are crate-visible so the sharded scheduler ([`crate::shard`])
/// can build identical contexts for its per-shard dispatch loop.
pub struct Context<'a, M: Payload> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) outbox: &'a mut Vec<(SimTime, ActorId, EventKind<M>)>,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) stats: &'a mut Stats,
    pub(crate) stop_requested: &'a mut bool,
    pub(crate) actor_count: usize,
}

impl<'a, M: Payload> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// Number of actors in the kernel.
    pub fn actor_count(&self) -> usize {
        self.actor_count
    }

    /// Sends `msg` to `to`, arriving `delay` ticks from now.
    pub fn send(&mut self, to: ActorId, delay: SimTime, msg: M) {
        assert!(to < self.actor_count, "send to unknown actor {to}");
        self.outbox.push((
            self.now + delay.ticks(),
            to,
            EventKind::Message {
                from: self.self_id,
                msg,
            },
        ));
    }

    /// Sends `msg` to `to` after `delay` ticks (integer convenience).
    pub fn send_after(&mut self, to: ActorId, delay_ticks: u64, msg: M) {
        self.send(to, SimTime::from_ticks(delay_ticks), msg);
    }

    /// Schedules a timer on this actor, `delay` ticks from now.
    pub fn set_timer(&mut self, delay_ticks: u64, tag: u64) {
        self.outbox.push((
            self.now + delay_ticks,
            self.self_id,
            EventKind::Timer { tag },
        ));
    }

    /// Requests that the run loop return after this event.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// This actor's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// The shared statistics sink.
    pub fn stats(&mut self) -> &mut Stats {
        self.stats
    }
}

/// A deterministic discrete-event simulator over actors exchanging `M`s.
///
/// Fields are crate-visible so the sharded scheduler
/// ([`crate::shard`]) can drive the same actor store, queue, and
/// bookkeeping as the sequential loop below.
pub struct Kernel<M: Payload> {
    pub(crate) actors: Vec<Option<Box<dyn Actor<M>>>>,
    pub(crate) rngs: Vec<DetRng>,
    pub(crate) queue: EventQueue<M>,
    pub(crate) now: SimTime,
    master_seed: u64,
    pub(crate) stats: Stats,
    pub(crate) tracer: Tracer,
    pub(crate) metrics: bool,
    pub(crate) flight: Option<FlightRecorder>,
    pub(crate) started: bool,
    /// Dispatch staging buffer, held on the struct so repeated runs on a
    /// warm kernel reuse its capacity instead of allocating a fresh
    /// outbox per run (the no-alloc gate measures exactly this path).
    outbox_scratch: Vec<(SimTime, ActorId, EventKind<M>)>,
    /// Per-run self-metrics staging (dispatch latencies, queue depths):
    /// the hot loop pushes raw observations here and
    /// [`Kernel::flush_metrics_scratch`] folds them into the named
    /// stats histograms at run exit — a string-keyed map lookup per
    /// *run* instead of two per *event*, which is what keeps the
    /// instrumented hot path inside the `--obs-gate` overhead bound.
    pub(crate) metrics_scratch: (Vec<f64>, Vec<f64>),
}

impl<M: Payload> Kernel<M> {
    /// Creates a kernel whose randomness derives entirely from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Kernel {
            actors: Vec::new(),
            rngs: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            master_seed,
            stats: Stats::new(),
            tracer: Tracer::disabled(),
            metrics: false,
            flight: None,
            started: false,
            outbox_scratch: Vec::new(),
            metrics_scratch: (Vec::new(), Vec::new()),
        }
    }

    /// Enables trace recording (unbounded).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// Installs a specific tracer (ring, bounded, or streaming mode).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Removes the tracer (e.g. to recover a streaming sink), leaving a
    /// disabled one in its place.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::replace(&mut self.tracer, Tracer::disabled())
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables kernel self-metrics: each dispatched event records
    /// [`METRIC_DISPATCH_LATENCY`] and [`METRIC_QUEUE_DEPTH`] into the
    /// stats sink. Off by default — the hot loop then pays only a bool
    /// check. When on, the per-event cost is two vector pushes into a
    /// capacity-retaining scratch; the named histograms materialize
    /// when the run returns (see the `--obs-gate` overhead bound).
    pub fn enable_metrics(&mut self) {
        self.metrics = true;
    }

    /// Folds the per-run metrics scratch into the named stats
    /// histograms, in dispatch order. Every run exit point (sequential
    /// and sharded) calls this, so [`Kernel::stats`] readers between
    /// runs see exactly what per-event `observe` calls would have
    /// produced — without paying a string-keyed map lookup per event.
    pub(crate) fn flush_metrics_scratch(&mut self) {
        self.stats
            .observe_drain(METRIC_DISPATCH_LATENCY, &mut self.metrics_scratch.0);
        self.stats
            .observe_drain(METRIC_QUEUE_DEPTH, &mut self.metrics_scratch.1);
    }

    /// Whether kernel self-metrics are being recorded.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// Installs a [`FlightRecorder`]: every subsequent dispatch (in
    /// canonical order, sequential or sharded) lands in the recorder's
    /// per-shard ring. Recording is allocation-free and touches none of
    /// the kernel's other observables.
    pub fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.flight = Some(recorder);
    }

    /// The installed flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Removes and returns the flight recorder.
    pub fn take_flight_recorder(&mut self) -> Option<FlightRecorder> {
        self.flight.take()
    }

    /// The trace recorded so far (storage order; see [`Tracer::entries`]).
    pub fn trace(&self) -> &[TraceEntry] {
        self.tracer.entries()
    }

    /// The trace recorded so far in chronological order (un-rotates a
    /// ring-mode buffer).
    pub fn trace_snapshot(&self) -> Vec<TraceEntry> {
        self.tracer.snapshot()
    }

    /// Registers an actor and returns its id. May be called mid-run:
    /// once the kernel has started, the new actor's
    /// [`Actor::on_start`] fires immediately at the current simulated
    /// time, so late-installed actors (fault injectors, monitors) can
    /// arm timers relative to *now*.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Some(actor));
        self.rngs.push(DetRng::stream(self.master_seed, id as u64));
        if self.started {
            self.start_actor(id);
        }
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared statistics sink (read side; actors write through `Context`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics access for harness-level bookkeeping.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Borrows actor `id` downcast to its concrete type.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        let boxed = self.actors.get(id)?.as_ref()?;
        (boxed.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows actor `id` downcast to its concrete type.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        let boxed = self.actors.get_mut(id)?.as_mut()?;
        (boxed.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Schedules an external message delivery (harness-injected stimulus).
    pub fn schedule_message(&mut self, at: SimTime, from: ActorId, to: ActorId, msg: M) {
        assert!(to < self.actors.len(), "schedule to unknown actor {to}");
        self.queue.push(at, to, EventKind::Message { from, msg });
    }

    /// Schedules an external timer event on `target`.
    pub fn schedule_timer(&mut self, at: SimTime, target: ActorId, tag: u64) {
        assert!(
            target < self.actors.len(),
            "schedule to unknown actor {target}"
        );
        self.queue.push(at, target, EventKind::Timer { tag });
    }

    pub(crate) fn start_actors(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.actors.len() {
            self.start_actor(id);
        }
    }

    /// Runs `on_start` for one actor and flushes anything it scheduled.
    fn start_actor(&mut self, id: ActorId) {
        let mut outbox = std::mem::take(&mut self.outbox_scratch);
        outbox.clear();
        let mut stop = false;
        let mut actor = self.actors[id].take().expect("actor re-entered");
        {
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                outbox: &mut outbox,
                rng: &mut self.rngs[id],
                stats: &mut self.stats,
                stop_requested: &mut stop,
                actor_count: self.actors.len(),
            };
            actor.on_start(&mut ctx);
        }
        self.actors[id] = Some(actor);
        for (time, target, kind) in outbox.drain(..) {
            self.queue.push_from(self.now, time, target, kind);
        }
        self.outbox_scratch = outbox;
    }

    /// Runs until the queue drains. Panics if one billion events pass
    /// without draining (livelock guard); use
    /// [`Kernel::run_with_limits`] for explicit budgets.
    pub fn run(&mut self) -> RunReport {
        let report = self.run_with_limits(None, Some(1_000_000_000));
        assert!(
            report.stop != StopReason::EventLimit,
            "kernel default event budget exhausted; suspected livelock"
        );
        report
    }

    /// Runs until the queue drains or simulated time would pass `until`.
    /// Events at exactly `until` still fire.
    pub fn run_until(&mut self, until: SimTime) -> RunReport {
        self.run_with_limits(Some(until), Some(1_000_000_000))
    }

    /// Runs with optional time horizon and event budget.
    pub fn run_with_limits(
        &mut self,
        until: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        self.start_actors();
        let mut processed = 0u64;
        let mut outbox = std::mem::take(&mut self.outbox_scratch);
        outbox.clear();
        let mut stop = false;
        let report = loop {
            if let Some(budget) = max_events {
                if processed >= budget {
                    break RunReport {
                        events_processed: processed,
                        end_time: self.now,
                        stop: StopReason::EventLimit,
                    };
                }
            }
            let Some(next_time) = self.queue.peek_time() else {
                break RunReport {
                    events_processed: processed,
                    end_time: self.now,
                    stop: StopReason::QueueEmpty,
                };
            };
            if let Some(horizon) = until {
                if next_time > horizon {
                    self.now = horizon;
                    break RunReport {
                        events_processed: processed,
                        end_time: self.now,
                        stop: StopReason::TimeLimit,
                    };
                }
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.now, "time ran backwards");
            self.now = ev.time;
            processed += 1;

            if self.metrics {
                let latency = ev.time.ticks().saturating_sub(ev.enqueued_at.ticks());
                self.metrics_scratch.0.push(latency as f64);
                self.metrics_scratch.1.push(self.queue.len() as f64);
            }

            if self.tracer.is_enabled() || self.flight.is_some() {
                let (kind, a, b) = match &ev.kind {
                    EventKind::Message { from, msg } => {
                        (TraceKind::Message, *from, msg.discriminant())
                    }
                    EventKind::Timer { tag } => (TraceKind::Timer, 0, *tag),
                };
                let entry = TraceEntry {
                    time: ev.time,
                    target: ev.target,
                    kind,
                    a,
                    b,
                };
                if let Some(flight) = self.flight.as_mut() {
                    flight.record(&entry);
                }
                self.tracer.record(entry);
            }

            let mut actor = self.actors[ev.target]
                .take()
                .unwrap_or_else(|| panic!("actor {} re-entered", ev.target));
            {
                let mut ctx = Context {
                    now: self.now,
                    self_id: ev.target,
                    outbox: &mut outbox,
                    rng: &mut self.rngs[ev.target],
                    stats: &mut self.stats,
                    stop_requested: &mut stop,
                    actor_count: self.actors.len(),
                };
                match ev.kind {
                    EventKind::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                    EventKind::Timer { tag } => actor.on_timer(&mut ctx, tag),
                }
            }
            self.actors[ev.target] = Some(actor);
            for (time, target, kind) in outbox.drain(..) {
                self.queue.push_from(self.now, time, target, kind);
            }
            if stop {
                break RunReport {
                    events_processed: processed,
                    end_time: self.now,
                    stop: StopReason::Stopped,
                };
            }
        };
        self.outbox_scratch = outbox;
        self.flush_metrics_scratch();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Echo {
        received: Vec<(ActorId, u32)>,
        reply_to: Option<ActorId>,
    }

    impl Actor<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ActorId, msg: u32) {
            self.received.push((from, msg));
            ctx.stats().incr("echo.rx");
            if let Some(peer) = self.reply_to {
                if msg > 0 {
                    ctx.send_after(peer, 1, msg - 1);
                }
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let a = k.add_actor(Box::new(Echo::default()));
        k.schedule_message(SimTime::from_ticks(5), 0, a, 50);
        k.schedule_message(SimTime::from_ticks(2), 0, a, 20);
        let report = k.run();
        assert_eq!(report.stop, StopReason::QueueEmpty);
        assert_eq!(report.end_time, SimTime::from_ticks(5));
        let echo: &Echo = k.actor(a).unwrap();
        assert_eq!(echo.received, vec![(0, 20), (0, 50)]);
        assert_eq!(k.stats().counter("echo.rx"), 2);
    }

    #[test]
    fn ping_pong_countdown_terminates() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let a = k.add_actor(Box::new(Echo {
            reply_to: Some(1),
            ..Default::default()
        }));
        let b = k.add_actor(Box::new(Echo {
            reply_to: Some(0),
            ..Default::default()
        }));
        k.schedule_message(SimTime::ZERO, b, a, 5);
        let report = k.run();
        // messages 5,4,3,2,1,0 = 6 deliveries
        assert_eq!(report.events_processed, 6);
        assert_eq!(report.end_time, SimTime::from_ticks(5));
        let echo_a: &Echo = k.actor(a).unwrap();
        let echo_b: &Echo = k.actor(b).unwrap();
        assert_eq!(echo_a.received.len() + echo_b.received.len(), 6);
    }

    struct TimerBeat {
        fired: Vec<u64>,
        period: u64,
        remaining: u32,
    }

    impl Actor<u32> for TimerBeat {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(self.period, 7);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: ActorId, _msg: u32) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, tag: u64) {
            self.fired.push(ctx.now().ticks());
            assert_eq!(tag, 7);
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(self.period, 7);
            }
        }
    }

    #[test]
    fn periodic_timers_fire_on_schedule() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let t = k.add_actor(Box::new(TimerBeat {
            fired: vec![],
            period: 10,
            remaining: 3,
        }));
        k.run();
        let beat: &TimerBeat = k.actor(t).unwrap();
        assert_eq!(beat.fired, vec![10, 20, 30, 40]);
    }

    #[test]
    fn actors_added_mid_run_get_started() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let first = k.add_actor(Box::new(TimerBeat {
            fired: vec![],
            period: 10,
            remaining: 1,
        }));
        k.run_until(SimTime::from_ticks(15));
        assert_eq!(k.now(), SimTime::from_ticks(15));
        // Installed after the kernel has started: on_start must fire now,
        // so the timer lands at now + period.
        let late = k.add_actor(Box::new(TimerBeat {
            fired: vec![],
            period: 10,
            remaining: 0,
        }));
        k.run();
        let beat: &TimerBeat = k.actor(first).unwrap();
        assert_eq!(beat.fired, vec![10, 20]);
        let late_beat: &TimerBeat = k.actor(late).unwrap();
        assert_eq!(late_beat.fired, vec![25]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let t = k.add_actor(Box::new(TimerBeat {
            fired: vec![],
            period: 10,
            remaining: 100,
        }));
        let report = k.run_until(SimTime::from_ticks(35));
        assert_eq!(report.stop, StopReason::TimeLimit);
        assert_eq!(report.end_time, SimTime::from_ticks(35));
        let beat: &TimerBeat = k.actor(t).unwrap();
        assert_eq!(beat.fired, vec![10, 20, 30]);
        // Continuing picks up where we left off.
        let report2 = k.run_until(SimTime::from_ticks(55));
        assert_eq!(report2.stop, StopReason::TimeLimit);
        let beat: &TimerBeat = k.actor(t).unwrap();
        assert_eq!(beat.fired, vec![10, 20, 30, 40, 50]);
    }

    struct Stopper;
    impl Actor<u32> for Stopper {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, msg: u32) {
            if msg == 99 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_request_halts_loop() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let s = k.add_actor(Box::new(Stopper));
        k.schedule_message(SimTime::from_ticks(1), 0, s, 99);
        k.schedule_message(SimTime::from_ticks(2), 0, s, 1);
        let report = k.run();
        assert_eq!(report.stop, StopReason::Stopped);
        assert_eq!(report.events_processed, 1);
        assert_eq!(k.pending_events(), 1);
    }

    #[test]
    fn event_limit_reports_livelock() {
        struct Selfie;
        impl Actor<u32> for Selfie {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _tag: u64) {
                ctx.set_timer(1, 0);
            }
        }
        let mut k: Kernel<u32> = Kernel::new(1);
        k.add_actor(Box::new(Selfie));
        let report = k.run_with_limits(None, Some(100));
        assert_eq!(report.stop, StopReason::EventLimit);
        assert_eq!(report.events_processed, 100);
    }

    #[test]
    fn traces_are_deterministic_across_runs() {
        fn run_once() -> Vec<TraceEntry> {
            let mut k: Kernel<u32> = Kernel::new(77);
            let a = k.add_actor(Box::new(Echo {
                reply_to: Some(1),
                ..Default::default()
            }));
            let _b = k.add_actor(Box::new(Echo {
                reply_to: Some(0),
                ..Default::default()
            }));
            k.enable_tracing();
            k.schedule_message(SimTime::ZERO, 1, a, 20);
            k.run();
            k.trace().to_vec()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn metrics_record_latency_and_queue_depth() {
        let mut k: Kernel<u32> = Kernel::new(3);
        let a = k.add_actor(Box::new(Echo {
            reply_to: Some(1),
            ..Default::default()
        }));
        let _b = k.add_actor(Box::new(Echo {
            reply_to: Some(0),
            ..Default::default()
        }));
        k.enable_metrics();
        assert!(k.metrics_enabled());
        k.schedule_message(SimTime::ZERO, 1, a, 5);
        let report = k.run();
        let latency = k
            .stats()
            .histogram(METRIC_DISPATCH_LATENCY)
            .expect("latency histogram");
        assert_eq!(latency.count() as u64, report.events_processed);
        // Every reply is sent with delay 1, so latency is 1 for all events
        // after the externally injected kickoff (latency 0).
        assert_eq!(latency.max(), Some(1.0));
        let depth = k
            .stats()
            .histogram(METRIC_QUEUE_DEPTH)
            .expect("depth histogram");
        assert_eq!(depth.count() as u64, report.events_processed);
    }

    #[test]
    fn metrics_disabled_record_nothing() {
        let mut k: Kernel<u32> = Kernel::new(3);
        let a = k.add_actor(Box::new(Echo::default()));
        k.schedule_message(SimTime::ZERO, 0, a, 5);
        k.run();
        assert!(k.stats().histogram(METRIC_DISPATCH_LATENCY).is_none());
        assert!(k.stats().histogram(METRIC_QUEUE_DEPTH).is_none());
    }

    #[test]
    fn ring_tracer_keeps_newest_events() {
        let run = |tracer: Tracer| {
            let mut k: Kernel<u32> = Kernel::new(7);
            let a = k.add_actor(Box::new(Echo {
                reply_to: Some(1),
                ..Default::default()
            }));
            let _b = k.add_actor(Box::new(Echo {
                reply_to: Some(0),
                ..Default::default()
            }));
            k.set_tracer(tracer);
            k.schedule_message(SimTime::ZERO, 1, a, 10);
            k.run();
            k
        };
        let full = run(Tracer::enabled());
        let ring = run(Tracer::ring(4));
        let full_trace = full.trace_snapshot();
        let ring_trace = ring.trace_snapshot();
        assert_eq!(ring_trace.len(), 4);
        // The ring holds exactly the last four entries of the full trace.
        assert_eq!(ring_trace, full_trace[full_trace.len() - 4..].to_vec());
        assert_eq!(ring.tracer().dropped() as usize, full_trace.len() - 4);
    }

    #[test]
    fn streaming_tracer_forwards_every_event() {
        struct CountSink(u64);
        impl crate::trace::TraceSink for CountSink {
            fn record(&mut self, _entry: &TraceEntry) {
                self.0 += 1;
            }
        }
        let mut k: Kernel<u32> = Kernel::new(7);
        let a = k.add_actor(Box::new(Echo {
            reply_to: Some(1),
            ..Default::default()
        }));
        let _b = k.add_actor(Box::new(Echo {
            reply_to: Some(0),
            ..Default::default()
        }));
        k.set_tracer(Tracer::streaming(Box::new(CountSink(0))));
        k.schedule_message(SimTime::ZERO, 1, a, 10);
        let report = k.run();
        assert!(k.trace().is_empty(), "streaming mode must not buffer");
        assert_eq!(k.tracer().streamed(), report.events_processed);
    }

    #[test]
    fn per_actor_rng_streams_differ() {
        struct Draw {
            value: u64,
        }
        impl Actor<u32> for Draw {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                self.value = ctx.rng().next_u64_pub();
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
        }
        // tiny helper since DetRng's next is private
        trait NextPub {
            fn next_u64_pub(&mut self) -> u64;
        }
        impl NextPub for crate::rng::DetRng {
            fn next_u64_pub(&mut self) -> u64 {
                use rand::RngCore;
                self.next_u64()
            }
        }
        let mut k: Kernel<u32> = Kernel::new(5);
        let a = k.add_actor(Box::new(Draw { value: 0 }));
        let b = k.add_actor(Box::new(Draw { value: 0 }));
        k.run();
        let va = k.actor::<Draw>(a).unwrap().value;
        let vb = k.actor::<Draw>(b).unwrap().value;
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn send_to_unknown_actor_panics() {
        struct Bad;
        impl Actor<u32> for Bad {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send_after(99, 1, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
        }
        let mut k: Kernel<u32> = Kernel::new(1);
        k.add_actor(Box::new(Bad));
        k.run();
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let mut k: Kernel<u32> = Kernel::new(1);
        let a = k.add_actor(Box::new(Echo::default()));
        assert!(k.actor::<Stopper>(a).is_none());
        assert!(k.actor::<Echo>(a).is_some());
    }
}
