//! Spatially-sharded execution of the deterministic kernel.
//!
//! ROADMAP item 1: run one scheduler "worker" per quad-tree shard with an
//! epoch-barrier conservative synchronization scheme, while keeping every
//! observable **bit-identical** to the sequential kernel. The scheme rests
//! on one physical fact the radio layer guarantees: every transmission
//! takes at least one tick (`RadioModel::tx_ticks(u) ≥ 1`), so an event
//! dispatched at tick `t` can only schedule *cross-shard* work at tick
//! `t+1` or later — a one-tick lookahead. Zero-delay events (self-sends,
//! timers) stay inside their own shard by construction.
//!
//! ## How determinism survives the reordering
//!
//! The sequential kernel dispatches events in `(time, seq)` order, where
//! `seq` is global push order. Within one tick `t`:
//!
//! * every event already queued at the start of the tick (a **root**) was
//!   pushed earlier, so roots carry smaller seqs than any event pushed
//!   *during* the tick (a **child**);
//! * cross-shard pushes land at `t+1` or later (lookahead), so all of a
//!   shard's tick-`t` children are created by that shard's own dispatches.
//!
//! Hence the sequential order restricted to one shard is: the shard's
//! roots in seq order, then its children in local FIFO push order — which
//! is exactly how each shard processes its window here, independently of
//! every other shard. At the window barrier, a **symbolic replay** of the
//! sequential heap (roots keyed by their real seqs; children assigned the
//! next global seqs in replay pop order) reconstructs the exact global
//! dispatch order the sequential kernel would have used — including the
//! exact numeric `seq` values, since the replay hands out the counter in
//! the same order the sequential loop would have. Traces, kernel metrics,
//! and actor statistics are staged per dispatch and emitted in that
//! canonical order; cross-shard messages sit in a mailbox until the
//! barrier and enter the destination shard's queue with their final seqs
//! (by shard id, then sender dispatch order, then per-shard push sequence
//! — all encoded in the replayed `seq`).
//!
//! External state shared across shards (a medium's energy ledger, a causal
//! log, an exfiltration buffer) is handled through the [`OrderTap`]: the
//! scheduler publishes a [`DispatchTag`] before each dispatch; components
//! stage tag-keyed side effects and re-key them into canonical order when
//! the `barrier_hook` hands them the window's tag order.
//!
//! ## Contract and caveats
//!
//! * A cross-shard event scheduled for the *current* tick violates the
//!   lookahead and panics — the shard plan was wrong, not the run.
//! * Globally-pinned actors ([`GLOBAL_SHARD`], e.g. fault injectors that
//!   mutate the shared medium) are processed first within each window.
//!   This matches the sequential order whenever their same-tick events
//!   carry earlier seqs than every co-tick node event — true for
//!   injectors that arm all their timers at install time.
//! * `stop()` requests and event-budget exhaustion take effect at window
//!   granularity (the sequential kernel stops mid-tick). Parallel drivers
//!   use budgets as livelock guards, not as precise cutoffs.

use crate::event::{EventKind, EventQueue, ScheduledEvent};
use crate::flight::ShardObs;
use crate::kernel::{Context, Kernel, Payload, RunReport, StopReason};
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceKind};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::rc::Rc;

/// Shard id of actors pinned to the global pseudo-shard (processed first
/// in every window; see the module docs for when this is sound).
pub const GLOBAL_SHARD: u32 = u32::MAX;

/// Identifies one dispatch inside a sharded window: `(window, slot, idx)`
/// where `slot` is the processing slot (shard, or the global slot) and
/// `idx` the dispatch index within that slot's window. Published through
/// the [`OrderTap`] so shared components can stage side effects for
/// barrier-time reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DispatchTag {
    /// Window number within the current sharded run.
    pub window: u64,
    /// Processing slot (shard index, or the global slot).
    pub slot: u32,
    /// Dispatch index within the slot's window.
    pub idx: u32,
}

impl DispatchTag {
    /// The tag outside any sharded window (sequential execution).
    pub const NONE: DispatchTag = DispatchTag {
        window: u64::MAX,
        slot: u32::MAX,
        idx: u32::MAX,
    };

    /// Whether this is the out-of-window sentinel.
    pub fn is_none(&self) -> bool {
        *self == DispatchTag::NONE
    }
}

/// Shared cell the sharded scheduler writes the current [`DispatchTag`]
/// into before each dispatch (and resets to [`DispatchTag::NONE`] outside
/// windows).
pub type OrderTap = Rc<Cell<DispatchTag>>;

/// A fresh order tap, initialized to the sequential sentinel.
pub fn order_tap() -> OrderTap {
    Rc::new(Cell::new(DispatchTag::NONE))
}

/// The static shard assignment of a kernel's actors.
#[derive(Debug, Clone)]
pub struct ShardSchedule {
    shard_of_actor: Vec<u32>,
    shard_count: u32,
    workers: usize,
    misorder_merge: bool,
}

impl ShardSchedule {
    /// A schedule mapping actor `i` to `shard_of_actor[i]`
    /// (or [`GLOBAL_SHARD`]). Actors beyond the map (installed later,
    /// e.g. fault injectors) default to the global pseudo-shard.
    pub fn new(shard_of_actor: Vec<u32>, shard_count: u32) -> Self {
        assert!(shard_count > 0, "schedule needs at least one shard");
        for (actor, &s) in shard_of_actor.iter().enumerate() {
            assert!(
                s < shard_count || s == GLOBAL_SHARD,
                "actor {actor} assigned to shard {s} of {shard_count}"
            );
        }
        ShardSchedule {
            shard_of_actor,
            shard_count,
            workers: 1,
            misorder_merge: false,
        }
    }

    /// Sets the logical worker count: shards are striped round-robin over
    /// `workers` lanes and each window processes lane 0's shards first,
    /// then lane 1's, and so on. Any value (clamped to ≥ 1) must leave
    /// every observable unchanged — the property tests hold the kernel to
    /// that.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Deliberately sabotages the boundary merge: barrier emission and
    /// mailbox sequencing run in reversed order. Exists so the
    /// differential suite can prove it *notices* — never use outside
    /// mutation tests.
    #[doc(hidden)]
    pub fn with_misordered_merge(mut self) -> Self {
        self.misorder_merge = true;
        self
    }

    /// Shard count (excluding the global pseudo-shard).
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Logical worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn slot_of_actor(&self, actor: usize) -> usize {
        let shard = self
            .shard_of_actor
            .get(actor)
            .copied()
            .unwrap_or(GLOBAL_SHARD);
        if shard == GLOBAL_SHARD {
            self.shard_count as usize
        } else {
            shard as usize
        }
    }

    /// Number of processing slots: one per shard plus the global slot.
    fn slot_count(&self) -> usize {
        self.shard_count as usize + 1
    }

    /// Slot processing order for one window: the global slot first, then
    /// shards striped round-robin across the worker lanes.
    fn slot_order(&self) -> Vec<usize> {
        let n = self.shard_count as usize;
        let mut order = Vec::with_capacity(n + 1);
        order.push(n); // global slot first
        for lane in 0..self.workers.min(n.max(1)) {
            order.extend((0..n).filter(|s| s % self.workers == lane));
        }
        order
    }
}

/// What one dispatch pushed, in push order.
enum PushRec<M> {
    /// A same-tick, same-shard child: dispatched later in this window;
    /// identified by its provisional id until the replay assigns its seq.
    InWindow { prov: u64 },
    /// Anything else: enters a shard queue at the barrier with its final
    /// seq (this includes every cross-shard message — the mailbox).
    Future {
        time: SimTime,
        target: usize,
        kind: EventKind<M>,
    },
}

/// One dispatch staged during a window, awaiting barrier emission.
struct WindowRec<M> {
    tag: DispatchTag,
    /// Final global seq (roots know it at dispatch; children get it from
    /// the replay).
    seq: u64,
    time: SimTime,
    enqueued_at: SimTime,
    trace: Option<TraceEntry>,
    stats: Stats,
    pushes: Vec<PushRec<M>>,
    /// `pushes.len()` at creation (the replay consumes `pushes`, but the
    /// queue-depth reconstruction still needs the count).
    push_count: usize,
    is_root: bool,
}

/// An in-window child waiting in a shard's FIFO.
struct ReadyChild<M> {
    prov: u64,
    target: usize,
    kind: EventKind<M>,
}

impl<M: Payload> Kernel<M> {
    /// Runs the kernel sharded under `schedule` until the queue drains,
    /// `until` passes, or `max_events` dispatches occur — producing
    /// bit-identical observables to [`Kernel::run_with_limits`] (see the
    /// module docs for the argument and the window-granularity caveats on
    /// stop/budget).
    ///
    /// `tap`, when provided, receives the current [`DispatchTag`] before
    /// every dispatch; `barrier_hook` is called at each window barrier
    /// with the window's tags in canonical (sequential) dispatch order so
    /// externally staged side effects can be re-keyed.
    pub fn run_sharded(
        &mut self,
        schedule: &ShardSchedule,
        until: Option<SimTime>,
        max_events: Option<u64>,
        tap: Option<&OrderTap>,
        barrier_hook: impl FnMut(&[DispatchTag]),
    ) -> RunReport {
        self.run_sharded_observed(schedule, until, max_events, tap, barrier_hook, None)
    }

    /// [`Kernel::run_sharded`] with per-shard accounting: when `obs` is
    /// provided, the scheduler fills its [`ShardObs`] arrays (events per
    /// slot, cross-shard staged/applied, barrier stall, lane queue
    /// depth) as it runs. The accounting is write-only bookkeeping into
    /// preallocated arrays — it perturbs no kernel observable and
    /// allocates nothing.
    pub fn run_sharded_observed(
        &mut self,
        schedule: &ShardSchedule,
        until: Option<SimTime>,
        max_events: Option<u64>,
        tap: Option<&OrderTap>,
        mut barrier_hook: impl FnMut(&[DispatchTag]),
        mut obs: Option<&mut ShardObs>,
    ) -> RunReport {
        self.start_actors();
        let slots = schedule.slot_count();
        // Distribute the global queue into per-shard queues, preserving
        // every event's (time, seq, enqueued_at) verbatim.
        let mut queues: Vec<EventQueue<M>> = (0..slots).map(|_| EventQueue::new()).collect();
        for ev in self.queue.drain_all() {
            let slot = schedule.slot_of_actor(ev.target);
            queues[slot].push_scheduled(ev);
        }
        let mut next_seq = self.queue.next_seq();
        let mut pending: usize = queues.iter().map(|q| q.len()).sum();
        let slot_order = schedule.slot_order();
        let set_tap = |t: DispatchTag| {
            if let Some(tap) = tap {
                tap.set(t);
            }
        };

        let mut processed = 0u64;
        let mut window: u64 = 0;
        let mut outbox: Vec<(SimTime, usize, EventKind<M>)> = Vec::new();
        let finish = |kernel: &mut Kernel<M>, queues: Vec<EventQueue<M>>, next_seq: u64| {
            // Re-merge leftovers into the global queue with their exact
            // (time, seq) identities so a sequential continuation picks
            // up precisely where a sequential run would have been.
            for mut q in queues {
                for ev in q.drain_all() {
                    kernel.queue.push_scheduled(ev);
                }
            }
            kernel.queue.set_next_seq(next_seq);
            kernel.flush_metrics_scratch();
        };

        loop {
            if let Some(budget) = max_events {
                if processed >= budget {
                    set_tap(DispatchTag::NONE);
                    finish(self, queues, next_seq);
                    return RunReport {
                        events_processed: processed,
                        end_time: self.now,
                        stop: StopReason::EventLimit,
                    };
                }
            }
            let Some(tick) = queues.iter().filter_map(|q| q.peek_time()).min() else {
                set_tap(DispatchTag::NONE);
                finish(self, queues, next_seq);
                return RunReport {
                    events_processed: processed,
                    end_time: self.now,
                    stop: StopReason::QueueEmpty,
                };
            };
            if let Some(horizon) = until {
                if tick > horizon {
                    self.now = horizon;
                    set_tap(DispatchTag::NONE);
                    finish(self, queues, next_seq);
                    return RunReport {
                        events_processed: processed,
                        end_time: self.now,
                        stop: StopReason::TimeLimit,
                    };
                }
            }
            debug_assert!(tick >= self.now, "time ran backwards");
            self.now = tick;

            // ---- The window: each slot drains its tick-`tick` events ----
            let mut recs: Vec<WindowRec<M>> = Vec::new();
            let mut prov_rec: BTreeMap<u64, usize> = BTreeMap::new();
            let mut next_prov: u64 = 0;
            let mut stop = false;
            for &slot in &slot_order {
                let mut idx_in_slot: u32 = 0;
                let mut ready: VecDeque<ReadyChild<M>> = VecDeque::new();
                loop {
                    // Roots first (they pop in seq order and all carry
                    // smaller seqs than any child), then the FIFO.
                    let (seq, enqueued_at, target, kind, prov, is_root) =
                        if queues[slot].peek_time() == Some(tick) {
                            let ev = queues[slot].pop().expect("peeked event vanished");
                            (ev.seq, ev.enqueued_at, ev.target, ev.kind, 0, true)
                        } else if let Some(child) = ready.pop_front() {
                            (u64::MAX, tick, child.target, child.kind, child.prov, false)
                        } else {
                            break;
                        };
                    let tag = DispatchTag {
                        window,
                        slot: slot as u32,
                        idx: idx_in_slot,
                    };
                    idx_in_slot += 1;
                    set_tap(tag);
                    let trace = if self.tracer.is_enabled() || self.flight.is_some() {
                        let (tk, a, b) = match &kind {
                            EventKind::Message { from, msg } => {
                                (TraceKind::Message, *from, msg.discriminant())
                            }
                            EventKind::Timer { tag } => (TraceKind::Timer, 0, *tag),
                        };
                        Some(TraceEntry {
                            time: tick,
                            target,
                            kind: tk,
                            a,
                            b,
                        })
                    } else {
                        None
                    };
                    let mut scratch = Stats::new();
                    let mut actor = self.actors[target]
                        .take()
                        .unwrap_or_else(|| panic!("actor {target} re-entered"));
                    {
                        let mut ctx = Context {
                            now: self.now,
                            self_id: target,
                            outbox: &mut outbox,
                            rng: &mut self.rngs[target],
                            stats: &mut scratch,
                            stop_requested: &mut stop,
                            actor_count: self.actors.len(),
                        };
                        match kind {
                            EventKind::Message { from, msg } => {
                                actor.on_message(&mut ctx, from, msg)
                            }
                            EventKind::Timer { tag } => actor.on_timer(&mut ctx, tag),
                        }
                    }
                    self.actors[target] = Some(actor);
                    let mut pushes = Vec::with_capacity(outbox.len());
                    for (time, push_target, push_kind) in outbox.drain(..) {
                        let target_slot = schedule.slot_of_actor(push_target);
                        if time == tick && target_slot == slot {
                            let prov = next_prov;
                            next_prov += 1;
                            ready.push_back(ReadyChild {
                                prov,
                                target: push_target,
                                kind: push_kind,
                            });
                            pushes.push(PushRec::InWindow { prov });
                        } else {
                            assert!(
                                time > tick || target_slot == slot,
                                "cross-shard event violates the one-tick lookahead: \
                                 dispatch at tick {} on slot {slot} scheduled actor \
                                 {push_target} (slot {target_slot}) for tick {}",
                                tick.ticks(),
                                time.ticks(),
                            );
                            if target_slot != slot {
                                if let Some(o) = obs.as_deref_mut() {
                                    o.note_cross(slot, target_slot);
                                }
                            }
                            pushes.push(PushRec::Future {
                                time,
                                target: push_target,
                                kind: push_kind,
                            });
                        }
                    }
                    let rec_idx = recs.len();
                    if !is_root {
                        prov_rec.insert(prov, rec_idx);
                    }
                    let push_count = pushes.len();
                    recs.push(WindowRec {
                        tag,
                        seq,
                        time: tick,
                        enqueued_at,
                        trace,
                        stats: scratch,
                        pushes,
                        push_count,
                        is_root,
                    });
                }
            }
            set_tap(DispatchTag::NONE);
            processed += recs.len() as u64;

            // ---- Symbolic replay: reconstruct sequential dispatch order ----
            // Roots enter the heap with their real seqs; popping a record
            // assigns the global counter to its pushes in push order —
            // exactly when the sequential loop would have.
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = recs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_root)
                .map(|(i, r)| Reverse((r.seq, i)))
                .collect();
            let mut order: Vec<usize> = Vec::with_capacity(recs.len());
            let mut staged_future: Vec<ScheduledEvent<M>> = Vec::new();
            while let Some(Reverse((_, ri))) = heap.pop() {
                order.push(ri);
                let pushes = std::mem::take(&mut recs[ri].pushes);
                for push in pushes {
                    let seq = next_seq;
                    next_seq += 1;
                    match push {
                        PushRec::InWindow { prov } => {
                            let ci = prov_rec[&prov];
                            recs[ci].seq = seq;
                            heap.push(Reverse((seq, ci)));
                        }
                        PushRec::Future { time, target, kind } => {
                            staged_future.push(ScheduledEvent {
                                time,
                                seq,
                                enqueued_at: tick,
                                target,
                                kind,
                            });
                        }
                    }
                }
            }
            debug_assert_eq!(order.len(), recs.len(), "replay lost a dispatch");
            if schedule.misorder_merge {
                order.reverse();
                let seqs: Vec<u64> = staged_future.iter().map(|e| e.seq).collect();
                for (ev, seq) in staged_future.iter_mut().zip(seqs.into_iter().rev()) {
                    ev.seq = seq;
                }
            }

            // ---- Barrier emission: canonical-order observables ----
            let mut tags_in_order = Vec::with_capacity(order.len());
            for &ri in &order {
                let rec = &recs[ri];
                let n_pushes = rec.push_count;
                pending -= 1;
                if self.metrics {
                    let latency = rec.time.ticks().saturating_sub(rec.enqueued_at.ticks());
                    self.metrics_scratch.0.push(latency as f64);
                    self.metrics_scratch.1.push(pending as f64);
                }
                pending += n_pushes;
                if let Some(entry) = &rec.trace {
                    if let Some(flight) = self.flight.as_mut() {
                        flight.record(entry);
                    }
                    self.tracer.record(entry.clone());
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.note_dispatch(rec.tag.slot as usize);
                }
                self.stats.absorb(&rec.stats);
                tags_in_order.push(rec.tag);
            }
            barrier_hook(&tags_in_order);

            // ---- Mailbox exchange: futures enter their shard queues ----
            for ev in staged_future {
                let slot = schedule.slot_of_actor(ev.target);
                queues[slot].push_scheduled(ev);
            }
            if let Some(o) = obs.as_deref_mut() {
                for (slot, q) in queues.iter().enumerate() {
                    o.note_depth(slot, q.len() as u64);
                }
                o.end_window();
            }

            window += 1;
            if stop {
                finish(self, queues, next_seq);
                return RunReport {
                    events_processed: processed,
                    end_time: self.now,
                    stop: StopReason::Stopped,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Actor, ActorId};

    /// Replies to every message on the opposite parity actor with delay 1
    /// (cross-shard safe), burns rng, and records stats.
    struct Relay {
        peer: usize,
        hops_left: u32,
    }

    impl Actor<u32> for Relay {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, msg: u32) {
            ctx.stats().incr("relay.rx");
            ctx.stats().observe("relay.msg", msg as f64);
            let jitter = ctx.rng().bounded_u64(3);
            if self.hops_left > 0 {
                self.hops_left -= 1;
                ctx.send_after(self.peer, 1 + jitter, msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, tag: u64) {
            ctx.stats().incr("relay.timer");
            ctx.send_after(self.peer, 1, tag as u32);
        }
    }

    /// Same-tick fan-out inside one shard: timers cascade at delay 0 to
    /// co-shard actors, exercising the in-window FIFO path.
    struct Cascade {
        downstream: Vec<usize>,
    }

    impl Actor<u32> for Cascade {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(2, 9);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, msg: u32) {
            ctx.stats().incr("cascade.rx");
            if msg < 3 {
                for &d in &self.downstream {
                    ctx.send(d, SimTime::ZERO, msg + 1);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _tag: u64) {
            for &d in &self.downstream {
                ctx.send(d, SimTime::ZERO, 0);
            }
        }
    }

    fn build_relay_ring(n: usize, hops: u32) -> Kernel<u32> {
        let mut k: Kernel<u32> = Kernel::new(42);
        for i in 0..n {
            k.add_actor(Box::new(Relay {
                peer: (i + 1) % n,
                hops_left: hops,
            }));
        }
        k.enable_tracing();
        k.enable_metrics();
        for i in 0..n {
            k.schedule_message(SimTime::from_ticks((i % 3) as u64), i, i, 1);
        }
        k
    }

    /// Two shards over a ring of relays: evens in shard 0, odds in shard 1.
    fn parity_schedule(n: usize) -> ShardSchedule {
        ShardSchedule::new((0..n).map(|i| (i % 2) as u32).collect(), 2)
    }

    fn observables(k: &Kernel<u32>) -> (Vec<TraceEntry>, String) {
        (k.trace_snapshot(), format!("{:?}", k.stats()))
    }

    #[test]
    fn sharded_relay_ring_is_bit_identical_to_sequential() {
        let mut seq = build_relay_ring(8, 20);
        let seq_report = seq.run();

        let mut par = build_relay_ring(8, 20);
        let schedule = parity_schedule(8);
        let par_report = par.run_sharded(&schedule, None, None, None, |_| {});

        assert_eq!(seq_report, par_report);
        assert_eq!(observables(&seq), observables(&par));
    }

    #[test]
    fn in_window_cascades_match_sequential() {
        let build = || {
            let mut k: Kernel<u32> = Kernel::new(7);
            // Shard 0: actors 0..3 cascading at delay 0; shard 1: 3..6.
            for base in [0usize, 3] {
                for i in 0..3 {
                    k.add_actor(Box::new(Cascade {
                        downstream: vec![base + (i + 1) % 3, base + (i + 2) % 3],
                    }));
                }
            }
            k.enable_tracing();
            k.enable_metrics();
            k
        };
        let mut seq = build();
        let seq_report = seq.run();
        let mut par = build();
        let schedule = ShardSchedule::new(vec![0, 0, 0, 1, 1, 1], 2);
        let par_report = par.run_sharded(&schedule, None, None, None, |_| {});
        assert_eq!(seq_report, par_report);
        assert_eq!(observables(&seq), observables(&par));
    }

    #[test]
    fn worker_count_never_changes_observables() {
        let schedule = ShardSchedule::new((0..8).map(|i| (i % 4) as u32).collect(), 4);
        let baseline = {
            let mut k = build_relay_ring(8, 15);
            let r = k.run_sharded(&schedule.clone().with_workers(1), None, None, None, |_| {});
            (r, observables(&k))
        };
        for workers in [2usize, 4, 11] {
            let mut k = build_relay_ring(8, 15);
            let r = k.run_sharded(
                &schedule.clone().with_workers(workers),
                None,
                None,
                None,
                |_| {},
            );
            assert_eq!(baseline.0, r, "workers={workers}");
            assert_eq!(baseline.1, observables(&k), "workers={workers}");
        }
    }

    #[test]
    fn sharded_prefix_then_sequential_suffix_matches_pure_sequential() {
        let mut seq = build_relay_ring(6, 30);
        let seq_report = seq.run();

        let mut par = build_relay_ring(6, 30);
        let schedule = parity_schedule(6);
        let mid = par.run_sharded(&schedule, Some(SimTime::from_ticks(9)), None, None, |_| {});
        assert_eq!(mid.stop, StopReason::TimeLimit);
        // Leftovers were re-merged with their exact (time, seq) identities,
        // so a plain sequential continuation must land on the same run.
        let rest = par.run();
        assert_eq!(
            seq_report.events_processed,
            mid.events_processed + rest.events_processed
        );
        assert_eq!(seq_report.end_time, rest.end_time);
        assert_eq!(observables(&seq), observables(&par));
    }

    #[test]
    fn barrier_hook_sees_each_dispatch_once_in_canonical_order() {
        let mut par = build_relay_ring(8, 20);
        let schedule = parity_schedule(8);
        let mut seen = 0u64;
        let mut last_window = None;
        let report = par.run_sharded(&schedule, None, None, None, |tags| {
            seen += tags.len() as u64;
            for t in tags {
                assert!(!t.is_none());
                if let Some(w) = last_window {
                    assert!(t.window >= w);
                }
                last_window = Some(t.window);
            }
        });
        assert_eq!(seen, report.events_processed);
    }

    #[test]
    fn order_tap_is_none_outside_windows() {
        let tap = order_tap();
        let mut par = build_relay_ring(4, 5);
        let schedule = parity_schedule(4);
        let tap_in_hook = tap.clone();
        par.run_sharded(&schedule, None, None, Some(&tap), move |_| {
            // At the barrier the window is over: the tap must be reset.
            assert!(tap_in_hook.get().is_none());
        });
        assert!(tap.get().is_none());
    }

    #[test]
    fn misordered_merge_diverges_from_sequential() {
        let mut seq = build_relay_ring(8, 20);
        seq.run();
        let mut par = build_relay_ring(8, 20);
        let schedule = parity_schedule(8).with_misordered_merge();
        par.run_sharded(&schedule, None, None, None, |_| {});
        // The sabotage knob must be *observable* — otherwise the
        // differential suite could not certify the merge order.
        assert_ne!(observables(&seq), observables(&par));
    }

    #[test]
    #[should_panic(expected = "one-tick lookahead")]
    fn same_tick_cross_shard_send_panics() {
        struct Bad;
        impl Actor<u32> for Bad {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _tag: u64) {
                // Delay-0 send to an actor in the *other* shard.
                ctx.send(1, SimTime::ZERO, 0);
            }
        }
        struct Sink;
        impl Actor<u32> for Sink {
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
        }
        let mut k: Kernel<u32> = Kernel::new(1);
        k.add_actor(Box::new(Bad));
        k.add_actor(Box::new(Sink));
        let schedule = ShardSchedule::new(vec![0, 1], 2);
        k.run_sharded(&schedule, None, None, None, |_| {});
    }

    #[test]
    fn actors_beyond_schedule_run_on_global_slot() {
        let mut seq = build_relay_ring(4, 10);
        // A late monitor actor outside the shard map.
        seq.add_actor(Box::new(Relay {
            peer: 0,
            hops_left: 0,
        }));
        seq.schedule_timer(SimTime::from_ticks(1), 4, 77);
        let seq_report = seq.run();

        let mut par = build_relay_ring(4, 10);
        par.add_actor(Box::new(Relay {
            peer: 0,
            hops_left: 0,
        }));
        par.schedule_timer(SimTime::from_ticks(1), 4, 77);
        // Schedule only covers the first four actors.
        let schedule = parity_schedule(4);
        let par_report = par.run_sharded(&schedule, None, None, None, |_| {});
        assert_eq!(seq_report, par_report);
        assert_eq!(observables(&seq), observables(&par));
    }

    #[test]
    fn shard_obs_accounting_matches_the_run_report() {
        let mut par = build_relay_ring(8, 20);
        let schedule = parity_schedule(8);
        let mut obs = ShardObs::new(2);
        let report = par.run_sharded_observed(&schedule, None, None, None, |_| {}, Some(&mut obs));
        // Exact accounting: per-slot sums equal the kernel's own total.
        assert_eq!(obs.total_events(), report.events_processed);
        // The relay ring alternates parities, so every send is
        // cross-shard: staged and applied totals match and are nonzero.
        let staged: u64 = (0..obs.slot_count()).map(|s| obs.cross_staged(s)).sum();
        assert_eq!(staged, obs.cross_total());
        assert!(obs.cross_total() > 0);
        assert!(obs.windows() > 0);
        // Observing changes no observable: a blind run is bit-identical.
        let mut blind = build_relay_ring(8, 20);
        let blind_report = blind.run_sharded(&schedule, None, None, None, |_| {});
        assert_eq!(report, blind_report);
        assert_eq!(observables(&par), observables(&blind));
    }

    #[test]
    fn undercount_tap_breaks_exact_accounting() {
        let mut par = build_relay_ring(8, 20);
        let schedule = parity_schedule(8);
        let mut obs = ShardObs::new(2).with_undercount_tap();
        let report = par.run_sharded_observed(&schedule, None, None, None, |_| {}, Some(&mut obs));
        assert!(obs.total_events() < report.events_processed);
    }

    #[test]
    fn flight_recorder_is_identical_across_engines() {
        let shard_map: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        let snapshot_all = |k: &Kernel<u32>| -> Vec<Vec<crate::flight::FlightRec>> {
            let rec = k.flight_recorder().expect("recorder installed");
            (0..rec.slot_count()).map(|s| rec.snapshot(s)).collect()
        };
        let mut seq = build_relay_ring(8, 20);
        seq.set_flight_recorder(crate::flight::FlightRecorder::new(shard_map.clone(), 2, 16));
        seq.run();

        let mut par = build_relay_ring(8, 20);
        par.set_flight_recorder(crate::flight::FlightRecorder::new(shard_map, 2, 16));
        par.run_sharded(&parity_schedule(8), None, None, None, |_| {});

        // Same stamps, same retained events, same drop counts — the
        // recorder itself is a deterministic observable.
        assert_eq!(snapshot_all(&seq), snapshot_all(&par));
        let (s, p) = (
            seq.flight_recorder().unwrap(),
            par.flight_recorder().unwrap(),
        );
        assert_eq!(s.recorded(), p.recorded());
        for slot in 0..s.slot_count() {
            assert_eq!(s.dropped(slot), p.dropped(slot));
        }
        // And it did not perturb the ordinary observables either.
        assert_eq!(observables(&seq), observables(&par));
    }

    #[test]
    fn event_budget_stops_at_window_granularity() {
        let mut par = build_relay_ring(8, 50);
        let schedule = parity_schedule(8);
        let report = par.run_sharded(&schedule, None, Some(10), None, |_| {});
        assert_eq!(report.stop, StopReason::EventLimit);
        assert!(report.events_processed >= 10);
        assert!(par.pending_events() > 0);
    }
}
