//! Optional event tracing.
//!
//! When enabled, the kernel appends one [`TraceEntry`] per dispatched event.
//! Tests use traces to assert determinism (two runs with the same seed must
//! produce identical traces) and to debug protocol interleavings.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The kind of dispatched event recorded in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message delivery; `a` is the sender, `b` the payload discriminant.
    Message,
    /// A timer expiration; `a` is unused, `b` the tag.
    Timer,
}

/// One dispatched event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Dispatch instant.
    pub time: SimTime,
    /// Receiving actor.
    pub target: usize,
    /// Message or timer.
    pub kind: TraceKind,
    /// Sender (messages) — unused for timers.
    pub a: usize,
    /// Payload discriminant (messages) or tag (timers).
    pub b: u64,
}

/// A bounded in-memory trace buffer.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    enabled: bool,
    entries: Vec<TraceEntry>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with unbounded capacity.
    pub fn enabled() -> Self {
        Tracer { enabled: true, ..Tracer::default() }
    }

    /// An enabled tracer that keeps at most `cap` entries and counts the
    /// overflow in [`Tracer::dropped`].
    pub fn with_capacity(cap: usize) -> Self {
        Tracer { enabled: true, capacity: Some(cap), ..Tracer::default() }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one entry (no-op when disabled or full).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.entries.push(entry);
    }

    /// Entries recorded so far.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// How many entries were discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_ticks(t),
            target: 0,
            kind: TraceKind::Timer,
            a: 0,
            b: t,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record(entry(1));
        assert!(tr.entries().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn enabled_records_in_order() {
        let mut tr = Tracer::enabled();
        tr.record(entry(1));
        tr.record(entry(2));
        assert_eq!(tr.entries().len(), 2);
        assert_eq!(tr.entries()[1].b, 2);
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let mut tr = Tracer::with_capacity(2);
        for t in 0..5 {
            tr.record(entry(t));
        }
        assert_eq!(tr.entries().len(), 2);
        assert_eq!(tr.dropped(), 3);
    }
}
