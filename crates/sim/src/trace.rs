//! Optional event tracing.
//!
//! When enabled, the kernel appends one [`TraceEntry`] per dispatched event.
//! Tests use traces to assert determinism (two runs with the same seed must
//! produce identical traces) and to debug protocol interleavings.
//!
//! A [`Tracer`] runs in one of four modes:
//!
//! * **disabled** — records nothing (the default);
//! * **unbounded** — keeps every entry in memory ([`Tracer::enabled`]);
//! * **bounded** — keeps the *first* `cap` entries and counts the rest as
//!   dropped ([`Tracer::with_capacity`]);
//! * **ring** — keeps the *most recent* `cap` entries, overwriting the
//!   oldest ([`Tracer::ring`]); use [`Tracer::snapshot`] to read the
//!   retained entries in chronological order;
//! * **streaming** — forwards every entry to a [`TraceSink`] without
//!   buffering anything in the kernel ([`Tracer::streaming`]), so long
//!   runs no longer accumulate unbounded memory.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The kind of dispatched event recorded in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message delivery; `a` is the sender, `b` the payload discriminant.
    Message,
    /// A timer expiration; `a` is unused, `b` the tag.
    Timer,
}

/// One dispatched event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Dispatch instant.
    pub time: SimTime,
    /// Receiving actor.
    pub target: usize,
    /// Message or timer.
    pub kind: TraceKind,
    /// Sender (messages) — unused for timers.
    pub a: usize,
    /// Payload discriminant (messages) or tag (timers).
    pub b: u64,
}

/// Receives trace entries as the kernel dispatches them.
///
/// Implementations typically serialize each entry to an external store
/// (e.g. a JSONL buffer) so the kernel itself stays memory-bounded.
pub trait TraceSink {
    /// Called once per dispatched event, in dispatch order.
    fn record(&mut self, entry: &TraceEntry);
}

/// An event trace buffer; see the module docs for the available modes.
#[derive(Default)]
pub struct Tracer {
    enabled: bool,
    entries: Vec<TraceEntry>,
    capacity: Option<usize>,
    ring: bool,
    head: usize,
    dropped: u64,
    streamed: u64,
    sink: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("entries", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("ring", &self.ring)
            .field("dropped", &self.dropped)
            .field("streamed", &self.streamed)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with unbounded capacity.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// An enabled tracer that keeps the **first** `cap` entries and counts
    /// the overflow in [`Tracer::dropped`].
    pub fn with_capacity(cap: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: Some(cap),
            ..Tracer::default()
        }
    }

    /// An enabled tracer that keeps the **most recent** `cap` entries,
    /// overwriting the oldest once full. Each overwritten entry counts in
    /// [`Tracer::dropped`]. Read with [`Tracer::snapshot`]: after
    /// overflow, [`Tracer::entries`] exposes the raw circular buffer,
    /// whose storage order differs from chronological order.
    pub fn ring(cap: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: Some(cap),
            ring: true,
            ..Tracer::default()
        }
    }

    /// An enabled tracer that buffers nothing and forwards every entry to
    /// `sink` instead.
    pub fn streaming(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            enabled: true,
            sink: Some(sink),
            ..Tracer::default()
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this tracer keeps the newest entries (ring mode).
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Whether this tracer forwards entries to a sink instead of buffering.
    pub fn is_streaming(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one entry (no-op when disabled; see module docs for the
    /// overflow behavior of each mode).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled {
            return;
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&entry);
            self.streamed += 1;
            return;
        }
        match self.capacity {
            Some(cap) if self.entries.len() >= cap => {
                if self.ring && cap > 0 {
                    self.entries[self.head] = entry;
                    self.head = (self.head + 1) % cap;
                }
                self.dropped += 1;
            }
            _ => self.entries.push(entry),
        }
    }

    /// Buffered entries in storage order. In ring mode after overflow the
    /// storage order is rotated; prefer [`Tracer::snapshot`] there. Always
    /// empty in streaming mode.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Buffered entries in chronological order, un-rotating the ring
    /// buffer when needed.
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        let wrapped = self.ring && self.capacity.is_some_and(|cap| self.entries.len() == cap);
        if wrapped && self.head > 0 {
            let mut out = Vec::with_capacity(self.entries.len());
            out.extend_from_slice(&self.entries[self.head..]);
            out.extend_from_slice(&self.entries[..self.head]);
            out
        } else {
            self.entries.clone()
        }
    }

    /// How many entries were discarded: overflow past the bound in bounded
    /// mode, overwritten entries in ring mode.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// How many entries were forwarded to the sink (streaming mode).
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// Consumes the tracer, returning its sink (if streaming).
    pub fn into_sink(self) -> Option<Box<dyn TraceSink>> {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_ticks(t),
            target: 0,
            kind: TraceKind::Timer,
            a: 0,
            b: t,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record(entry(1));
        assert!(tr.entries().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn enabled_records_in_order() {
        let mut tr = Tracer::enabled();
        tr.record(entry(1));
        tr.record(entry(2));
        assert_eq!(tr.entries().len(), 2);
        assert_eq!(tr.entries()[1].b, 2);
    }

    #[test]
    fn capacity_bound_keeps_oldest_and_counts_drops() {
        let mut tr = Tracer::with_capacity(2);
        for t in 0..5 {
            tr.record(entry(t));
        }
        assert_eq!(tr.entries().len(), 2);
        assert_eq!(tr.dropped(), 3);
        // Bounded mode keeps the *first* entries.
        let kept: Vec<u64> = tr.snapshot().iter().map(|e| e.b).collect();
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn ring_keeps_newest_in_chronological_order() {
        let mut tr = Tracer::ring(3);
        for t in 0..8 {
            tr.record(entry(t));
        }
        assert!(tr.is_ring());
        assert_eq!(tr.dropped(), 5);
        let kept: Vec<u64> = tr.snapshot().iter().map(|e| e.b).collect();
        assert_eq!(kept, vec![5, 6, 7]);
        // The raw buffer is rotated; snapshot un-rotates it.
        assert_eq!(tr.entries().len(), 3);
    }

    #[test]
    fn ring_below_capacity_matches_unbounded() {
        let mut tr = Tracer::ring(10);
        for t in 0..4 {
            tr.record(entry(t));
        }
        assert_eq!(tr.dropped(), 0);
        let kept: Vec<u64> = tr.snapshot().iter().map(|e| e.b).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wrap_boundary_is_chronological() {
        // Exactly one full lap: head returns to 0 and the raw buffer is
        // already chronological.
        let mut tr = Tracer::ring(4);
        for t in 0..8 {
            tr.record(entry(t));
        }
        let kept: Vec<u64> = tr.snapshot().iter().map(|e| e.b).collect();
        assert_eq!(kept, vec![4, 5, 6, 7]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut tr = Tracer::ring(0);
        tr.record(entry(1));
        assert!(tr.entries().is_empty());
        assert_eq!(tr.dropped(), 1);
        assert!(tr.snapshot().is_empty());
    }

    struct CollectSink(Vec<u64>);
    impl TraceSink for CollectSink {
        fn record(&mut self, entry: &TraceEntry) {
            self.0.push(entry.b);
        }
    }

    #[test]
    fn streaming_forwards_without_buffering() {
        let mut tr = Tracer::streaming(Box::new(CollectSink(Vec::new())));
        assert!(tr.is_streaming());
        for t in 0..5 {
            tr.record(entry(t));
        }
        assert!(tr.entries().is_empty());
        assert_eq!(tr.streamed(), 5);
        assert_eq!(tr.dropped(), 0);
    }
}
