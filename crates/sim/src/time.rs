//! Simulated time.
//!
//! Time is measured in abstract *ticks*. The paper's uniform cost model
//! (§3.2) defines one unit of latency as the time to complete `c`
//! computations or transmit `b` units of data; we let one tick equal one
//! such latency unit, so simulated durations are directly comparable with
//! the analytical estimates produced by `wsn-core::estimate`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in ticks since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as "never" for absent timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Raw tick count since the start of the run.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick count.
    pub const fn saturating_add(self, ticks: u64) -> Self {
        SimTime(self.0.saturating_add(ticks))
    }

    /// Elapsed ticks since `earlier`; zero when `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs)
                .expect("simulated time overflowed u64 ticks"),
        )
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self + rhs.0
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("subtracted a later SimTime from an earlier one")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.ticks(), 0);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let t = SimTime::from_ticks(10) + 5;
        assert_eq!(t.ticks(), 15);
        assert_eq!(t - SimTime::from_ticks(10), 5);
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::MAX > SimTime::from_ticks(u64::MAX - 1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
        assert_eq!(SimTime::ZERO.saturating_since(SimTime::from_ticks(5)), 0);
        assert_eq!(
            SimTime::from_ticks(7).saturating_since(SimTime::from_ticks(5)),
            2
        );
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn add_overflow_panics() {
        let _ = SimTime::MAX + 1;
    }

    #[test]
    #[should_panic(expected = "subtracted a later")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_ticks(1);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t=42");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 3;
        t += 4;
        assert_eq!(t.ticks(), 7);
    }
}
