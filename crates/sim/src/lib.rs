//! # wsn-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which every other layer of the
//! reproduction runs. The paper (Bakshi & Prasanna, ICPP 2004) evaluates its
//! virtual-architecture methodology on a deployed sensor network; we have no
//! hardware, so all protocols and algorithms execute on this kernel instead.
//!
//! The kernel is intentionally small and *strictly deterministic*:
//!
//! * Simulated time is a monotone [`SimTime`] in abstract ticks (the paper's
//!   uniform cost model measures latency in abstract units, so ticks map
//!   1:1 onto cost-model latency units).
//! * Events are totally ordered by `(time, sequence number)`; two events
//!   scheduled for the same tick fire in scheduling order, so a run is a
//!   pure function of the configuration and the seed.
//! * Randomness comes from [`rng::DetRng`], a self-contained xoshiro256++
//!   generator with per-actor streams derived from a single master seed.
//!
//! The programming model is actor-based ([`Actor`]): each simulated entity
//! (a sensor node, a virtual grid process, a sink) receives messages and
//! timer expirations through a [`Context`] that lets it send further
//! messages, set timers, draw random numbers, and bump statistics counters.
//!
//! ```
//! use wsn_sim::{Actor, Context, EventKind, Kernel, SimTime};
//!
//! struct Ping { peer: usize, remaining: u32 }
//!
//! impl Actor<u32> for Ping {
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: usize, msg: u32) {
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.send(self.peer, SimTime::from_ticks(1), msg + 1);
//!         }
//!     }
//! }
//!
//! let mut k = Kernel::new(42);
//! let a = k.add_actor(Box::new(Ping { peer: 1, remaining: 3 }));
//! let b = k.add_actor(Box::new(Ping { peer: 0, remaining: 3 }));
//! assert_eq!(a, 0);
//! k.schedule_message(SimTime::ZERO, a, b, 0);
//! let report = k.run();
//! assert_eq!(report.events_processed, 7); // initial + 3 + 3 replies
//! ```

#![forbid(unsafe_code)]

pub mod causal;
pub mod event;
pub mod flight;
pub mod kernel;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use causal::{
    shared_causal_log, CausalEvent, CausalKind, CausalLog, CausalStamp, SharedCausalLog,
};
pub use event::{EventKind, ScheduledEvent};
pub use flight::{FlightRec, FlightRecorder, ShardObs, WindowHist, WINDOW_HIST_UPPERS};
pub use kernel::{
    Actor, ActorId, Context, Kernel, Payload, RunReport, StopReason, METRIC_DISPATCH_LATENCY,
    METRIC_QUEUE_DEPTH,
};
pub use rng::DetRng;
pub use shard::{order_tap, DispatchTag, OrderTap, ShardSchedule, GLOBAL_SHARD};
pub use stats::{Histogram, Stats, TimeSeries};
pub use time::SimTime;
pub use trace::{TraceEntry, TraceKind, TraceSink, Tracer};
