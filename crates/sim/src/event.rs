//! Event representation and the deterministic pending-event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires at its target actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Delivery of an application message from another actor.
    Message {
        /// Sending actor.
        from: usize,
        /// Payload.
        msg: M,
    },
    /// Expiration of a timer the target set on itself.
    Timer {
        /// Caller-chosen tag distinguishing concurrent timers.
        tag: u64,
    },
}

/// An event scheduled for a future instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// When the event fires.
    pub time: SimTime,
    /// Global sequence number; breaks ties among same-tick events so that
    /// execution order equals scheduling order (determinism).
    pub seq: u64,
    /// When the event entered the queue; `time - enqueued_at` is the
    /// scheduling latency the kernel metrics histogram.
    pub enqueued_at: SimTime,
    /// Receiving actor.
    pub target: usize,
    /// Payload.
    pub kind: EventKind<M>,
}

/// Min-heap of pending events ordered by `(time, seq)`.
///
/// `BinaryHeap` is a max-heap, so ordering is inverted in the `Ord` impl.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
}

#[derive(Debug)]
struct HeapEntry<M>(ScheduledEvent<M>);

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smallest (time, seq) = greatest heap entry.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `kind` to fire at `target` at absolute instant `time`,
    /// treating `time` as the enqueue instant (zero scheduling latency).
    pub fn push(&mut self, time: SimTime, target: usize, kind: EventKind<M>) {
        self.push_from(time, time, target, kind);
    }

    /// Schedules `kind` to fire at `target` at absolute instant `time`,
    /// stamping the event as enqueued at `enqueued_at` so the kernel can
    /// histogram scheduling latency (`time - enqueued_at`).
    pub fn push_from(
        &mut self,
        enqueued_at: SimTime,
        time: SimTime,
        target: usize,
        kind: EventKind<M>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(ScheduledEvent {
            time,
            seq,
            enqueued_at,
            target,
            kind,
        }));
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Re-inserts an already-sequenced event without assigning a fresh
    /// sequence number. The sharded scheduler uses this to move events
    /// between the global queue and per-shard queues while preserving the
    /// exact `(time, seq)` total order the sequential kernel would have
    /// used.
    pub(crate) fn push_scheduled(&mut self, ev: ScheduledEvent<M>) {
        self.heap.push(HeapEntry(ev));
    }

    /// Drains every pending event (heap order is unspecified; callers
    /// sort by `(time, seq)` as needed).
    pub(crate) fn drain_all(&mut self) -> Vec<ScheduledEvent<M>> {
        std::mem::take(&mut self.heap)
            .into_iter()
            .map(|e| e.0)
            .collect()
    }

    /// The next sequence number this queue will assign.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Advances the sequence counter to `seq` (monotone only — the
    /// sharded replay hands out the intervening numbers itself).
    pub(crate) fn set_next_seq(&mut self, seq: u64) {
        debug_assert!(seq >= self.next_seq, "sequence counter ran backwards");
        self.next_seq = seq;
    }

    /// Instant of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(m: u32) -> EventKind<u32> {
        EventKind::Message { from: 0, msg: m }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 0, msg(5));
        q.push(SimTime::from_ticks(1), 0, msg(1));
        q.push(SimTime::from_ticks(3), 0, msg(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_tick_fifo_by_sequence() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.push(SimTime::from_ticks(7), 0, msg(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Message { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(9), 1, msg(0));
        q.push(SimTime::from_ticks(2), 2, msg(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(2)));
        let e = q.pop().unwrap();
        assert_eq!(e.time.ticks(), 2);
        assert_eq!(e.target, 2);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0, EventKind::Timer { tag: 1 });
        q.push(SimTime::ZERO, 0, EventKind::Timer { tag: 2 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn push_from_stamps_enqueue_instant() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_from(SimTime::from_ticks(3), SimTime::from_ticks(10), 0, msg(0));
        q.push(SimTime::from_ticks(4), 0, msg(1));
        let first = q.pop().unwrap();
        assert_eq!(first.enqueued_at, first.time); // plain push: zero latency
        let second = q.pop().unwrap();
        assert_eq!(second.time - second.enqueued_at, 7);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime::from_ticks(10), 0, msg(10));
        q.push(SimTime::from_ticks(4), 0, msg(4));
        assert_eq!(q.pop().unwrap().time.ticks(), 4);
        q.push(SimTime::from_ticks(2), 0, msg(2));
        q.push(SimTime::from_ticks(12), 0, msg(12));
        assert_eq!(q.pop().unwrap().time.ticks(), 2);
        assert_eq!(q.pop().unwrap().time.ticks(), 10);
        assert_eq!(q.pop().unwrap().time.ticks(), 12);
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue is a total order: pops are sorted by (time, seq).
        #[test]
        fn pop_order_is_sorted(ticks in prop::collection::vec(0u64..1000, 0..200)) {
            let mut q: EventQueue<u32> = EventQueue::new();
            for &t in &ticks {
                q.push(SimTime::from_ticks(t), 0, EventKind::Timer { tag: t });
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push((e.time, e.seq));
            }
            prop_assert_eq!(popped.len(), ticks.len());
            for w in popped.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        /// Every pushed event is popped exactly once (multiset equality on times).
        #[test]
        fn conservation(ticks in prop::collection::vec(0u64..50, 0..200)) {
            let mut q: EventQueue<u32> = EventQueue::new();
            for &t in &ticks {
                q.push(SimTime::from_ticks(t), 0, EventKind::Timer { tag: 0 });
            }
            let mut got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.ticks()).collect();
            let mut want = ticks.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
