//! Deterministic random number generation.
//!
//! Reproducibility is a hard requirement for the experiment harness: every
//! table in EXPERIMENTS.md must regenerate bit-identically from a seed. We
//! therefore ship our own xoshiro256++ implementation rather than depend on
//! the (unspecified, version-dependent) algorithm behind `rand`'s small
//! RNGs. The generator still implements [`rand::RngCore`] and
//! [`rand::SeedableRng`], so all of `rand`'s distributions work on it.
//!
//! Independent *streams* (one per simulated node) are derived from a master
//! seed with SplitMix64, the recommended seeding procedure for the xoshiro
//! family.

use rand::{RngCore, SeedableRng};

/// SplitMix64 step, used to expand seeds into full xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with platform-stable output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro state must not be all zero; splitmix64 output of any seed
        // never produces four zeros, but guard against it for safety.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        DetRng { s }
    }

    /// Derives an independent stream for `stream_id` from a master seed.
    ///
    /// Streams are decorrelated by hashing the pair through SplitMix64
    /// before state expansion, so `stream(s, 0)` and `stream(s, 1)` share
    /// no state prefix.
    pub fn stream(master_seed: u64, stream_id: u64) -> Self {
        let mut sm = master_seed ^ 0x6A09_E667_F3BC_C909;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ stream_id.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        DetRng::new(splitmix64(&mut sm2))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's method (unbiased).
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a positive bound");
        let mut x = self.next();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn bounded_usize(&mut self, bound: usize) -> usize {
        self.bounded_u64(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call for
    /// simplicity — throughput is irrelevant at our scales).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.unit_f64().max(f64::MIN_POSITIVE);
        let u2 = self.unit_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        DetRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        DetRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = DetRng::stream(99, 0);
        let mut b = DetRng::stream(99, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_u64_respects_bound() {
        let mut r = DetRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_u64_covers_small_range() {
        let mut r = DetRng::new(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.bounded_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn bounded_u64_zero_panics() {
        DetRng::new(0).bounded_u64(0);
    }

    #[test]
    fn unit_f64_in_range_and_nondegenerate() {
        let mut r = DetRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = DetRng::new(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = DetRng::new(9);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn known_answer_regression() {
        // Pins the generator's output so cross-version drift is caught.
        let mut r = DetRng::new(0xDEAD_BEEF);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = DetRng::new(0xDEAD_BEEF);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // Distinct outputs (sanity that state advances).
        assert_ne!(got[0], got[1]);
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let a = DetRng::seed_from_u64(123);
        let b = DetRng::from_seed(123u64.to_le_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
