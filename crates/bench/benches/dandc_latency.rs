//! Criterion bench: full D&C runs on the virtual machine (EXP-5 driver).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_topoquery::{run_dandc_vm, Implementation};

fn bench_dandc(c: &mut Criterion) {
    let mut group = c.benchmark_group("dandc_vm");
    group.sample_size(10);
    for side in [8u32, 16, 32] {
        let field = wsn_bench::blob_field(side, 42);
        group.bench_with_input(BenchmarkId::new("native", side), &side, |b, &side| {
            b.iter(|| run_dandc_vm(side, &field, 5.0, 1, Implementation::Native));
        });
        group.bench_with_input(BenchmarkId::new("synthesized", side), &side, |b, &side| {
            b.iter(|| run_dandc_vm(side, &field, 5.0, 1, Implementation::Synthesized));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dandc);
criterion_main!(benches);
