//! Criterion bench: per-event cost of the zero-copy hot path.
//!
//! One iteration is a full warmed-up steady-state round — the
//! send → stamp-in-place → deliver → dispatch cycle the frame-layout
//! certificate licenses — so `wall/events` here is the same per-event
//! cost `wsn-lint --perf-gate` tracks as `events_per_sec`, measured in
//! isolation from topology bring-up. The codec microbenches pin the
//! encode/decode halves so a codec regression is attributable even when
//! the end-to-end number moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_bench::hotpath::steady_state_hotpath;
use wsn_core::GridCoord;
use wsn_net::FrameBuf;
use wsn_runtime::{decode_rtmsg, encode_rtmsg, set_frame_stamp, AppEnvelope, RtMsg};
use wsn_sim::CausalStamp;

fn envelope() -> AppEnvelope<f64> {
    AppEnvelope {
        src_cell: GridCoord::new(3, 1),
        dest_cell: GridCoord::new(0, 2),
        units: 13,
        round: 7,
        origin: 42,
        msg_id: 9001,
        stamp: CausalStamp {
            seq: 55,
            lamport: 77,
        },
        payload: 2.5,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    let msg = RtMsg::App(envelope());
    let mut frame = FrameBuf::new();
    encode_rtmsg(&msg, &mut frame).unwrap();
    group.bench_function("encode_app", |b| {
        b.iter(|| encode_rtmsg(std::hint::black_box(&msg), &mut frame).unwrap());
    });
    group.bench_function("decode_app", |b| {
        b.iter(|| decode_rtmsg::<f64>(std::hint::black_box(&frame)).unwrap());
    });
    group.bench_function("restamp_in_place", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            set_frame_stamp(
                std::hint::black_box(&mut frame),
                CausalStamp { seq, lamport: seq },
            );
        });
    });
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_round");
    group.sample_size(10);
    for side in [4u32, 8] {
        group.bench_with_input(BenchmarkId::new("side", side), &side, |b, &side| {
            b.iter(|| steady_state_hotpath(std::hint::black_box(side), 50, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_steady_state);
criterion_main!(benches);
