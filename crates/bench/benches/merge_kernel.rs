//! Criterion bench: the boundary-summary merge kernel (EXP-6's inner loop).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_core::GridCoord;
use wsn_topoquery::{BoundarySummary, Field, FieldSpec};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_four");
    group.sample_size(20);
    for side in [8u32, 16, 32] {
        let field = Field::generate(
            FieldSpec::RandomCells {
                p: 0.4,
                hot: 1.0,
                cold: 0.0,
            },
            2 * side,
            9,
        );
        let map = field.threshold(0.5);
        let quads = [
            BoundarySummary::from_feature_map(&map, GridCoord::new(0, 0), side),
            BoundarySummary::from_feature_map(&map, GridCoord::new(side, 0), side),
            BoundarySummary::from_feature_map(&map, GridCoord::new(0, side), side),
            BoundarySummary::from_feature_map(&map, GridCoord::new(side, side), side),
        ];
        group.bench_with_input(
            BenchmarkId::new("quadrant_side", side),
            &quads,
            |b, quads| {
                b.iter(|| wsn_topoquery::merge_four(std::hint::black_box(quads)));
            },
        );
        group.bench_with_input(BenchmarkId::new("reference_side", side), &map, |b, map| {
            b.iter(|| {
                BoundarySummary::from_feature_map(
                    std::hint::black_box(map),
                    GridCoord::new(0, 0),
                    2 * side,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
