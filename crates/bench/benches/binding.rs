//! Criterion bench: the binding (leader election) protocol (EXP-8 driver).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_net::{DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::PhysicalRuntime;

fn bench_binding(c: &mut Criterion) {
    let mut group = c.benchmark_group("binding");
    group.sample_size(10);
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let deployment = DeploymentSpec::per_cell(8, k).generate(23);
                let range = deployment.grid().range_for_adjacent_cell_reachability();
                let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
                    deployment,
                    RadioModel::uniform(range),
                    LinkModel::ideal(),
                    None,
                    1,
                    23,
                    |_| 0.0,
                );
                rt.run_topology_emulation();
                rt.run_binding()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binding);
criterion_main!(benches);
