//! Criterion bench: mapping strategies (EXP-13 driver).
use criterion::{criterion_group, criterion_main, Criterion};
use wsn_core::CostModel;
use wsn_synth::{
    quadtree_task_graph, AnnealingMapper, CentroidMapper, Mapper, MappingCost, QuadrantMapper,
};

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    let qt = quadtree_task_graph(16, &wsn_bench::full_boundary_units, &|_| 1);
    let cost = CostModel::uniform();
    group.bench_function("quadrant_evaluate", |b| {
        b.iter(|| {
            let m = QuadrantMapper.map(&qt);
            MappingCost::evaluate(&qt, &m, &cost)
        });
    });
    group.bench_function("centroid_evaluate", |b| {
        b.iter(|| {
            let m = CentroidMapper.map(&qt);
            MappingCost::evaluate(&qt, &m, &cost)
        });
    });
    group.bench_function("anneal_200", |b| {
        b.iter(|| {
            let mut a = AnnealingMapper::new(5, cost, 200, 0.5);
            let m = a.map(&qt);
            MappingCost::evaluate(&qt, &m, &cost)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
