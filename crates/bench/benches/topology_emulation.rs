//! Criterion bench: the topology-emulation protocol (EXP-7 driver).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_net::{DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::PhysicalRuntime;

fn bench_topo(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_emulation");
    group.sample_size(10);
    for (m, k) in [(4u32, 4usize), (8, 4), (8, 8)] {
        group.bench_with_input(
            BenchmarkId::new(format!("m{m}"), k),
            &(m, k),
            |b, &(m, k)| {
                b.iter(|| {
                    let deployment = DeploymentSpec::per_cell(m, k).generate(11);
                    let range = deployment.grid().range_for_adjacent_cell_reachability();
                    let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
                        deployment,
                        RadioModel::uniform(range),
                        LinkModel::ideal(),
                        None,
                        1,
                        11,
                        |_| 0.0,
                    );
                    rt.run_topology_emulation()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topo);
criterion_main!(benches);
