//! Criterion bench: D&C vs centralized simulation runs (EXP-6 driver).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_topoquery::{run_centralized_vm, run_dandc_vm, Implementation};

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("dandc_vs_central");
    group.sample_size(10);
    for side in [8u32, 16] {
        let field = wsn_bench::blob_field(side, 7);
        group.bench_with_input(BenchmarkId::new("dandc", side), &side, |b, &side| {
            b.iter(|| run_dandc_vm(side, &field, 5.0, 1, Implementation::Native));
        });
        group.bench_with_input(BenchmarkId::new("central", side), &side, |b, &side| {
            b.iter(|| run_centralized_vm(side, &field, 5.0, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pair);
criterion_main!(benches);
