//! Criterion bench: group-communication probe on the VM (EXP-10 driver).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_group(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_comm");
    group.sample_size(10);
    for level in [1u8, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            b.iter(|| wsn_bench::exp10_group_cost(16, &[level]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group);
criterion_main!(benches);
