//! `wsn-lint` — static analysis CLI for synthesized WSN artifacts.
//!
//! ```text
//! wsn-lint                         lint the paper's Figure-4 deployment (depth 2)
//! wsn-lint --fig4 [depth]          same, at an explicit hierarchy depth
//! wsn-lint --program <file.json>   lint a serialized program (JSON model)
//! wsn-lint --emit-json-program [depth]   print the Figure-4 program as JSON
//! wsn-lint --certify [depth]       derive the symbolic §4 cost certificate
//! wsn-lint --conform <trace.jsonl> check a measured trace against the certificate
//! wsn-lint --record-fidelity-trace <out.jsonl> [depth]
//!                                  record the seeded model-fidelity run as JSONL;
//!                                  --mutate-hop-cost <k> / --mutate-tx-energy <x>
//!                                  deliberately mis-price the runtime radio
//! wsn-lint --perf-baseline <out.json> [--include-scale]
//!                                  record the seeded perf snapshots (sides 4, 8);
//!                                  --include-scale adds the sharded-kernel scale row
//!                                  (--scale-side N, --scale-cut L, --scale-workers W)
//! wsn-lint --perf-gate <baseline.json> [--tolerance pct]
//!                                  re-record the snapshots and fail on drift;
//!                                  the mutation flags apply here too, so CI can
//!                                  prove an injected +50% hop delay trips it;
//!                                  --include-scale re-records the scale rows,
//!                                  --gate-throughput also gates events_per_sec and
//!                                  peak_rss_bytes (same-machine baselines only)
//! wsn-lint --parallel-gate         differential gate: sharded-kernel runs must be
//!                                  byte-identical to the sequential reference and
//!                                  certificate gating must hold; --mutate-misorder
//!                                  sabotages the boundary merge (gate must fail)
//! wsn-lint --shard-check [depth] [--cut-level N] [--emit-shard-cert]
//!                                  shard-interference analysis (SI001–SI004) of the
//!                                  Figure-4 program (or --program <file.json>) under
//!                                  the level-N quadrant plan; --emit-shard-cert
//!                                  prints the machine-checkable certificate JSON;
//!                                  --mutate-shard-leak plants a cross-shard defect
//! wsn-lint --shard-conform <trace.jsonl> [--cut-level N]
//!                                  TC009: replay a causal trace and verify every
//!                                  cross-shard delivery is a certified boundary edge
//! wsn-lint --record-shard-leak-trace <out.jsonl> [depth]
//!                                  record the planted-leak run TC009 must catch
//! wsn-lint --shard-metrics [depth] [--cut-level N] [--mutate-shard-skew]
//!                                  TC010: re-record the seeded sharded run and
//!                                  reconcile the per-shard telemetry against the
//!                                  shard certificate and the kernel's dispatch
//!                                  total; --mutate-shard-skew arms the planted
//!                                  undercounting tap the check must catch
//! wsn-lint --record-shard-metrics-trace <out.jsonl> [depth] [--cut-level N]
//!                                  record the sharded run with per-shard counters
//!                                  merged into the trace (netscope shards reads it)
//! wsn-lint --record-flight-dump <out.jsonl> [depth] [--cut-level N]
//!                                  record the sharded run with the flight recorder
//!                                  armed and write the ring dump (netscope flight)
//! wsn-lint --obs-gate [--tolerance pct]
//!                                  overhead gate: the instrumented steady-state
//!                                  hot path must stay within the bound (default
//!                                  10%) of the bare run's per-event cost; a trip
//!                                  writes obs-gate-flight.jsonl for post-mortem
//! wsn-lint --shard-gate            CI gate: shard-check + TC009 on sides 4 and 8
//!                                  at cut levels 1 and 2
//! wsn-lint --frame-check [depth] [--emit-frame-cert]
//!                                  frame-layout & allocation certification
//!                                  (FL001–FL005 / AL001–AL003) of the Figure-4
//!                                  program; --emit-frame-cert prints the
//!                                  machine-checkable certificate JSON;
//!                                  --mutate-payload-overflow analyzes the
//!                                  side-32 deployment the frame cannot carry
//!                                  (FL001 must trip)
//! wsn-lint --alloc-gate            certify the frame layout, then prove the
//!                                  steady-state framed hot path dispatches
//!                                  with zero heap allocations (this binary's
//!                                  counting allocator measures the round)
//! wsn-lint --check                 CI gate: paper deployments must be error-free
//! wsn-lint --codes                 list the diagnostic catalog
//! ```
//!
//! `--json` switches the report to JSON. Exit status: 0 when no
//! error-severity diagnostics were found, 1 otherwise, 2 on usage or
//! decode errors.
//!
//! This binary deliberately lives in `cli/`, not `src/bin/`: it installs
//! a counting `#[global_allocator]` (an `unsafe impl`, required by the
//! allocator API) to measure the `--alloc-gate` round, while everything
//! under the workspace's `src/` trees stays `#![forbid(unsafe_code)]`
//! and is audited for it in CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use wsn_analyze::{Code, Diagnostics};
use wsn_bench::lint;

/// [`System`], plus a relaxed counter of every allocation call — the
/// probe `wsn_bench::hotpath::allocprobe` reads around the measured
/// steady-state round. Deallocation stays uncounted: the gate's claim is
/// "no allocations per event", so only acquisition matters.
struct CountingAlloc;

static ALLOCATION_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_calls() -> u64 {
    ALLOCATION_CALLS.load(Ordering::Relaxed)
}

fn main() -> ExitCode {
    wsn_bench::hotpath::allocprobe::install(allocation_calls);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    // Flags that consume the following argument as their value.
    const VALUE_FLAGS: [&str; 7] = [
        "--mutate-hop-cost",
        "--mutate-tx-energy",
        "--tolerance",
        "--cut-level",
        "--scale-side",
        "--scale-cut",
        "--scale-workers",
    ];
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") || a.as_str() == "--" {
            positional.push(a);
        }
    }

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--codes") {
        for &code in Code::all() {
            println!("{code}  {}", code.description());
        }
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--emit-json-program") {
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        if args.iter().any(|a| a == "--mutate-shard-leak") {
            let program = lint::leak_mutated_figure4(depth);
            println!("{}", wsn_analyze::program_to_json(&program).render());
        } else {
            println!("{}", lint::figure4_program_json(depth));
        }
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--certify") {
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let (cert, diags) = lint::certify_figure4(depth);
        if json {
            println!("{}", diags.to_json().render());
        } else {
            print!("{}", cert.render_text());
            print!("{}", diags.render_text());
        }
        return if diags.has_errors() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.iter().any(|a| a == "--conform") {
        let Some(path) = positional.first() else {
            return usage_error("--conform needs a trace file path");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::conform_trace_text(&text) {
            Ok((cert, diags)) => {
                if json {
                    println!("{}", diags.to_json().render());
                } else {
                    print!("{}", cert.render_text());
                    if diags.is_empty() {
                        println!("trace conforms: every measured quantity is inside its bound");
                    } else {
                        print!("{}", diags.render_text());
                    }
                }
                if diags.has_errors() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    if args.iter().any(|a| a == "--record-fidelity-trace") {
        let Some(path) = positional.first() else {
            return usage_error("--record-fidelity-trace needs an output path");
        };
        let depth = match parse_depth(&positional[1..]) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let hop = match parse_flag_value(&args, "--mutate-hop-cost", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tx = match parse_flag_value(&args, "--mutate-tx-energy", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let side = 2u32.pow(u32::from(depth));
        let doc = wsn_bench::experiments::record_model_fidelity_trace(side, 3, 5, hop, tx);
        if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!(
            "recorded side-{side} model-fidelity trace to {path} \
             (hop-cost ×{hop}, tx-energy ×{tx})"
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--perf-baseline") {
        let Some(path) = positional.first() else {
            return usage_error("--perf-baseline needs an output path");
        };
        let mut snaps = match wsn_bench::perfbase::perf_snapshots(&[4, 8], 1.0, 1.0) {
            Ok(s) => s,
            Err(e) => return usage_error(&e),
        };
        let mut described = "sides 4, 8".to_string();
        if args.iter().any(|a| a == "--include-scale") {
            let (side, engine) = match parse_scale_config(&args) {
                Ok(c) => c,
                Err(e) => return usage_error(&e),
            };
            match wsn_bench::perfbase::perf_snapshots_with(&[side], 1.0, 1.0, engine, true) {
                Ok(scale) => snaps.extend(scale),
                Err(e) => return usage_error(&e),
            }
            described = format!("{described} + scale side {side} ({engine})");
        }
        if let Err(e) = std::fs::write(path, wsn_bench::perfbase::render_snapshots(&snaps)) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!("recorded perf baseline ({described}) to {path}");
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--perf-gate") {
        let Some(path) = positional.first() else {
            return usage_error("--perf-gate needs a baseline file path");
        };
        let hop = match parse_flag_value(&args, "--mutate-hop-cost", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tx = match parse_flag_value(&args, "--mutate-tx-energy", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tolerance = match parse_flag_value(&args, "--tolerance", 10.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        let baseline = match wsn_bench::perfbase::parse_snapshots(&text) {
            Ok(b) => b,
            Err(e) => return usage_error(&format!("{path}: {e}")),
        };
        // Scale rows (the side-512 sharded run) are only re-recorded on
        // request — routine gate runs stay cheap and deterministic.
        let include_scale = args.iter().any(|a| a == "--include-scale");
        let gate_throughput = args.iter().any(|a| a == "--gate-throughput");
        let sides: Vec<u32> = baseline
            .iter()
            .filter(|r| !r.scale)
            .map(|r| r.side)
            .collect();
        let mut current = match wsn_bench::perfbase::perf_snapshots(&sides, hop, tx) {
            Ok(s) => s,
            Err(e) => return usage_error(&e),
        };
        if include_scale {
            let (default_side, engine) = match parse_scale_config(&args) {
                Ok(c) => c,
                Err(e) => return usage_error(&e),
            };
            let scale_sides: Vec<u32> = {
                let from_baseline: Vec<u32> = baseline
                    .iter()
                    .filter(|r| r.scale)
                    .map(|r| r.side)
                    .collect();
                if from_baseline.is_empty() {
                    vec![default_side]
                } else {
                    from_baseline
                }
            };
            match wsn_bench::perfbase::perf_snapshots_with(&scale_sides, hop, tx, engine, true) {
                Ok(scale) => current.extend(scale),
                Err(e) => return usage_error(&e),
            }
        }
        return match wsn_bench::perfbase::regression_gate(
            &current,
            &baseline,
            tolerance,
            gate_throughput,
        ) {
            Ok(report) => {
                print!("{report}");
                println!("perf baseline gate: every metric within +/-{tolerance}%");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--frame-check") {
        let mutate = args.iter().any(|a| a == "--mutate-payload-overflow");
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let (cert, diags) = lint::frame_check_figure4(depth, mutate);
        if args.iter().any(|a| a == "--emit-frame-cert") {
            match &cert {
                Some(c) => println!("{}", wsn_analyze::frame_cert_to_json(c).render()),
                None => {
                    eprintln!("wsn-lint: no certificate to emit (the frame layout did not certify)")
                }
            }
        } else if json {
            println!("{}", diags.to_json().render());
        } else {
            if let Some(c) = &cert {
                print!("{}", c.render_text());
            }
            if diags.is_empty() {
                println!(
                    "frame check: clean — every message fits the fixed frame and the \
                     hot path owns its buffers"
                );
            } else {
                print!("{}", diags.render_text());
            }
        }
        return if diags.has_errors() || cert.is_none() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.iter().any(|a| a == "--alloc-gate") {
        return match lint::alloc_gate(8, 200) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("wsn-lint: alloc gate failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--shard-check") {
        let cut = match parse_flag_value(&args, "--cut-level", 1u8) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let mutate = args.iter().any(|a| a == "--mutate-shard-leak");
        let result = if args.iter().any(|a| a == "--program") {
            let Some(path) = positional.first() else {
                return usage_error("--shard-check --program needs a file path");
            };
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    lint::shard_check_program_text(&text, cut).map_err(|e| format!("{path}: {e}"))
                }
                Err(e) => Err(format!("cannot read {path}: {e}")),
            }
        } else {
            match parse_depth(&positional) {
                Ok(depth) => lint::shard_check_figure4(depth, cut, mutate),
                Err(e) => Err(e),
            }
        };
        return match result {
            Ok((cert, diags)) => {
                if args.iter().any(|a| a == "--emit-shard-cert") {
                    match &cert {
                        Some(c) => println!("{}", wsn_analyze::shard_cert_to_json(c).render()),
                        None => eprintln!(
                            "wsn-lint: no certificate to emit (the program did not shard-check)"
                        ),
                    }
                } else if json {
                    println!("{}", diags.to_json().render());
                } else {
                    if let Some(c) = &cert {
                        print!("{}", c.render_text());
                    }
                    if diags.is_empty() {
                        println!(
                            "shard check: clean — same-shard events commute, cross-shard \
                             traffic stays on the boundary"
                        );
                    } else {
                        print!("{}", diags.render_text());
                    }
                }
                if diags.has_errors() || cert.is_none() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => usage_error(&e),
        };
    }

    if args.iter().any(|a| a == "--shard-conform") {
        let Some(path) = positional.first() else {
            return usage_error("--shard-conform needs a trace file path");
        };
        let cut = match parse_flag_value(&args, "--cut-level", 1u8) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::shard_conform_trace_text(&text, cut) {
            Ok((cert, diags)) => {
                if json {
                    println!("{}", diags.to_json().render());
                } else {
                    print!("{}", cert.render_text());
                    if diags.is_empty() {
                        println!(
                            "trace conforms: every cross-shard delivery is a certified \
                             boundary edge"
                        );
                    } else {
                        print!("{}", diags.render_text());
                    }
                }
                if diags.has_errors() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    if args.iter().any(|a| a == "--shard-metrics") {
        let cut = match parse_flag_value(&args, "--cut-level", 1u8) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let skew = args.iter().any(|a| a == "--mutate-shard-skew");
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        return match lint::shard_metrics_figure4(depth, cut, skew) {
            Ok((cert, diags)) => {
                if json {
                    println!("{}", diags.to_json().render());
                } else {
                    print!("{}", cert.render_text());
                    if diags.is_empty() {
                        println!(
                            "shard metrics reconcile: per-shard counters sum to the kernel \
                             total and cross-shard traffic sits inside the certified envelope"
                        );
                    } else {
                        print!("{}", diags.render_text());
                    }
                }
                if diags.has_errors() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => usage_error(&e),
        };
    }

    if args.iter().any(|a| a == "--record-shard-metrics-trace") {
        let Some(path) = positional.first() else {
            return usage_error("--record-shard-metrics-trace needs an output path");
        };
        let depth = match parse_depth(&positional[1..]) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let cut = match parse_flag_value(&args, "--cut-level", 1u8) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        if cut < 1 || cut > depth {
            return usage_error(&format!("cut level {cut} is outside 1..={depth}"));
        }
        let skew = args.iter().any(|a| a == "--mutate-shard-skew");
        let side = 2u32.pow(u32::from(depth));
        let doc = wsn_bench::experiments::record_shard_metrics_trace(side, 3, 5, cut, skew);
        if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!(
            "recorded side-{side} cut-{cut} shard-metrics trace to {path}{}",
            if skew { " (skew-mutated)" } else { "" }
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--record-flight-dump") {
        let Some(path) = positional.first() else {
            return usage_error("--record-flight-dump needs an output path");
        };
        let depth = match parse_depth(&positional[1..]) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let cut = match parse_flag_value(&args, "--cut-level", 1u8) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        if cut < 1 || cut > depth {
            return usage_error(&format!("cut level {cut} is outside 1..={depth}"));
        }
        let side = 2u32.pow(u32::from(depth));
        let dump = wsn_bench::experiments::record_flight_dump(side, 3, 5, cut, 64, "recorded");
        if let Err(e) = std::fs::write(path, dump.to_jsonl()) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!(
            "recorded side-{side} cut-{cut} flight dump to {path} ({} dispatches stamped)",
            dump.recorded
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--obs-gate") {
        let tolerance = match parse_flag_value(&args, "--tolerance", 10.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        return match lint::obs_gate(8, 1000, tolerance) {
            Ok(report) => {
                print!("{report}");
                println!("obs gate: instrumented hot path within the bound");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                // Leave a post-mortem: the last dispatches of a fresh
                // seeded sharded run, for `netscope flight` / the CI
                // artifact upload.
                let dump = wsn_bench::experiments::record_flight_dump(8, 1, 5, 1, 64, "obs-gate");
                match std::fs::write("obs-gate-flight.jsonl", dump.to_jsonl()) {
                    Ok(()) => eprintln!("flight dump written to obs-gate-flight.jsonl"),
                    Err(e) => eprintln!("cannot write obs-gate-flight.jsonl: {e}"),
                }
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--record-shard-leak-trace") {
        let Some(path) = positional.first() else {
            return usage_error("--record-shard-leak-trace needs an output path");
        };
        let depth = match parse_depth(&positional[1..]) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let side = 2u32.pow(u32::from(depth));
        let doc = wsn_bench::experiments::record_shard_leak_trace(side, 3, 5);
        if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!("recorded side-{side} planted-leak trace to {path}");
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--parallel-gate") {
        // --mutate-misorder flips the sharded kernel's deterministic
        // boundary merge; the gate MUST then fail (CI inverts the exit
        // code to prove the differential suite has teeth).
        if args.iter().any(|a| a == "--mutate-misorder") {
            std::env::set_var("WSN_SHARD_MISORDER", "1");
        }
        let workers = match parse_flag_value(&args, "--scale-workers", 4usize) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        return match lint::parallel_gate(workers) {
            Ok(checked) => {
                println!(
                    "wsn-lint --parallel-gate: certificate gating holds and {checked} sharded \
                     runs (sides 4, 8 at cut levels 1, 2) are byte-identical to the sequential \
                     reference"
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("wsn-lint --parallel-gate: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--shard-gate") {
        let configs = [(2u8, 1u8), (2, 2), (3, 1), (3, 2)];
        return match lint::shard_gate(&configs) {
            Ok(checked) => {
                println!(
                    "wsn-lint --shard-gate: {checked} certificate(s) hold, statically and \
                     on the seeded causal traces (sides 4, 8 at cut levels 1, 2)"
                );
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for (depth, cut, diags) in failures {
                    eprintln!(
                        "depth {depth} cut {cut} failed the shard gate:\n{}",
                        diags.render_text()
                    );
                }
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--check") {
        return match lint::check_gate() {
            Ok(()) => {
                println!("wsn-lint --check: paper deployments (depths 1..=3) are error-free");
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for (depth, diags) in failures {
                    eprintln!("depth {depth} failed the gate:\n{}", diags.render_text());
                }
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--program") {
        let Some(path) = positional.first() else {
            return usage_error("--program needs a file path");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::lint_program_text(&text) {
            Ok(diags) => report(&diags, json),
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    // Default (and --fig4): the paper deployment.
    let depth = match parse_depth(&positional) {
        Ok(d) => d,
        Err(e) => return usage_error(&e),
    };
    let diags = lint::lint_figure4(depth);
    report(&diags, json)
}

/// Shape of the `--include-scale` run shared by `--perf-baseline` and
/// `--perf-gate`: scale side (default 512), cut level (default 2 → 16
/// shards), worker lanes (default 4). The engine is certificate-gated —
/// when the shard certificate is not clean at that cut, the scale row
/// silently runs on the sequential reference (with a warning), exactly
/// like the runtime drivers.
fn parse_scale_config(args: &[String]) -> Result<(u32, wsn_bench::experiments::RunEngine), String> {
    let side = parse_flag_value(args, "--scale-side", 512u32)?;
    let cut = parse_flag_value(args, "--scale-cut", 2u8)?;
    let workers = parse_flag_value(args, "--scale-workers", 4usize)?;
    let (engine, diags) = wsn_bench::lint::certified_engine(side, cut, workers, false);
    if engine == wsn_bench::experiments::RunEngine::Sequential {
        eprintln!(
            "wsn-lint: shard certificate not clean at side {side} cut {cut}; the scale row \
             falls back to the sequential kernel\n{}",
            diags.render_text()
        );
    }
    Ok((side, engine))
}

fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a value")),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("{flag}: cannot parse {raw:?}")),
        },
    }
}

fn parse_depth(positional: &[&String]) -> Result<u8, String> {
    match positional.first() {
        None => Ok(2),
        Some(raw) => match raw.parse::<u8>() {
            Ok(d) if (1..=4).contains(&d) => Ok(d),
            _ => Err(format!("depth must be 1..=4, got {raw:?}")),
        },
    }
}

fn report(diags: &Diagnostics, json: bool) -> ExitCode {
    if json {
        println!("{}", diags.to_json().render());
    } else {
        print!("{}", diags.render_text());
    }
    if diags.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("wsn-lint: {message}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: wsn-lint [--fig4] [depth] | --program <file.json> | \
         --emit-json-program [depth] | --certify [depth] | --conform <trace.jsonl> | \
         --record-fidelity-trace <out.jsonl> [depth] [--mutate-hop-cost k] \
         [--mutate-tx-energy x] | --perf-baseline <out.json> | \
         --perf-gate <baseline.json> [--tolerance pct] [--mutate-hop-cost k] \
         [--include-scale] [--gate-throughput] [--scale-side N] [--scale-cut L] \
         [--scale-workers W] | \
         --parallel-gate [--mutate-misorder] [--scale-workers W] | \
         --shard-check [depth] [--cut-level N] [--emit-shard-cert] [--mutate-shard-leak] | \
         --shard-check --program <file.json> [--cut-level N] | \
         --shard-conform <trace.jsonl> [--cut-level N] | \
         --shard-metrics [depth] [--cut-level N] [--mutate-shard-skew] | \
         --record-shard-metrics-trace <out.jsonl> [depth] [--cut-level N] \
         [--mutate-shard-skew] | \
         --record-flight-dump <out.jsonl> [depth] [--cut-level N] | \
         --obs-gate [--tolerance pct] | \
         --record-shard-leak-trace <out.jsonl> [depth] | --shard-gate | \
         --frame-check [depth] [--emit-frame-cert] [--mutate-payload-overflow] | \
         --alloc-gate | --check | --codes   [--json]"
    );
}
