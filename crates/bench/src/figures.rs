//! Regenerators for the paper's figures 2–4.

use wsn_core::Hierarchy;
use wsn_synth::{
    quadtree_task_graph, synthesize_quadtree_program, Mapper, QuadTree, QuadrantMapper,
};

fn labels_of_level(qt: &QuadTree, level: usize) -> Vec<usize> {
    qt.ids_by_level[level]
        .iter()
        .map(|&t| qt.figure_label(t))
        .collect()
}

/// Figure 2: the quad-tree representation of the algorithm (4×4 grid),
/// with the paper's node labels.
pub fn fig2_quadtree() -> String {
    let qt = quadtree_task_graph(4, &|_| 1, &|_| 1);
    let mut out = String::new();
    out.push_str("Figure 2: quad-tree representation of the algorithm (4x4 grid)\n\n");
    for level in (0..qt.ids_by_level.len()).rev() {
        let labels: Vec<String> = labels_of_level(&qt, level)
            .iter()
            .map(|l| format!("{l:>2}"))
            .collect();
        out.push_str(&format!("Level {level}: {}\n", labels.join("  ")));
    }
    out.push_str("\nEdges (child -> parent):\n");
    for level in (1..qt.ids_by_level.len()).rev() {
        for &parent in &qt.ids_by_level[level] {
            let children: Vec<String> = qt
                .graph
                .producers(parent)
                .iter()
                .map(|&c| qt.figure_label(c).to_string())
                .collect();
            out.push_str(&format!(
                "  {{{}}} -> {}   (level {level})\n",
                children.join(", "),
                qt.figure_label(parent),
            ));
        }
    }
    out
}

/// Figure 3: the example mapping — the 4×4 grid with the paper's location
/// labels (Morton order, 2×2 blocks outlined) and the quad-tree mapping.
pub fn fig3_mapping() -> String {
    let h = Hierarchy::new(4);
    let qt = quadtree_task_graph(4, &|_| 1, &|_| 1);
    let mapping = QuadrantMapper.map(&qt);
    let mut out = String::new();
    out.push_str("Figure 3: example mapping (grid locations in quad-tree order)\n\n");
    for row in 0..4u32 {
        if row == 2 {
            out.push_str("-------+-------\n");
        }
        let mut cells = Vec::new();
        for col in 0..4u32 {
            if col == 2 {
                cells.push("|".to_owned());
            }
            cells.push(format!(
                "{:>2}",
                h.morton_index(wsn_core::GridCoord::new(col, row))
            ));
        }
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out.push_str("\nRole assignment (task -> grid location):\n");
    out.push_str(&format!(
        "  root (level 2)   -> location {}\n",
        h.morton_index(mapping.node_of(qt.root()))
    ));
    let level1: Vec<String> = qt.ids_by_level[1]
        .iter()
        .map(|&t| h.morton_index(mapping.node_of(t)).to_string())
        .collect();
    out.push_str(&format!(
        "  level-1 nodes    -> locations {}\n",
        level1.join(", ")
    ));
    out.push_str("  leaves (level 0) -> their own locations 0..15\n");
    out
}

/// Figure 4: the synthesized program specification for the 4×4 case
/// (maxrecLevel = 2). The program goes through the analysis-gated code
/// generator: an error-bearing program would abort figure regeneration
/// instead of printing broken pseudocode.
pub fn fig4_program() -> String {
    let program = synthesize_quadtree_program(2);
    let (rendered, _diags) =
        wsn_analyze::render_figure4_checked(&program, wsn_analyze::Enforcement::DenyErrors)
            .expect("the synthesized Figure-4 program analyzes clean");
    format!("Figure 4: synthesized program specification\n\n{rendered}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_paper_labels() {
        let s = fig2_quadtree();
        assert!(s.contains("Level 2:  0"), "{s}");
        assert!(s.contains("Level 1:  0   4   8  12"), "{s}");
        assert!(s.contains("{0, 4, 8, 12} -> 0"), "{s}");
        assert!(s.contains("{12, 13, 14, 15} -> 12"), "{s}");
    }

    #[test]
    fn fig3_matches_paper_grid() {
        let s = fig3_mapping();
        assert!(s.contains(" 0  1 |  4  5"), "{s}");
        assert!(s.contains("10 11 | 14 15"), "{s}");
        assert!(s.contains("root (level 2)   -> location 0"));
        assert!(s.contains("locations 0, 4, 8, 12"));
    }

    #[test]
    fn fig4_contains_all_clauses() {
        let s = fig4_program();
        assert_eq!(s.matches("Condition :").count(), 4);
        assert!(s.contains("exfiltrate"));
    }
}
