//! The certified zero-copy hot path under measurement.
//!
//! The frame certificate (`wsn-analyze` pass 7) licenses a runtime
//! configuration where every application payload travels as a fixed
//! [`wsn_net::FrameBuf`] and the steady-state event loop never touches
//! the heap. This module is the measurement side of that claim:
//!
//! * [`steady_state_hotpath`] drives a seeded ping-pong mission on a
//!   framed [`PhysicalRuntime`] — warm-up rounds to size every table,
//!   then one measured round whose send→stamp→deliver→dispatch cycles
//!   are counted against the process allocator;
//! * [`allocprobe`] is the hook a counting `#[global_allocator]`
//!   registers (the `wsn-lint` binary and the `alloc_gate` integration
//!   test install one; the library itself stays `forbid(unsafe_code)`);
//! * the wall-clock per-event figure feeds the `BENCH_topoquery.json`
//!   perf baseline, so a per-event cost regression trips the same 10%
//!   gate as a latency regression.

use wsn_core::{GridCoord, NodeApi, NodeProgram};
use wsn_net::{DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::{FramedProgram, PhysicalRuntime};

pub mod allocprobe {
    //! Registration point for a counting allocator.
    //!
    //! The library cannot own a `#[global_allocator]` (workspace crates
    //! forbid `unsafe`), so binaries and integration tests that *do*
    //! install one register a counter callback here; the harness reads
    //! it around the measured window. Without a probe the harness still
    //! runs — allocation columns come back unmeasured.

    use std::sync::OnceLock;

    static PROBE: OnceLock<fn() -> u64> = OnceLock::new();

    /// Registers the allocation counter. First caller wins; later calls
    /// are ignored (the probe is process-global, like the allocator).
    pub fn install(probe: fn() -> u64) {
        let _ = PROBE.set(probe);
    }

    /// Total heap allocations so far, when a probe is installed.
    pub fn allocations() -> Option<u64> {
        PROBE.get().map(|f| f())
    }
}

/// A two-endpoint ping-pong over the emulated multi-hop network: the
/// origin leader opens a volley, each endpoint echoes the counter back
/// until `2 · volleys` sends have happened. Every echo crosses the full
/// diagonal of the grid hop by hop, so one round exercises the complete
/// send→stamp→forward→deliver→dispatch cycle many times with no
/// application-side work to muddy the measurement.
pub struct HotpathProgram {
    origin: GridCoord,
    peer: GridCoord,
    volleys: u64,
}

impl HotpathProgram {
    /// Ping-pong between the grid's opposite corners.
    pub fn corners(side: u32, volleys: u64) -> Self {
        HotpathProgram {
            origin: GridCoord::new(0, 0),
            peer: GridCoord::new(side - 1, side - 1),
            volleys,
        }
    }
}

impl NodeProgram<u64> for HotpathProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<u64>) {
        if api.coord() == self.origin {
            api.send(self.peer, 1, 1);
        }
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<u64>, _from: GridCoord, count: u64) {
        if count >= 2 * self.volleys {
            return;
        }
        let back = if api.coord() == self.origin {
            self.peer
        } else {
            self.origin
        };
        api.send(back, 1, count + 1);
    }
}

/// What one steady-state measurement produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotpathReport {
    /// Grid side of the framed deployment.
    pub side: u32,
    /// Volleys in the measured round.
    pub volleys: u64,
    /// Kernel events dispatched inside the measured round.
    pub events: u64,
    /// Wall-clock nanoseconds of the measured round.
    pub wall_ns: u64,
    /// Heap allocations inside the measured round, when a counting
    /// allocator probe is installed (see [`allocprobe`]).
    pub allocations: Option<u64>,
}

impl HotpathReport {
    /// Allocations per dispatched event; `None` without a probe.
    pub fn allocs_per_event(&self) -> Option<f64> {
        self.allocations
            .map(|a| a as f64 / (self.events.max(1)) as f64)
    }

    /// Wall-clock nanoseconds per dispatched event.
    pub fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / (self.events.max(1)) as f64
    }
}

/// Builds the seeded framed deployment (one node per cell, ideal links,
/// causal tracing and telemetry both off — the production hot-path
/// configuration the frame certificate describes), runs `warmup_rounds`
/// ping-pong rounds to bring every buffer, table, and queue to its
/// steady-state capacity, then measures one more round.
///
/// The per-shard flight recorder rides along armed (cut level 1,
/// preallocated rings): the no-alloc contract explicitly covers
/// recording, so the alloc gate measures the hot path *with* its
/// post-mortem instrumentation, not a stripped build.
///
/// Requires [`wsn_core::framed_payload_fits`]`(side)` — the harness
/// refuses to drive the framed codec outside its certified envelope.
pub fn steady_state_hotpath(side: u32, volleys: u64, warmup_rounds: u32) -> HotpathReport {
    steady_state_hotpath_with(side, volleys, warmup_rounds, false)
}

/// [`steady_state_hotpath`] with the telemetry registry switchable: the
/// `telemetry` variant runs the same mission with every counter, gauge,
/// and kernel metric live, so the bare-vs-instrumented throughput ratio
/// is the `telemetry_overhead_pct` column the `--obs-gate` bounds. (The
/// instrumented round is *allowed* to allocate — registry series are
/// heap-keyed; only the bare configuration carries the no-alloc claim.)
pub fn steady_state_hotpath_with(
    side: u32,
    volleys: u64,
    warmup_rounds: u32,
    telemetry: bool,
) -> HotpathReport {
    assert!(
        wsn_core::framed_payload_fits(side),
        "side {side} is outside the certified frame envelope"
    );
    let deployment = DeploymentSpec::per_cell(side, 1).generate(5);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut rt: PhysicalRuntime<wsn_net::FrameBuf> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        5,
        |c| f64::from(c.col + c.row),
    );
    if telemetry {
        rt.enable_telemetry(false);
    }
    if side.is_power_of_two() && side >= 2 {
        rt.enable_flight_recorder(1, 256);
    }
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| {
        Box::new(FramedProgram::new(HotpathProgram::corners(side, volleys)))
    });
    for _ in 0..warmup_rounds.max(1) {
        let app = rt.run_application();
        assert!(app.messages >= 2 * volleys, "volley did not complete");
        rt.prune_dedup_state();
        rt.clear_exfiltrated();
    }
    let events_before = rt.events_total();
    let allocs_before = allocprobe::allocations();
    let started = std::time::Instant::now();
    let app = rt.run_application();
    let wall_ns = started.elapsed().as_nanos() as u64;
    let allocs_after = allocprobe::allocations();
    assert!(
        app.messages >= 2 * volleys,
        "measured volley did not complete"
    );
    HotpathReport {
        side,
        volleys,
        events: rt.events_total() - events_before,
        wall_ns,
        allocations: allocs_before
            .zip(allocs_after)
            .map(|(before, after)| after - before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reaches_steady_state_and_reports_per_event_cost() {
        let report = steady_state_hotpath(8, 50, 2);
        assert_eq!(report.side, 8);
        // 100 logical sends, each crossing the 14-hop diagonal.
        assert!(report.events > 1000, "events: {}", report.events);
        assert!(report.ns_per_event() > 0.0);
        // No probe installed in the unit suite: unmeasured, not zero.
        assert_eq!(report.allocations, None);
        assert_eq!(report.allocs_per_event(), None);
    }

    #[test]
    fn hotpath_refuses_uncertified_sides() {
        let caught = std::panic::catch_unwind(|| steady_state_hotpath(32, 1, 1));
        assert!(caught.is_err(), "side 32 exceeds the frame envelope");
    }

    #[test]
    fn instrumented_variant_dispatches_identically() {
        // Telemetry must observe the run, not perturb it: the
        // instrumented mission dispatches exactly the events the bare
        // one does, so the overhead ratio compares equal workloads.
        let bare = steady_state_hotpath_with(4, 10, 1, false);
        let instr = steady_state_hotpath_with(4, 10, 1, true);
        assert_eq!(bare.events, instr.events);
    }

    #[test]
    fn volleys_terminate_exactly() {
        let mut report = steady_state_hotpath(4, 10, 1);
        // Determinism: the same seeded mission dispatches the same
        // number of events every time.
        for _ in 0..2 {
            let again = steady_state_hotpath(4, 10, 1);
            assert_eq!(again.events, report.events);
            report = again;
        }
    }
}
