//! Parallel parameter sweeps.
//!
//! Every simulation is single-threaded and deterministic, so independent
//! trials parallelize perfectly: [`parallel_map`] fans a work list over
//! the machine's cores with `std::thread::scope` and returns results in
//! input order. Determinism is preserved — ordering comes from the input
//! position, not from completion time.

/// Applies `f` to every item on a pool of scoped threads sized to the
/// machine, returning results in input order.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    // `available_parallelism` can fail (containers with no visible CPU
    // topology); report that as 0 and let the explicit-count path clamp.
    let probed = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    parallel_map_with(items, probed, f)
}

/// [`parallel_map`] with an explicit worker count. A count of 0 (the
/// "probe failed" sentinel) degrades to 1 — the sweep still completes,
/// just without parallelism — and counts beyond the item total are
/// clamped so no worker is spawned idle.
pub fn parallel_map_with<I, O, F>(items: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let chunk_size = n.div_ceil(workers);

    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(items);
        items = rest;
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100u64).collect(), |x| x * x);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    fn zero_workers_degrades_to_one() {
        // The available_parallelism error path reports 0 workers; the
        // sweep must still complete (serially) instead of dividing by 0.
        let out = parallel_map_with((0..10u32).collect(), 0, |x| x + 1);
        assert_eq!(out, (1..=10u32).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_remainder_is_not_dropped() {
        // 10 items over 4 workers -> chunks of 3,3,3,1; the short tail
        // chunk must survive with order intact.
        let out = parallel_map_with((0..10u64).collect(), 4, |x| x * 2);
        assert_eq!(out, (0..10u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_items_clamps() {
        let out = parallel_map_with(vec![1u8, 2, 3], 64, |x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_simulation_trials_match_sequential() {
        // Determinism across the parallel boundary: each seed's simulation
        // result is identical whether run on the pool or inline.
        let seeds: Vec<u64> = (0..8).collect();
        let run = |seed: u64| {
            let field = crate::blob_field(4, seed);
            let out = wsn_topoquery::run_dandc_vm(
                4,
                &field,
                5.0,
                seed,
                wsn_topoquery::Implementation::Native,
            );
            (
                out.metrics.total_energy,
                out.summary.map(|s| s.region_count()),
            )
        };
        let parallel = parallel_map(seeds.clone(), run);
        let sequential: Vec<_> = seeds.into_iter().map(run).collect();
        assert_eq!(parallel, sequential);
    }
}
