//! Parallel parameter sweeps.
//!
//! Every simulation is single-threaded and deterministic, so independent
//! trials parallelize perfectly: [`parallel_map`] fans a work list over
//! the machine's cores with `std::thread::scope` and returns results in
//! input order. Determinism is preserved — ordering comes from the input
//! position, not from completion time.

/// Applies `f` to every item on a pool of scoped threads, returning
/// results in input order.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let chunk_size = n.div_ceil(workers);

    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(items);
        items = rest;
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100u64).collect(), |x| x * x);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_simulation_trials_match_sequential() {
        // Determinism across the parallel boundary: each seed's simulation
        // result is identical whether run on the pool or inline.
        let seeds: Vec<u64> = (0..8).collect();
        let run = |seed: u64| {
            let field = crate::blob_field(4, seed);
            let out = wsn_topoquery::run_dandc_vm(
                4,
                &field,
                5.0,
                seed,
                wsn_topoquery::Implementation::Native,
            );
            (
                out.metrics.total_energy,
                out.summary.map(|s| s.region_count()),
            )
        };
        let parallel = parallel_map(seeds.clone(), run);
        let sequential: Vec<_> = seeds.into_iter().map(run).collect();
        assert_eq!(parallel, sequential);
    }
}
