//! # wsn-bench — experiment harness
//!
//! Shared plumbing for the experiment regenerator binaries (one per figure
//! or quantitative claim; see DESIGN.md §5 for the index) and the Criterion
//! benches. Binaries print their tables as aligned text; pass `--csv` to a
//! binary to get CSV instead, so EXPERIMENTS.md can quote either.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod figures;
pub mod hotpath;
pub mod lint;
pub mod parallel;
pub mod perfbase;
pub mod table;

pub use experiments::*;
pub use figures::{fig2_quadtree, fig3_mapping, fig4_program};
pub use parallel::parallel_map;
pub use table::Table;

/// Prints a table as text, or CSV when the process was invoked with
/// `--csv`.
pub fn emit(table: &Table) {
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}
