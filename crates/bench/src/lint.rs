//! Shared logic of the `wsn-lint` binary: assemble the paper's artifacts
//! (or decode serialized ones), run the static analyzer, and render the
//! verdict for terminals, JSON consumers, or the CI gate. Also home of
//! the certification entry points: symbolic bound derivation
//! (`--certify`) and measured-trace conformance (`--conform`), plus the
//! model-fidelity gate `run_all` executes after the experiments.

use crate::experiments::{record_end_to_end_trace_with, RunEngine};
use crate::hotpath::HotpathReport;
use wsn_analyze::{
    analyze_deployment, analyze_frames, analyze_program, analyze_shards, certify,
    check_conformance, check_deadlock, check_shard_accounting, check_shard_conformance, CertConfig,
    Certificate, Diagnostics, FrameCertificate, ReachConfig, ShardCertificate,
};
use wsn_core::{Hierarchy, ShardPlan};
use wsn_obs::{Json, TraceDocument};
use wsn_synth::{
    quadtree_task_graph, synthesize_quadtree_program, Expr, Mapper, QuadTree, QuadrantMapper,
};

/// The paper's quad-tree deployment at hierarchy depth `depth`: the task
/// graph for a `2^depth`-sided grid, the Figure-2/3 quadrant mapping, and
/// the synthesized Figure-4 program.
pub fn paper_deployment(depth: u8) -> (QuadTree, wsn_synth::Mapping, wsn_synth::GuardedProgram) {
    let side = 2u32.pow(u32::from(depth));
    let qt = quadtree_task_graph(side, &|l| u64::from(l) + 1, &|l| u64::from(l));
    let mapping = QuadrantMapper.map(&qt);
    let program = synthesize_quadtree_program(depth);
    (qt, mapping, program)
}

/// Lints the paper's full deployment at `depth`: program dynamics, graph
/// and mapping structure, and cross-node deadlock.
pub fn lint_figure4(depth: u8) -> Diagnostics {
    let (qt, mapping, program) = paper_deployment(depth);
    analyze_deployment(&qt, &mapping, &program)
}

/// Lints a serialized program (the [`wsn_analyze::model_json`] encoding).
/// The program is analyzed on its own, then — when it declares a
/// hierarchy (`max_level ≥ 1`) — its quorums are checked for deadlock
/// against the paper's quadrant mapping at the matching grid side.
pub fn lint_program_text(text: &str) -> Result<Diagnostics, String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let program = wsn_analyze::program_from_json(&json)?;
    let mut diags = analyze_program(&program);
    if program.max_level >= 1 && program.max_level <= 5 {
        let side = 2u32.pow(u32::from(program.max_level));
        let qt = quadtree_task_graph(side, &|l| u64::from(l) + 1, &|l| u64::from(l));
        let mapping = QuadrantMapper.map(&qt);
        diags.extend(check_deadlock(&qt, &mapping, &program));
        diags.sort();
    }
    Ok(diags)
}

/// The Figure-4 program at `depth`, in the JSON program model (used to
/// produce lintable fixtures and to feed external tools).
pub fn figure4_program_json(depth: u8) -> String {
    wsn_analyze::program_to_json(&synthesize_quadtree_program(depth)).render()
}

/// The CI gate: every paper deployment that the experiments regenerate
/// must analyze clean of errors. Returns the per-depth reports on
/// failure.
pub fn check_gate() -> Result<(), Vec<(u8, Diagnostics)>> {
    let mut failures = Vec::new();
    for depth in 1..=3 {
        let diags = lint_figure4(depth);
        if diags.has_errors() {
            failures.push((depth, diags));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Sanity anchor for the gate: the depth the paper's figures use.
pub fn paper_depth() -> u8 {
    let h = Hierarchy::new(4);
    h.max_level()
}

/// Certifies the paper's Figure-4 program at hierarchy depth `depth`
/// under the §3.2 uniform cost model: symbolic per-quantity bounds,
/// evaluated at side `2^depth`.
pub fn certify_figure4(depth: u8) -> (Certificate, Diagnostics) {
    let side = 2u32.pow(u32::from(depth));
    let program = synthesize_quadtree_program(depth);
    certify(&program, &CertConfig::paper(side))
}

/// Checks a serialized `wsn-obs` JSONL trace against the Figure-4
/// certificate at the trace's own grid side. Returns the certificate
/// (for rendering) and the combined certification + conformance report.
pub fn conform_trace_text(text: &str) -> Result<(Certificate, Diagnostics), String> {
    let doc = TraceDocument::from_jsonl(text).map_err(|e| e.to_string())?;
    let side = doc
        .meta
        .as_ref()
        .map(|m| m.grid)
        .ok_or("trace has no meta record, so its grid side is unknown")?;
    let side = u32::try_from(side).map_err(|_| format!("absurd grid side {side}"))?;
    if side < 2 || !side.is_power_of_two() {
        return Err(format!(
            "trace grid side {side} is not a power of two ≥ 2; the quad-tree certifier \
             does not apply"
        ));
    }
    let depth = u8::try_from(side.trailing_zeros()).map_err(|_| "depth overflow".to_owned())?;
    let (cert, mut diags) = certify_figure4(depth);
    diags.extend(check_conformance(&cert, &doc));
    diags.sort();
    Ok((cert, diags))
}

/// The model-fidelity gate `run_all` finishes with: re-record the seeded
/// EXP-9 uniform-field run on the emulated physical network at each
/// side, certify the Figure-4 program, and demand the measurements land
/// inside every certified bound. Returns the per-side reports on
/// failure.
pub fn conformance_gate(sides: &[u32]) -> Result<usize, Vec<(u32, Diagnostics)>> {
    let mut checked = 0;
    let mut failures = Vec::new();
    for &side in sides {
        let depth = u8::try_from(side.trailing_zeros()).expect("side fits");
        let doc = crate::experiments::record_model_fidelity_trace(side, 3, 5, 1.0, 1.0);
        let (cert, mut diags) = certify_figure4(depth);
        diags.extend(check_conformance(&cert, &doc));
        diags.sort();
        checked += cert.bounds.len();
        if diags.has_errors() {
            failures.push((side, diags));
        }
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

/// Validated [`ShardPlan`] for a depth-`depth` paper deployment — a
/// friendly error instead of a panic on absurd cut levels.
fn shard_plan(depth: u8, cut: u8) -> Result<ShardPlan, String> {
    if cut > depth {
        return Err(format!(
            "cut level {cut} exceeds the hierarchy depth {depth} (shards are level-L \
             quadrants, so L must be 0..={depth})"
        ));
    }
    Ok(ShardPlan::new(2u32.pow(u32::from(depth)), cut))
}

/// The Figure-4 program with the planted static shard leak the
/// `--mutate-shard-leak` CI check uses: every cell also addresses the
/// global root directly at boot — reachable, same-slot (`SI002`) and,
/// once there is more than one shard, off the region boundary (`SI003`).
pub fn leak_mutated_figure4(depth: u8) -> wsn_synth::GuardedProgram {
    let mut program = synthesize_quadtree_program(depth);
    program.rules[0]
        .actions
        .push(wsn_synth::Action::SendSummaryToLeader {
            group_level: Expr::var("maxrecLevel"),
            data_level: Expr::Int(0),
        });
    program
}

/// Runs the shard-interference analyzer on the paper's Figure-4 program
/// at hierarchy depth `depth` under the level-`cut` quadrant plan.
/// `mutate` plants the [`leak_mutated_figure4`] defect first.
pub fn shard_check_figure4(
    depth: u8,
    cut: u8,
    mutate: bool,
) -> Result<(Option<ShardCertificate>, Diagnostics), String> {
    let plan = shard_plan(depth, cut)?;
    let program = if mutate {
        leak_mutated_figure4(depth)
    } else {
        synthesize_quadtree_program(depth)
    };
    Ok(analyze_shards(&program, &plan, ReachConfig::default()))
}

/// Shard-checks a serialized program (the [`wsn_analyze::model_json`]
/// encoding) under the quadrant plan at the program's own grid side.
pub fn shard_check_program_text(
    text: &str,
    cut: u8,
) -> Result<(Option<ShardCertificate>, Diagnostics), String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let program = wsn_analyze::program_from_json(&json)?;
    if program.max_level < 1 || program.max_level > 5 {
        return Err(format!(
            "program declares maxrecLevel {}; the shard analyzer needs a hierarchy \
             (1..=5)",
            program.max_level
        ));
    }
    let plan = shard_plan(program.max_level, cut)?;
    Ok(analyze_shards(&program, &plan, ReachConfig::default()))
}

/// Replays a serialized `wsn-obs` JSONL causal trace against the
/// Figure-4 shard certificate at the trace's own grid side (`TC009`):
/// every observed cross-shard delivery hop must be a certified boundary
/// edge of the cut-`cut` plan.
pub fn shard_conform_trace_text(
    text: &str,
    cut: u8,
) -> Result<(ShardCertificate, Diagnostics), String> {
    let doc = TraceDocument::from_jsonl(text).map_err(|e| e.to_string())?;
    let side = doc
        .meta
        .as_ref()
        .map(|m| m.grid)
        .ok_or("trace has no meta record, so its grid side is unknown")?;
    let side = u32::try_from(side).map_err(|_| format!("absurd grid side {side}"))?;
    if side < 2 || !side.is_power_of_two() {
        return Err(format!(
            "trace grid side {side} is not a power of two ≥ 2; the quad-tree shard \
             plan does not apply"
        ));
    }
    let depth = u8::try_from(side.trailing_zeros()).map_err(|_| "depth overflow".to_owned())?;
    let (cert, mut diags) = shard_check_figure4(depth, cut, false)?;
    let cert = cert.ok_or_else(|| {
        format!(
            "the Figure-4 program failed to certify at depth {depth} cut {cut}:\n{}",
            diags.render_text()
        )
    })?;
    diags.extend(check_shard_conformance(&cert, &doc));
    diags.sort();
    Ok((cert, diags))
}

/// The TC010 driver behind `wsn-lint --shard-metrics`: certify the
/// Figure-4 shard plan at `(depth, cut)`, re-record the seeded
/// uniform-field run on the sharded engine with per-shard telemetry
/// merged into the trace, and reconcile the `shard=`-labeled counters
/// against the certificate and the kernel's own dispatch total.
///
/// `skew` arms the runtime's undercounting tap (the
/// `--mutate-shard-skew` planted defect): shard 0 silently drops one
/// event per barrier window from its counter, which TC010 must catch —
/// the CI inverted-mutation step.
pub fn shard_metrics_figure4(
    depth: u8,
    cut: u8,
    skew: bool,
) -> Result<(ShardCertificate, Diagnostics), String> {
    let (cert, mut diags) = shard_check_figure4(depth, cut, false)?;
    let cert = cert.ok_or_else(|| {
        format!(
            "the Figure-4 program failed to certify at depth {depth} cut {cut}:\n{}",
            diags.render_text()
        )
    })?;
    let side = 2u32.pow(u32::from(depth));
    let doc = crate::experiments::record_shard_metrics_trace(side, 3, 5, cut, skew);
    diags.extend(check_shard_accounting(&cert, &doc));
    diags.sort();
    Ok((cert, diags))
}

/// Best-of-`rounds` steady-state hot-path run (lowest wall clock wins —
/// the standard way to cut scheduler noise out of a same-machine ratio).
/// Measured telemetry overhead: percent slowdown of the steady-state
/// per-event wall cost with the full registry live versus the bare
/// disabled-registry configuration (whose instrument calls reduce to one
/// `Option` check — the provably-cheap disabled path). Median of
/// `rounds` sandwich samples (bare → instrumented → bare, the bare cost
/// centered on the instrumented round so linear machine drift divides
/// out); negative noise clamps to `0.0`.
pub fn telemetry_overhead_pct(side: u32, volleys: u64, rounds: u32) -> f64 {
    let mut ratios: Vec<f64> = Vec::new();
    for _ in 0..rounds.max(1) {
        let before = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, false);
        let instrumented = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, true);
        let after = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, false);
        let bare_ns = (before.ns_per_event() + after.ns_per_event()) / 2.0;
        ratios.push(instrumented.ns_per_event() / bare_ns);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    ((ratios[ratios.len() / 2] - 1.0) * 100.0).max(0.0)
}

/// The live-export overhead gate behind `wsn-lint --obs-gate`: the
/// instrumented steady-state hot path (every counter, gauge, and kernel
/// metric live) must stay within `threshold_pct` percent of the bare
/// run's per-event cost, judged by the median of five interleaved
/// bare/instrumented pairs on the same machine. Returns the rendered
/// comparison, or it as an error when the bound is exceeded.
pub fn obs_gate(side: u32, volleys: u64, threshold_pct: f64) -> Result<String, String> {
    // Five sandwich samples, judged by the *median* ratio. Each sample
    // measures bare → instrumented → bare and centers the bare cost on
    // the instrumented round's position in time, so linear machine
    // drift (thermal, scheduler, cache warmup) divides out of the
    // ratio; the median then discards samples that straddled an abrupt
    // load spike. A min-of-each-column estimator has neither defense
    // and reports phantom overhead on a busy host.
    let mut samples: Vec<(f64, HotpathReport)> = Vec::new();
    for _ in 0..5 {
        let before = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, false);
        let instrumented = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, true);
        let after = crate::hotpath::steady_state_hotpath_with(side, volleys, 1, false);
        if before.events != instrumented.events {
            return Err(format!(
                "telemetry perturbed the run: {} events instrumented vs {} bare",
                instrumented.events, before.events
            ));
        }
        let bare_ns = (before.ns_per_event() + after.ns_per_event()) / 2.0;
        samples.push((bare_ns, instrumented));
    }
    samples.sort_by(|x, y| {
        let rx = x.1.ns_per_event() / x.0;
        let ry = y.1.ns_per_event() / y.0;
        rx.partial_cmp(&ry).expect("finite ratios")
    });
    let (bare_ns, instrumented) = samples[samples.len() / 2];
    let overhead = (((instrumented.ns_per_event() - bare_ns) / bare_ns) * 100.0).max(0.0);
    let report = format!(
        "obs gate: side {side}, {volleys} volleys, {} events in the measured round\n\
         \x20 bare:         {:>8.1} ns/event ({:.0} events/sec)\n\
         \x20 instrumented: {:>8.1} ns/event ({:.0} events/sec)\n\
         \x20 telemetry overhead: {overhead:.1}% (bound {threshold_pct}%)\n",
        instrumented.events,
        bare_ns,
        1e9 / bare_ns,
        instrumented.ns_per_event(),
        1e9 / instrumented.ns_per_event(),
    );
    if overhead > threshold_pct {
        Err(format!(
            "{report}obs gate: telemetry overhead {overhead:.1}% exceeds the {threshold_pct}% bound"
        ))
    } else {
        Ok(report)
    }
}

/// The shard CI gate: the paper deployments must shard-check clean and
/// their seeded causal traces must replay inside the certified boundary
/// (`TC009`) at every listed `(depth, cut)`. Returns the number of
/// certificates checked, or the failing reports.
#[allow(clippy::type_complexity)]
pub fn shard_gate(configs: &[(u8, u8)]) -> Result<usize, Vec<(u8, u8, Diagnostics)>> {
    let mut checked = 0;
    let mut failures = Vec::new();
    let mut traces: std::collections::BTreeMap<u8, String> = std::collections::BTreeMap::new();
    for &(depth, cut) in configs {
        let (cert, mut diags) = match shard_check_figure4(depth, cut, false) {
            Ok(r) => r,
            Err(e) => {
                let mut d = Diagnostics::new();
                d.push(wsn_analyze::Diagnostic::error(
                    wsn_analyze::Code::CC001,
                    wsn_analyze::Span::Program,
                    e,
                ));
                failures.push((depth, cut, d));
                continue;
            }
        };
        if let Some(cert) = cert {
            let side = 2u32.pow(u32::from(depth));
            let text = traces.entry(depth).or_insert_with(|| {
                crate::experiments::record_model_fidelity_trace(side, 3, 5, 1.0, 1.0).to_jsonl()
            });
            let doc = TraceDocument::from_jsonl(text).expect("own trace round-trips");
            diags.extend(check_shard_conformance(&cert, &doc));
            diags.sort();
            checked += 1;
        }
        if diags.has_errors() {
            failures.push((depth, cut, diags));
        }
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

/// The Figure-4 program in a deployment the fixed frame cannot carry:
/// the faithful depth-5 synthesis analyzed at side 32, where the root
/// exfiltration's full-boundary summary (5624 bytes) exceeds the
/// certified payload capacity — the `--mutate-payload-overflow` defect
/// `FL001` must catch. Unlike the other planted mutations this one is a
/// *deployment* overflow, not a program edit: every payload bound is a
/// closed form in the extent side, so scaling the deployment past the
/// frame envelope is exactly how a real overflow would arrive.
pub fn overflow_mutated_figure4() -> (wsn_synth::GuardedProgram, u32) {
    (synthesize_quadtree_program(5), 32)
}

/// Runs the frame-layout and allocation certifier (`wsn-analyze` pass 7,
/// `FL001`–`FL005` / `AL001`–`AL003`) on the paper's Figure-4 program at
/// hierarchy depth `depth`. `mutate` analyzes the
/// [`overflow_mutated_figure4`] deployment instead — the planted payload
/// overflow the CI inverted check proves the pass catches.
pub fn frame_check_figure4(depth: u8, mutate: bool) -> (Option<FrameCertificate>, Diagnostics) {
    let (program, side) = if mutate {
        overflow_mutated_figure4()
    } else {
        (
            synthesize_quadtree_program(depth),
            2u32.pow(u32::from(depth)),
        )
    };
    analyze_frames(&program, side, ReachConfig::default())
}

/// The no-alloc gate behind `wsn-lint --alloc-gate`: the frame
/// certificate must hold at the gate side, and the measured steady-state
/// round of the framed ping-pong mission must dispatch its events with
/// **zero** heap allocations (when a counting allocator is installed —
/// see [`crate::hotpath::allocprobe`]; without one the run still checks
/// the certificate but reports the allocation column unmeasured).
/// Returns the rendered report, or what went over budget.
pub fn alloc_gate(side: u32, volleys: u64) -> Result<String, String> {
    let depth = u8::try_from(side.trailing_zeros()).expect("side fits");
    let (cert, diags) = frame_check_figure4(depth, false);
    if cert.is_none() || diags.has_errors() {
        return Err(format!(
            "frame certificate refused at side {side}:\n{}",
            diags.render_text()
        ));
    }
    let report = crate::hotpath::steady_state_hotpath(side, volleys, 2);
    let mut out = format!(
        "alloc gate: side {side}, {volleys} volleys, {} events in the measured round\n",
        report.events
    );
    match report.allocations {
        Some(0) => {
            out.push_str("  steady-state allocations: 0 (zero-copy hot path holds)\n");
            Ok(out)
        }
        Some(n) => Err(format!(
            "{out}  steady-state allocations: {n} ({:.4}/event) — the certified hot path \
             must not touch the heap",
            report.allocs_per_event().unwrap_or(0.0)
        )),
        None => {
            out.push_str(
                "  steady-state allocations: unmeasured (no counting allocator installed)\n",
            );
            Ok(out)
        }
    }
}

/// Certificate-gated engine selection: the sharded kernel engages only
/// when the Figure-4 program shard-checks clean (no SI/CC errors and a
/// certificate was produced) under the level-`cut` quadrant plan at the
/// deployment's own depth; otherwise the run falls back to the
/// sequential reference kernel. Returns the selected engine together
/// with the analyzer's report. `mutate` plants the
/// [`leak_mutated_figure4`] defect first — the fallback path CI proves.
pub fn certified_engine(
    side: u32,
    cut: u8,
    workers: usize,
    mutate: bool,
) -> (RunEngine, Diagnostics) {
    let sequential = RunEngine::Sequential;
    if side < 2 || !side.is_power_of_two() {
        let mut d = Diagnostics::new();
        d.push(wsn_analyze::Diagnostic::error(
            wsn_analyze::Code::CC001,
            wsn_analyze::Span::Program,
            format!("side {side} is not a power of two; no quad-tree shard plan"),
        ));
        return (sequential, d);
    }
    let depth = side.trailing_zeros() as u8;
    match shard_check_figure4(depth, cut, mutate) {
        Ok((Some(_), diags)) if !diags.has_errors() => (
            RunEngine::Sharded {
                cut_level: u32::from(cut),
                workers,
            },
            diags,
        ),
        Ok((_, diags)) => (sequential, diags),
        Err(e) => {
            let mut d = Diagnostics::new();
            d.push(wsn_analyze::Diagnostic::error(
                wsn_analyze::Code::CC001,
                wsn_analyze::Span::Program,
                e,
            ));
            (sequential, d)
        }
    }
}

/// The parallel CI gate behind `wsn-lint --parallel-gate`:
///
/// 1. certificate gating — the sharded engine must engage on the clean
///    Figure-4 program and must *refuse* (fall back to sequential) on the
///    leak-mutated program;
/// 2. the differential matrix at CLI scale — for each (side, cut, seed),
///    the sharded run's JSONL trace (dispatch log + causal log inside it)
///    and its `RunMetrics` must be **byte-identical** to the sequential
///    reference.
///
/// Returns the number of differential comparisons performed, or a
/// description of the first divergence. The `WSN_SHARD_MISORDER`
/// sabotage knob (a deliberately misordered boundary merge) must make
/// this gate fail — the CI inverted-mutation step.
pub fn parallel_gate(workers: usize) -> Result<usize, String> {
    let (mutated, _) = certified_engine(4, 1, workers, true);
    if mutated != RunEngine::Sequential {
        return Err(
            "certificate gating is broken: the leak-mutated program still selected the \
             sharded engine"
                .into(),
        );
    }
    let mut checked = 0;
    for &(side, cut) in &[(4u32, 1u8), (4, 2), (8, 1), (8, 2)] {
        let (engine, diags) = certified_engine(side, cut, workers, false);
        if engine == RunEngine::Sequential {
            return Err(format!(
                "side {side} cut {cut}: shard certificate not clean, sharded kernel refused \
                 to engage:\n{}",
                diags.render_text()
            ));
        }
        for seed in [5u64, 6] {
            let (seq_doc, seq_metrics) =
                record_end_to_end_trace_with(side, 3, seed, true, RunEngine::Sequential);
            let (par_doc, par_metrics) = record_end_to_end_trace_with(side, 3, seed, true, engine);
            if seq_doc.to_jsonl() != par_doc.to_jsonl() {
                return Err(format!(
                    "side {side} cut {cut} seed {seed}: sharded trace diverged from the \
                     sequential reference"
                ));
            }
            if format!("{seq_metrics:?}") != format!("{par_metrics:?}") {
                return Err(format!(
                    "side {side} cut {cut} seed {seed}: sharded RunMetrics diverged: \
                     {par_metrics:?} vs {seq_metrics:?}"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_analyze::Code;

    #[test]
    fn gate_passes_on_the_paper_artifacts() {
        assert!(check_gate().is_ok());
        assert_eq!(paper_depth(), 2);
    }

    #[test]
    fn figure4_lints_clean_and_round_trips_through_the_cli_path() {
        let d = lint_figure4(2);
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
        let text = figure4_program_json(2);
        let d = lint_program_text(&text).unwrap();
        assert_eq!(d.error_count(), 0, "{}", d.render_text());
        // The paper's scan-order overlap is still visible through JSON.
        assert!(d.has_code(Code::RD002), "{}", d.render_text());
    }

    #[test]
    fn garbage_input_is_a_decode_error_not_a_panic() {
        assert!(lint_program_text("{nope").is_err());
        assert!(lint_program_text("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn shard_check_certifies_the_paper_deployments() {
        for (depth, cut) in [(2u8, 1u8), (2, 2), (3, 1), (3, 2)] {
            let (cert, diags) = shard_check_figure4(depth, cut, false).unwrap();
            assert_eq!(
                diags.error_count(),
                0,
                "depth {depth} cut {cut}: {}",
                diags.render_text()
            );
            let cert = cert.expect("certificate");
            assert_eq!(cert.cut_level, cut);
            // And through the serialized-program path too.
            let (cert2, _) = shard_check_program_text(&figure4_program_json(depth), cut).unwrap();
            assert_eq!(cert2.unwrap(), cert);
        }
        assert!(shard_check_figure4(2, 3, false).is_err());
    }

    #[test]
    fn shard_leak_mutation_trips_the_static_check() {
        let (_, diags) = shard_check_figure4(2, 1, true).unwrap();
        assert!(diags.has_code(Code::SI003), "{}", diags.render_text());
        assert!(diags.has_errors());
    }

    #[test]
    fn shard_conformance_holds_on_the_seeded_trace_and_trips_on_the_leak() {
        let faithful = crate::experiments::record_model_fidelity_trace(4, 3, 5, 1.0, 1.0);
        let (cert, diags) = shard_conform_trace_text(&faithful.to_jsonl(), 1).unwrap();
        assert_eq!(cert.cross_shard_messages, 3);
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());

        let leak = crate::experiments::record_shard_leak_trace(4, 3, 5);
        let (_, diags) = shard_conform_trace_text(&leak.to_jsonl(), 1).unwrap();
        assert!(diags.has_code(Code::TC009), "{}", diags.render_text());
    }

    #[test]
    fn frame_check_certifies_the_paper_depths() {
        for depth in [2u8, 3] {
            let (cert, diags) = frame_check_figure4(depth, false);
            assert_eq!(
                diags.error_count(),
                0,
                "depth {depth}: {}",
                diags.render_text()
            );
            let cert = cert.expect("certificate");
            assert!(cert.fits());
            assert_eq!(cert.side, 2u32.pow(u32::from(depth)));
        }
    }

    #[test]
    fn payload_overflow_mutation_trips_fl001() {
        let (cert, diags) = frame_check_figure4(2, true);
        assert!(cert.is_none());
        assert!(diags.has_code(Code::FL001), "{}", diags.render_text());
        assert!(diags.has_errors());
    }

    #[test]
    fn alloc_gate_runs_unprobed_and_refuses_overflowing_sides() {
        // Without a counting allocator the gate still certifies and runs
        // the mission; the allocation column is unmeasured.
        let report = alloc_gate(4, 10).unwrap();
        assert!(report.contains("unmeasured"), "{report}");
        // A side past the frame envelope is refused by the certificate,
        // not by a runtime panic.
        let err = alloc_gate(32, 1).unwrap_err();
        assert!(err.contains("frame certificate refused"), "{err}");
    }

    #[test]
    fn shard_metrics_reconcile_and_the_skew_tap_trips_tc010() {
        // One test on purpose: the skew tap is plumbed through a
        // process-global env var, so the clean and mutated runs must not
        // race each other from parallel test threads.
        for (depth, cut) in [(2u8, 1u8), (3, 2)] {
            let (cert, diags) = shard_metrics_figure4(depth, cut, false).unwrap();
            assert_eq!(cert.cut_level, cut);
            assert_eq!(
                diags.error_count(),
                0,
                "depth {depth} cut {cut}: {}",
                diags.render_text()
            );
        }
        let (_, diags) = shard_metrics_figure4(2, 1, true).unwrap();
        assert!(diags.has_code(Code::TC010), "{}", diags.render_text());
        assert!(diags.has_errors());
        // Absurd cuts are a usage error, not a panic.
        assert!(shard_metrics_figure4(2, 3, false).is_err());
    }

    #[test]
    fn obs_gate_reports_the_overhead_and_honors_its_bound() {
        // An unreachable bound always passes and renders both columns;
        // the real ≤10% bound is asserted in CI where the machine is
        // quiet, not in the unit suite.
        let report = obs_gate(4, 20, 1e9).unwrap();
        assert!(report.contains("telemetry overhead:"), "{report}");
        assert!(report.contains("instrumented:"), "{report}");
        // A negative bound must trip deterministically (overhead >= 0).
        let err = obs_gate(4, 20, -1.0).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn shard_gate_passes_on_the_paper_artifacts() {
        let checked = shard_gate(&[(2, 1), (2, 2)]).unwrap_or_else(|fails| {
            panic!(
                "{}",
                fails
                    .iter()
                    .map(|(d, c, diags)| format!("depth {d} cut {c}:\n{}", diags.render_text()))
                    .collect::<String>()
            )
        });
        assert_eq!(checked, 2);
    }
}
