//! The quantitative experiments (EXP-5 … EXP-16 in DESIGN.md §5).
//!
//! Each function is parameterized by its sweep so the regenerator binaries
//! run paper scale while tests smoke-test miniatures. All randomness is
//! seeded; rerunning a binary reproduces its table bit for bit.

use crate::table::{f, Table};
use wsn_core::{
    follower_to_leader_hops, quadtree_merge_estimate, tree_convergecast_estimate, CollectiveMsg,
    ConvergecastSum, CostModel, DisseminateProgram, GridCoord, Hierarchy, NodeApi, NodeProgram,
    ReduceOp, ReduceProgram, SortProgram, TreeVm, VirtualGrid, VirtualTree, Vm,
};
use wsn_net::{DeploymentSpec, LinkModel, RadioModel, UnitDiskGraph};
use wsn_runtime::{AppReport, ParallelConfig, PhysicalRuntime};
use wsn_synth::{
    quadtree_task_graph, AnnealingMapper, CentroidMapper, Mapper, Mapping, MappingCost,
    QuadrantMapper, RandomFeasibleMapper,
};
use wsn_topoquery::{
    label_regions, run_centralized_vm, run_dandc_physical, run_dandc_vm, run_dandc_vm_with_cost,
    Field, FieldSpec, Implementation,
};

/// A blob field scaled to the grid.
pub fn blob_field(side: u32, seed: u64) -> Field {
    Field::generate(
        FieldSpec::Blobs {
            count: 3,
            amplitude: 10.0,
            radius: (f64::from(side) / 8.0).max(1.5),
        },
        side,
        seed,
    )
}

/// The paper's message-size model for region summaries of a full extent
/// (worst case, used by the analytic estimates). Now lives in
/// `wsn-core` beside the estimator; re-exported here for the
/// experiment tables that grew up with it.
pub use wsn_core::full_boundary_units;

/// EXP-5: the O(√N)-steps claim. Runs the divide-and-conquer algorithm
/// under the paper's *step* cost model (`ticks_per_unit = 0`: one latency
/// unit per hop) and reports measured steps against the 2(√N − 1)
/// prediction, plus the volume-model latency for contrast.
pub fn exp5_latency_scaling(sides: &[u32]) -> Table {
    let mut t = Table::new(
        "EXP-5: D&C latency scaling — O(sqrt N) steps (paper §4.1)",
        &[
            "side",
            "N",
            "steps",
            "pred 2(side-1)",
            "steps/side",
            "volume ticks",
        ],
    );
    for &side in sides {
        let field = blob_field(side, 42);
        let step_cost = CostModel {
            ticks_per_unit: 0,
            ..CostModel::uniform()
        };
        let steps = run_dandc_vm_with_cost(side, &field, 5.0, 1, Implementation::Native, step_cost)
            .metrics
            .latency_ticks;
        let volume = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native)
            .metrics
            .latency_ticks;
        t.row(vec![
            side.to_string(),
            (side * side).to_string(),
            steps.to_string(),
            (2 * (side - 1)).to_string(),
            f(steps as f64 / f64::from(side), 3),
            volume.to_string(),
        ]);
    }
    t
}

/// EXP-6: divide-and-conquer vs centralized collection across grid size
/// and feature density, on the virtual machine.
pub fn exp6_dandc_vs_central(sides: &[u32], densities: &[f64]) -> Table {
    let mut t = Table::new(
        "EXP-6: in-network D&C vs centralized collection (total energy, hotspot, latency)",
        &[
            "side",
            "p",
            "E(dandc)",
            "E(central)",
            "ratio",
            "hot(dandc)",
            "hot(central)",
            "lat(dandc)",
            "lat(central)",
        ],
    );
    for &side in sides {
        for &p in densities {
            let field = Field::generate(
                FieldSpec::RandomCells {
                    p,
                    hot: 1.0,
                    cold: 0.0,
                },
                side,
                7,
            );
            let dandc = run_dandc_vm(side, &field, 0.5, 1, Implementation::Native);
            let central = run_centralized_vm(side, &field, 0.5, 1);
            t.row(vec![
                side.to_string(),
                f(p, 2),
                f(dandc.metrics.total_energy, 0),
                f(central.metrics.total_energy, 0),
                f(central.metrics.total_energy / dandc.metrics.total_energy, 2),
                f(dandc.metrics.max_node_energy, 0),
                f(central.metrics.max_node_energy, 0),
                dandc.metrics.latency_ticks.to_string(),
                central.metrics.latency_ticks.to_string(),
            ]);
        }
    }
    t
}

/// EXP-7: topology emulation cost (§5.1). Verifies completeness and the
/// paper's claims that setup runs in parallel per cell (latency tracks the
/// worst intra-cell path, not network size) and that protocol messages
/// cross at most one boundary (the suppressed count is exactly those).
pub fn exp7_topology_emulation(cells: &[u32], per_cell: &[usize], range_factors: &[f64]) -> Table {
    let mut t = Table::new(
        "EXP-7: topology emulation protocol (§5.1)",
        &[
            "m",
            "per-cell",
            "range/d",
            "N phys",
            "elapsed",
            "max cell diam",
            "elapsed/diam",
            "broadcasts",
            "suppressed",
            "complete",
        ],
    );
    for &m in cells {
        for &k in per_cell {
            for &factor in range_factors {
                let deployment = DeploymentSpec::per_cell(m, k).generate(11);
                // The paper guarantees cross-cell adjacency at r = d·√5;
                // smaller ranges force the multi-hop path-discovery part of
                // the protocol to do real work (intra-cell relay chains).
                let range = deployment.grid().cell_size() * factor;
                let graph = UnitDiskGraph::build(deployment.positions(), range);
                let max_diam = deployment
                    .grid()
                    .cells()
                    .map(|c| {
                        graph
                            .subset_diameter(deployment.nodes_in_cell(c))
                            .unwrap_or(0)
                    })
                    .max()
                    .unwrap_or(0);
                let n = deployment.node_count();
                let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
                    deployment,
                    RadioModel::uniform(range),
                    LinkModel::ideal(),
                    None,
                    1,
                    11,
                    |_| 0.0,
                );
                let report = rt.run_topology_emulation();
                if report.complete {
                    rt.verify_routes().expect("route invariant");
                }
                t.row(vec![
                    m.to_string(),
                    k.to_string(),
                    f(factor, 2),
                    n.to_string(),
                    report.elapsed_ticks.to_string(),
                    max_diam.to_string(),
                    f(report.elapsed_ticks as f64 / f64::from(max_diam.max(1)), 2),
                    report.broadcasts.to_string(),
                    report.suppressed.to_string(),
                    report.complete.to_string(),
                ]);
            }
        }
    }
    t
}

/// EXP-8: binding convergence (§5.2) vs in-cell population.
pub fn exp8_binding(m: u32, per_cell: &[usize], range_factors: &[f64]) -> Table {
    let mut t = Table::new(
        "EXP-8: binding protocol convergence (§5.2)",
        &[
            "per-cell",
            "range/d",
            "N phys",
            "conn cells",
            "elapsed",
            "max cell diam",
            "delta bcasts",
            "bcasts/node",
            "unique",
            "tree complete",
        ],
    );
    for &k in per_cell {
        for &factor in range_factors {
            let deployment = DeploymentSpec::per_cell(m, k).generate(23);
            let range = deployment.grid().cell_size() * factor;
            let graph = UnitDiskGraph::build(deployment.positions(), range);
            let max_diam = deployment
                .grid()
                .cells()
                .map(|c| {
                    graph
                        .subset_diameter(deployment.nodes_in_cell(c))
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            // §5.2 assumes every cell's induced subgraph is connected;
            // report how many actually are, because uniqueness can only
            // fail where that assumption fails.
            let connected = deployment
                .grid()
                .cells()
                .filter(|&c| graph.subset_connected(deployment.nodes_in_cell(c)))
                .count();
            let cell_count = deployment.grid().cell_count();
            let n = deployment.node_count();
            let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
                deployment,
                RadioModel::uniform(range),
                LinkModel::ideal(),
                None,
                1,
                23,
                |_| 0.0,
            );
            rt.run_topology_emulation();
            let bind = rt.run_binding();
            t.row(vec![
                k.to_string(),
                f(factor, 2),
                n.to_string(),
                format!("{connected}/{cell_count}"),
                bind.elapsed_ticks.to_string(),
                max_diam.to_string(),
                bind.delta_broadcasts.to_string(),
                f(bind.delta_broadcasts as f64 / n as f64, 2),
                bind.unique.to_string(),
                bind.tree_complete.to_string(),
            ]);
        }
    }
    t
}

/// EXP-9: model fidelity — the paper's promise that "theoretical
/// performance analysis corresponds to real performance measurements".
/// Uses the all-feature field so the analytic payload model is exact, and
/// compares closed form vs virtual machine vs emulated physical network.
pub fn exp9_model_fidelity(sides: &[u32], per_cell: usize) -> Table {
    let mut t = Table::new(
        "EXP-9: analytic estimate vs virtual machine vs emulated physical network",
        &[
            "side",
            "lat est",
            "lat vm",
            "lat phys",
            "vm/est",
            "phys/vm",
            "E est",
            "E vm",
            "E phys",
            "E vm/est",
            "E phys/vm",
        ],
    );
    for &side in sides {
        let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
        let est = quadtree_merge_estimate(
            side,
            &CostModel::uniform(),
            &full_boundary_units,
            // The node program charges one merge-compute per received
            // piece (4 per merge), each of the piece's size.
            &|level| 4 * full_boundary_units(level - 1),
            1,
        );
        let vm = run_dandc_vm(side, &field, 5.0, 1, Implementation::Native);
        let deployment = DeploymentSpec::per_cell(side, per_cell).generate(5);
        let (phys, reports) = run_dandc_physical(
            deployment,
            LinkModel::ideal(),
            5.0,
            &field,
            5,
            Implementation::Native,
        );
        assert!(reports.topo.complete && reports.bind.unique);
        let (lv, lp) = (vm.metrics.latency_ticks, phys.metrics.latency_ticks);
        // Physical energy includes protocol phases; compare app-phase
        // traffic via total ledger (documented inflation).
        t.row(vec![
            side.to_string(),
            est.latency_ticks.to_string(),
            lv.to_string(),
            lp.to_string(),
            f(lv as f64 / est.latency_ticks as f64, 3),
            f(lp as f64 / lv as f64, 2),
            f(est.total_energy, 0),
            f(vm.metrics.total_energy, 0),
            f(phys.metrics.total_energy, 0),
            f(vm.metrics.total_energy / est.total_energy, 3),
            f(phys.metrics.total_energy / vm.metrics.total_energy, 2),
        ]);
    }
    t
}

/// The per-level group-send probe of EXP-10.
struct GroupSend {
    level: u8,
    hierarchy: Hierarchy,
}

impl NodeProgram<u32> for GroupSend {
    fn on_init(&mut self, api: &mut dyn NodeApi<u32>) {
        let me = api.coord();
        let leader = self.hierarchy.leader(me, self.level);
        if leader != me {
            api.send(leader, 1, 0);
        }
    }
    fn on_receive(&mut self, _api: &mut dyn NodeApi<u32>, _from: GridCoord, _p: u32) {}
}

/// EXP-10: group-communication cost (§4.2): measured follower→leader hop
/// statistics against the closed-form prediction.
pub fn exp10_group_cost(side: u32, levels: &[u8]) -> Table {
    let mut t = Table::new(
        "EXP-10: group middleware follower->leader cost (§3.2/§4.2)",
        &[
            "level",
            "block",
            "mean hops",
            "pred mean (followers)",
            "max hops",
            "pred max",
            "energy",
            "pred energy",
        ],
    );
    let hierarchy = Hierarchy::new(side);
    for &level in levels {
        assert!(level >= 1 && level <= hierarchy.max_level());
        let mut vm: Vm<u32> = Vm::new(
            side,
            CostModel::uniform(),
            1,
            |_| 0.0,
            move |_| {
                Box::new(GroupSend {
                    level,
                    hierarchy: Hierarchy::new(side),
                })
            },
        );
        vm.run();
        let stats = vm.stats().clone();
        let hops = stats.histogram("vm.hops").expect("sends happened").clone();
        let b = 1u64 << level;
        // Mean over followers only (the leader does not send to itself).
        let pred_mean = (b * b * (b - 1)) as f64 / (b * b - 1) as f64;
        let (_, pred_max) = follower_to_leader_hops(level);
        let blocks = (u64::from(side) >> level).pow(2);
        let pred_energy = 2.0 * (b * b * (b - 1) * blocks) as f64;
        let mut hops_sorted = hops.clone();
        t.row(vec![
            level.to_string(),
            format!("{b}x{b}"),
            f(hops.mean().unwrap(), 3),
            f(pred_mean, 3),
            f(hops_sorted.quantile(1.0).unwrap(), 0),
            pred_max.to_string(),
            f(vm.ledger().total(), 0),
            f(pred_energy, 0),
        ]);
        let _ = stats.counter("vm.messages");
    }
    t
}

/// EXP-11: energy balance under three leader-placement strategies across
/// repeated rounds of the task graph: the paper's fixed NW-corner leaders,
/// fixed centroid placement, and per-round rotation (the paper's
/// "especially if the role of leader is to be periodically rotated").
pub fn exp11_energy_balance(side: u32, rounds: u32) -> Table {
    let mut t = Table::new(
        "EXP-11: leader placement and energy balance over repeated rounds",
        &[
            "strategy",
            "rounds",
            "total E",
            "max node E",
            "mean node E",
            "max/mean",
            "Jain",
        ],
    );
    let cost = CostModel::uniform();
    let qt = quadtree_task_graph(side, &full_boundary_units, &|_| 1);

    let accumulate = |mappings: &mut dyn FnMut(u32) -> Mapping| -> Vec<f64> {
        let mut loads = vec![0.0; (side as usize).pow(2)];
        for r in 0..rounds {
            let m = mappings(r);
            for (acc, l) in loads
                .iter_mut()
                .zip(MappingCost::node_loads(&qt, &m, &cost))
            {
                *acc += l;
            }
        }
        loads
    };

    type Strategy = Box<dyn FnMut(u32) -> Mapping>;
    let strategies: Vec<(&str, Strategy)> = vec![
        ("NW corner (paper)", {
            let qt = qt.clone();
            Box::new(move |_| QuadrantMapper.map(&qt))
        }),
        ("centroid", {
            let qt = qt.clone();
            Box::new(move |_| CentroidMapper.map(&qt))
        }),
        ("rotating", {
            let qt = qt.clone();
            Box::new(move |r| {
                let mut m = QuadrantMapper.map(&qt);
                for task in qt.graph.tasks() {
                    if task.level == 0 {
                        continue;
                    }
                    let (origin, es) = qt.extent[task.id];
                    let k = r % (es * es);
                    m.assign(
                        task.id,
                        GridCoord::new(origin.col + k % es, origin.row + k / es),
                    );
                }
                m
            })
        }),
    ];

    for (name, mut strategy) in strategies {
        let loads = accumulate(&mut *strategy);
        let total: f64 = loads.iter().sum();
        let max = loads.iter().copied().fold(0.0, f64::max);
        let mean = total / loads.len() as f64;
        let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
        let jain = if sum_sq == 0.0 {
            1.0
        } else {
            total * total / (loads.len() as f64 * sum_sq)
        };
        t.row(vec![
            name.to_string(),
            rounds.to_string(),
            f(total, 0),
            f(max, 0),
            f(mean, 1),
            f(max / mean, 2),
            f(jain, 3),
        ]);
    }
    t
}

/// EXP-12: robustness of the asynchronous incremental merge under message
/// loss and jitter on the emulated physical network, with and without the
/// hop-by-hop ARQ extension.
pub fn exp12_loss_robustness(side: u32, per_cell: usize, drops: &[f64], trials: u64) -> Table {
    let mut t = Table::new(
        "EXP-12: message loss vs completion and correctness (§4.3's asynchronous merge)",
        &[
            "drop p",
            "arq",
            "trials",
            "completed",
            "correct",
            "completion rate",
            "mean latency",
            "mean energy",
            "retx",
        ],
    );
    let field = blob_field(side, 3);
    let truth = label_regions(&field.threshold(5.0)).region_count();
    for &p in drops {
        for arq in [None, Some((8u32, 64u64))] {
            // Trials are independent simulations: sweep them in parallel.
            let field_ref = &field;
            let outcomes = crate::parallel::parallel_map((0..trials).collect(), move |trial| {
                let deployment = DeploymentSpec::per_cell(side, per_cell).generate(100 + trial);
                let (out, reports) = wsn_topoquery::run_dandc_physical_with(
                    deployment,
                    LinkModel::lossy(p, 2),
                    5.0,
                    field_ref,
                    200 + trial,
                    Implementation::Native,
                    arq,
                );
                (
                    out.metrics.total_energy,
                    reports.app.retransmissions,
                    out.summary
                        .map(|s| (s.region_count(), out.metrics.latency_ticks)),
                )
            });
            let mut completed = 0u64;
            let mut correct = 0u64;
            let mut latency_sum = 0u64;
            let mut energy_sum = 0.0;
            let mut retx = 0u64;
            for (energy, retransmissions, result) in outcomes {
                energy_sum += energy;
                retx += retransmissions;
                if let Some((regions, latency)) = result {
                    completed += 1;
                    latency_sum += latency;
                    if regions == truth {
                        correct += 1;
                    }
                }
            }
            t.row(vec![
                f(p, 3),
                if arq.is_some() { "yes" } else { "no" }.to_string(),
                trials.to_string(),
                completed.to_string(),
                correct.to_string(),
                f(completed as f64 / trials as f64, 2),
                if completed > 0 {
                    f(latency_sum as f64 / completed as f64, 0)
                } else {
                    "-".to_string()
                },
                f(energy_sum / trials as f64, 0),
                retx.to_string(),
            ]);
        }
    }
    t
}

/// EXP-13: mapping-strategy ablation under the coverage and
/// spatial-correlation constraints (§4.2).
pub fn exp13_mapping_ablation(sides: &[u32]) -> Table {
    let mut t = Table::new(
        "EXP-13: task mapping ablation (one round, uniform cost model)",
        &[
            "side",
            "mapper",
            "total E",
            "max node E",
            "Jain",
            "critical path",
        ],
    );
    let cost = CostModel::uniform();
    for &side in sides {
        let qt = quadtree_task_graph(side, &full_boundary_units, &|_| 1);
        let mut mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(QuadrantMapper),
            Box::new(RandomFeasibleMapper::new(5)),
            Box::new(CentroidMapper),
            Box::new(AnnealingMapper::new(5, cost, 400, 0.5)),
        ];
        for mapper in &mut mappers {
            let m = mapper.map(&qt);
            wsn_synth::first_violation(&qt, &m).expect("mapper produced infeasible mapping");
            let c = MappingCost::evaluate(&qt, &m, &cost);
            t.row(vec![
                side.to_string(),
                mapper.name().to_string(),
                f(c.total_energy, 0),
                f(c.max_node_energy, 0),
                f(c.energy_balance, 3),
                c.critical_path_ticks.to_string(),
            ]);
        }
    }
    t
}

/// EXP-14: collective computation primitives (§2's "summing, sorting, or
/// ranking"): measured cost of reduce, disseminate, and odd-even
/// transposition sort on the virtual architecture, against closed forms.
pub fn exp14_collectives(sides: &[u32]) -> Table {
    let mut t = Table::new(
        "EXP-14: collective primitives on the virtual architecture",
        &[
            "side",
            "primitive",
            "latency",
            "pred latency",
            "energy",
            "pred energy",
            "messages",
        ],
    );
    let cost = CostModel::uniform();
    for &side in sides {
        // Reduce: same traffic shape as the quad-tree merge with 1-unit
        // payloads; absorb charges 1 compute per incoming (4 per merge).
        let est = quadtree_merge_estimate(side, &cost, &|_| 1, &|_| 4, 1);
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            cost,
            1,
            |_| 1.0,
            move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)),
        );
        vm.run();
        let m = vm.metrics();
        t.row(vec![
            side.to_string(),
            "reduce (sum)".into(),
            m.latency_ticks.to_string(),
            est.latency_ticks.to_string(),
            f(m.total_energy, 0),
            f(est.total_energy, 0),
            m.messages.to_string(),
        ]);

        // Disseminate: the reverse tree; same path energy, no merge
        // compute, and latency measured to the last leaf delivery.
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            cost,
            1,
            |_| 0.0,
            move |_| Box::new(DisseminateProgram::new(side, 7.0)),
        );
        vm.run();
        let m = vm.metrics();
        let path_only = quadtree_merge_estimate(side, &cost, &|_| 1, &|_| 0, 0);
        t.row(vec![
            side.to_string(),
            "disseminate".into(),
            m.latency_ticks.to_string(),
            path_only.latency_ticks.to_string(),
            f(m.total_energy, 0),
            f(path_only.total_energy, 0),
            m.messages.to_string(),
        ]);

        // Sort: N phases of neighbor exchanges along the snake order.
        let grid = VirtualGrid::new(side);
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            cost,
            1,
            move |c| {
                f64::from((wsn_core::snake_index(grid, c) as u32).wrapping_mul(2654435761) % 1000)
            },
            move |_| Box::new(SortProgram::new(side)),
        );
        vm.run();
        let m = vm.metrics();
        let n = (side as u64).pow(2);
        // Exchanges: ⌈N/2⌉ even phases of ⌊N/2⌋ pairs, ⌊N/2⌋ odd phases of
        // ⌊(N−1)/2⌋ pairs; 2 messages per pair per phase, 1 hop each.
        let msgs = n.div_ceil(2) * (n / 2) * 2 + (n / 2) * ((n - 1) / 2) * 2;
        // Energy: 2 per message (tx+rx over one hop) + 1 compute per
        // message consumed + 1 compute per node at init = 3·msgs + N.
        let pred_energy = 3 * msgs + n;
        // Latency: phases pipeline perfectly along the snake — N − 1 ticks
        // for N > 1 (one unit-payload hop per effective phase).
        let pred_latency = n.saturating_sub(1);
        t.row(vec![
            side.to_string(),
            "sort (odd-even)".into(),
            m.latency_ticks.to_string(),
            pred_latency.to_string(),
            f(m.total_energy, 0),
            pred_energy.to_string(),
            m.messages.to_string(),
        ]);
    }
    t
}

/// EXP-15: channel-access ablation (§2's synchronous vs asynchronous
/// network model): the D&C application under ideal (asynchronous) access
/// vs TDMA frames of growing size. Energy is MAC-independent; latency
/// pays ~half a frame per hop.
pub fn exp15_mac_ablation(side: u32, per_cell: usize, frames: &[u64]) -> Table {
    let mut t = Table::new(
        "EXP-15: asynchronous vs TDMA channel access (application phase)",
        &[
            "mac",
            "latency",
            "latency ratio",
            "energy",
            "physical hops",
            "exfil",
        ],
    );
    let field = blob_field(side, 3);
    let mut baseline_latency = None;
    let mut configs: Vec<(String, Option<(u64, u64)>)> = vec![("async (ideal)".into(), None)];
    for &fr in frames {
        configs.push((format!("TDMA {fr}x1"), Some((fr, 1))));
    }
    for (name, mac) in configs {
        let deployment = DeploymentSpec::per_cell(side, per_cell).generate(5);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = field.clone();
        let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            5,
            move |c| f2.value(c),
        );
        rt.run_topology_emulation();
        let bind = rt.run_binding();
        assert!(bind.unique);
        rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
        if let Some((frame_slots, slot_ticks)) = mac {
            rt.set_mac_model(wsn_net::MacModel::Tdma {
                frame_slots,
                slot_ticks,
            });
        }
        let app = rt.run_application();
        let metrics = rt.metrics(&app);
        let lat = app.last_exfil_ticks.unwrap_or(app.elapsed_ticks);
        let base = *baseline_latency.get_or_insert(lat);
        t.row(vec![
            name,
            lat.to_string(),
            f(lat as f64 / base as f64, 2),
            f(metrics.total_energy, 0),
            app.physical_hops.to_string(),
            app.exfil_count.to_string(),
        ]);
    }
    t
}

/// Which scheduler drives a traced topoquery run. Every driver taking an
/// engine produces **bit-identical** output under either variant — that
/// contract is what the differential determinism suite certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEngine {
    /// The single-queue reference kernel.
    Sequential,
    /// The sharded kernel: level-`cut_level` quad-tree quadrant shards
    /// striped over `workers` logical lanes, synchronized at window
    /// barriers.
    Sharded { cut_level: u32, workers: usize },
}

impl RunEngine {
    /// Runs the application phase of `rt` on this engine. Generic over
    /// the payload so the same engines drive both the legacy in-memory
    /// payload (`DandcMsg`) and the certified zero-copy frame
    /// (`wsn_net::FrameBuf`).
    pub fn run_application<P: Clone + 'static>(self, rt: &mut PhysicalRuntime<P>) -> AppReport {
        match self {
            RunEngine::Sequential => rt.run_application(),
            RunEngine::Sharded { cut_level, workers } => {
                rt.run_application_parallel(&ParallelConfig { cut_level, workers })
            }
        }
    }

    /// Shard count of the engine's plan (1 for the sequential engine).
    pub fn shard_count(self, side: u32) -> usize {
        match self {
            RunEngine::Sequential => 1,
            RunEngine::Sharded { cut_level, .. } => {
                wsn_core::ShardPlan::new(side, cut_level as u8).shard_count() as usize
            }
        }
    }
}

impl std::fmt::Display for RunEngine {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunEngine::Sequential => write!(out, "sequential"),
            RunEngine::Sharded { cut_level, workers } => {
                write!(out, "sharded cut={cut_level} w={workers}")
            }
        }
    }
}

/// Runs the full mission (topology emulation → binding → D&C application)
/// on an emulated deployment with telemetry enabled, and exports the run
/// as a [`wsn_obs::TraceDocument`]: phase spans, registry counters, kernel
/// histograms, per-node energy snapshots, and (when `trace_events` is set)
/// the complete dispatch log. This is what `netscope --demo` records and
/// what the determinism suite replays.
pub fn record_end_to_end_trace(
    side: u32,
    per_cell: usize,
    seed: u64,
    trace_events: bool,
) -> wsn_obs::TraceDocument {
    record_end_to_end_trace_with(side, per_cell, seed, trace_events, RunEngine::Sequential).0
}

/// [`record_end_to_end_trace`] parameterized by execution engine, also
/// returning the application phase's [`wsn_core::RunMetrics`] — the
/// triple (JSONL trace, causal log inside it, metrics) the differential
/// determinism suite compares byte for byte across engines.
pub fn record_end_to_end_trace_with(
    side: u32,
    per_cell: usize,
    seed: u64,
    trace_events: bool,
    engine: RunEngine,
) -> (wsn_obs::TraceDocument, wsn_core::RunMetrics) {
    // The certified zero-copy hot path: whenever the frame-layout
    // certificate covers this side (every payload bound fits the fixed
    // frame), summaries travel as encoded `FrameBuf`s instead of
    // heap-owning `DandcMsg` values. Both engines take the same path, so
    // the differential suite keeps comparing byte-identical artifacts.
    if wsn_core::framed_payload_fits(side) {
        traced_topoquery_run::<wsn_net::FrameBuf>(side, per_cell, seed, trace_events, engine, |s| {
            Box::new(wsn_runtime::FramedProgram::new(
                wsn_topoquery::DandcProgram::new(s, 5.0),
            ))
        })
    } else {
        traced_topoquery_run::<wsn_topoquery::DandcMsg>(
            side,
            per_cell,
            seed,
            trace_events,
            engine,
            |s| Box::new(wsn_topoquery::DandcProgram::new(s, 5.0)),
        )
    }
}

/// Shared body of [`record_end_to_end_trace_with`], generic over the
/// payload representation on the air.
fn traced_topoquery_run<P: Clone + 'static>(
    side: u32,
    per_cell: usize,
    seed: u64,
    trace_events: bool,
    engine: RunEngine,
    make_program: impl Fn(u32) -> Box<dyn NodeProgram<P>> + 'static,
) -> (wsn_obs::TraceDocument, wsn_core::RunMetrics) {
    let field = blob_field(side, seed);
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let f2 = field.clone();
    let mut rt: PhysicalRuntime<P> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| f2.value(c),
    );
    rt.enable_telemetry(trace_events);
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| make_program(side));
    // Causal tracing goes on after the control phases so the exported
    // happens-before DAG covers exactly the application — the shape the
    // critical-path profiler walks.
    rt.enable_causal_tracing();
    let app = engine.run_application(&mut rt);
    let metrics = rt.metrics(&app);
    (rt.record_trace(), metrics)
}

/// Records the seeded model-fidelity run the conformance gate checks:
/// the EXP-9 configuration (uniform field, so every summary is the full
/// boundary the §4 analysis prices) on the emulated physical network,
/// exported as a telemetry trace.
///
/// The two multipliers deliberately mis-price the *runtime's* radio
/// against the certifier's `CostModel` — the mutation the conformance
/// gate must catch: `hop_cost_multiplier` scales ticks-per-unit (latency
/// drift; fractional values like `1.5` express a +50% hop delay),
/// `tx_energy_multiplier` scales transmit energy (energy drift). Pass
/// `1.0`/`1.0` for the faithful run.
pub fn record_model_fidelity_trace(
    side: u32,
    per_cell: usize,
    seed: u64,
    hop_cost_multiplier: f64,
    tx_energy_multiplier: f64,
) -> wsn_obs::TraceDocument {
    record_model_fidelity_trace_with(
        side,
        per_cell,
        seed,
        hop_cost_multiplier,
        tx_energy_multiplier,
        RunEngine::Sequential,
    )
}

/// [`record_model_fidelity_trace`] parameterized by execution engine.
/// The sharded engine must land inside exactly the same certified §4
/// intervals as the sequential one — the oracle-at-scale suite runs
/// this at sides where exhaustive differential fuzzing can't reach.
pub fn record_model_fidelity_trace_with(
    side: u32,
    per_cell: usize,
    seed: u64,
    hop_cost_multiplier: f64,
    tx_energy_multiplier: f64,
    engine: RunEngine,
) -> wsn_obs::TraceDocument {
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut radio = RadioModel::uniform(range);
    radio.ticks_per_unit *= hop_cost_multiplier;
    radio.tx_energy_per_unit *= tx_energy_multiplier;
    let f2 = field.clone();
    let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
        deployment,
        radio,
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| f2.value(c),
    );
    rt.enable_telemetry(false);
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
    rt.enable_causal_tracing();
    engine.run_application(&mut rt);
    rt.record_trace()
}

/// Records the seeded model-fidelity run on the sharded engine at
/// `cut`, with the per-shard telemetry (`shard=`-labeled counters,
/// gauges, and window histograms from [`PhysicalRuntime::shard_telemetry`])
/// merged into the exported trace — the document the TC010 shard
/// accounting check reconciles against the shard certificate.
///
/// `skew` arms the runtime's `WSN_SHARD_SKEW` undercounting tap, the
/// planted mutation the CI inverted check proves TC010 catches.
pub fn record_shard_metrics_trace(
    side: u32,
    per_cell: usize,
    seed: u64,
    cut: u8,
    skew: bool,
) -> wsn_obs::TraceDocument {
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let f2 = field.clone();
    let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| f2.value(c),
    );
    rt.enable_telemetry(false);
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
    rt.enable_causal_tracing();
    if skew {
        std::env::set_var("WSN_SHARD_SKEW", "1");
    }
    let engine = RunEngine::Sharded {
        cut_level: u32::from(cut),
        workers: 1,
    };
    engine.run_application(&mut rt);
    if skew {
        std::env::remove_var("WSN_SHARD_SKEW");
    }
    let mut doc = rt.record_trace();
    doc.absorb_registry(rt.shard_telemetry());
    doc
}

/// Records the seeded uniform-field topoquery run with the per-shard
/// flight recorder armed (cut-`cut` quadrant map, `capacity` retained
/// dispatches per shard) and snapshots the rings into a
/// [`wsn_obs::FlightDump`] tagged `reason` — the post-mortem artifact
/// `netscope flight` renders and CI uploads on gate failures.
pub fn record_flight_dump(
    side: u32,
    per_cell: usize,
    seed: u64,
    cut: u8,
    capacity: usize,
    reason: &str,
) -> wsn_obs::FlightDump {
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let f2 = field.clone();
    let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| f2.value(c),
    );
    rt.enable_flight_recorder(u32::from(cut), capacity);
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
    let engine = RunEngine::Sharded {
        cut_level: u32::from(cut),
        workers: 1,
    };
    engine.run_application(&mut rt);
    rt.flight_dump(reason).expect("recorder was armed")
}

/// EXP-20: parallel-kernel scaling. For each side, runs the seeded
/// uniform-field topoquery mission on the given engine and reports the
/// event throughput and memory high-water mark — the `events_per_sec` /
/// `peak_rss_bytes` axes the perf baseline records. Deterministic
/// columns (events, latency, exfiltrations) are engine-independent by
/// the determinism contract; only the wall-clock-derived columns vary
/// between machines.
pub fn exp20_parallel_scale(sides: &[u32], per_cell: usize, engines: &[RunEngine]) -> Table {
    let mut t = Table::new(
        "EXP-20: sharded kernel scaling (seeded topoquery mission)",
        &[
            "side",
            "N phys",
            "engine",
            "shards",
            "events",
            "wall ms",
            "events/sec",
            "peak RSS MiB",
            "latency",
        ],
    );
    for &side in sides {
        for &engine in engines {
            let started = std::time::Instant::now();
            let doc = record_model_fidelity_trace_with(side, per_cell, 5, 1.0, 1.0, engine);
            let wall = started.elapsed();
            let meta = doc.meta.expect("trace has a meta line");
            let span = doc
                .spans
                .iter()
                .find(|s| s.name == "application")
                .expect("application span");
            let rate = meta.events as f64 / wall.as_secs_f64().max(1e-9);
            t.row(vec![
                side.to_string(),
                meta.nodes.to_string(),
                engine.to_string(),
                engine.shard_count(side).to_string(),
                meta.events.to_string(),
                wall.as_millis().to_string(),
                f(rate, 0),
                f(
                    crate::perfbase::peak_rss_bytes() as f64 / (1024.0 * 1024.0),
                    1,
                ),
                span.duration_ticks().to_string(),
            ]);
        }
    }
    t
}

/// The correct D&C program plus one planted defect: the far-corner cell
/// `(side−1, side−1)` also sends its leaf summary straight up its column
/// to cell `(side−1, 0)` — a point-to-point message that is not a
/// child-leader → parent-leader merge, so its hops cross the quad-tree
/// shard boundary off the certified edge set. The extra message lands in
/// a quorum slot that never fills (level 0), leaving the algorithm's
/// result untouched: only the shard-conformance replay (`TC009`) can see
/// the leak.
struct ShardLeakProgram {
    inner: wsn_topoquery::DandcProgram,
    side: u32,
}

impl NodeProgram<wsn_topoquery::DandcMsg> for ShardLeakProgram {
    fn on_init(&mut self, api: &mut dyn NodeApi<wsn_topoquery::DandcMsg>) {
        self.inner.on_init(api);
        let here = api.coord();
        if here == GridCoord::new(self.side - 1, self.side - 1) {
            let leaf = wsn_topoquery::BoundarySummary::leaf(here, false);
            let units = leaf.units();
            api.send(
                GridCoord::new(self.side - 1, 0),
                units,
                wsn_synth::SummaryMsg {
                    sender: here,
                    level: 0,
                    data: wsn_topoquery::RegionSummary::Complete(leaf),
                },
            );
        }
    }

    fn on_receive(
        &mut self,
        api: &mut dyn NodeApi<wsn_topoquery::DandcMsg>,
        from: GridCoord,
        msg: wsn_topoquery::DandcMsg,
    ) {
        self.inner.on_receive(api, from, msg);
    }
}

/// Records the seeded model-fidelity run with the planted cross-shard
/// leak of `ShardLeakProgram` — the dynamic half of the
/// `--mutate-shard-leak` gate check. The static analyzer cannot see this
/// defect (it lives in the hand-written program, not the synthesized
/// one); the `TC009` trace replay must.
pub fn record_shard_leak_trace(side: u32, per_cell: usize, seed: u64) -> wsn_obs::TraceDocument {
    assert!(side >= 2, "a leak needs somewhere to cross");
    let field = Field::generate(FieldSpec::Uniform(10.0), side, 1);
    let deployment = DeploymentSpec::per_cell(side, per_cell).generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let f2 = field.clone();
    let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        move |c| f2.value(c),
    );
    rt.enable_telemetry(false);
    let topo = rt.run_topology_emulation();
    assert!(topo.complete, "topology emulation must complete");
    let bind = rt.run_binding();
    assert!(bind.unique, "binding must elect unique leaders");
    rt.install_programs(move |_| {
        Box::new(ShardLeakProgram {
            inner: wsn_topoquery::DandcProgram::new(side, 5.0),
            side,
        })
    });
    rt.enable_causal_tracing();
    rt.run_application();
    rt.record_trace()
}

/// EXP-16: sustained operation under churn — the paper's "the above
/// protocol should execute periodically" (§5.1), quantified. Rounds
/// completed over a mission with one random node death per round, as a
/// function of the protocol refresh period.
pub fn exp16_mission_under_churn(
    side: u32,
    per_cell: usize,
    rounds: u32,
    periods: &[u32],
) -> Table {
    let mut t = Table::new(
        "EXP-16: mission completion under churn vs protocol refresh period",
        &[
            "refresh every",
            "rounds",
            "completed",
            "rate",
            "killed",
            "refreshes",
            "survivors",
        ],
    );
    let field = blob_field(side, 3);
    for &period in periods {
        let deployment = DeploymentSpec::per_cell(side, per_cell).generate(5);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = field.clone();
        let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            5,
            move |c| f2.value(c),
        );
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
        let report = rt.run_mission(
            wsn_runtime::MissionConfig {
                rounds,
                refresh_every: period,
                churn_per_round: 1,
                churn_seed: 77,
                stop_on_first_death: false,
            },
            1,
        );
        t.row(vec![
            if period == 0 {
                "never".to_string()
            } else {
                period.to_string()
            },
            report.rounds.to_string(),
            report.completed.to_string(),
            f(f64::from(report.completed) / f64::from(report.rounds), 2),
            report.killed.to_string(),
            report.refreshes.to_string(),
            report.survivors.to_string(),
        ]);
    }
    t
}

/// EXP-17: leader-election policy and system lifetime (§5.2: "Residual
/// energy level or more sophisticated metrics could also be employed,
/// especially if the role of leader is to be periodically rotated").
/// Budgeted nodes run rounds until the first node dies; the energy-aware
/// policy re-elects on a period (paying the refresh protocol's energy) so
/// leadership rotates off the hotspot.
pub fn exp17_election_lifetime(side: u32, per_cell: usize, budget: f64, max_rounds: u32) -> Table {
    let mut t = Table::new(
        "EXP-17: election policy vs system lifetime (first node death)",
        &[
            "policy",
            "refresh",
            "budget",
            "rounds to first death",
            "completed",
            "refreshes",
        ],
    );
    let field = blob_field(side, 3);
    let configs = [
        (
            "closest-to-center (paper)",
            wsn_runtime::ElectionPolicy::ClosestToCenter,
            0u32,
        ),
        (
            "closest-to-center (paper)",
            wsn_runtime::ElectionPolicy::ClosestToCenter,
            8,
        ),
        (
            "max residual energy",
            wsn_runtime::ElectionPolicy::MaxResidualEnergy,
            8,
        ),
        (
            "max residual energy",
            wsn_runtime::ElectionPolicy::MaxResidualEnergy,
            2,
        ),
    ];
    for (name, policy, refresh_every) in configs {
        let deployment = DeploymentSpec::per_cell(side, per_cell).generate(5);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let f2 = field.clone();
        let mut rt: PhysicalRuntime<wsn_topoquery::DandcMsg> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            Some(budget),
            1,
            5,
            move |c| f2.value(c),
        );
        rt.set_election_policy(policy);
        rt.run_topology_emulation();
        assert!(rt.run_binding().unique);
        rt.install_programs(move |_| Box::new(wsn_topoquery::DandcProgram::new(side, 5.0)));
        let report = rt.run_mission(
            wsn_runtime::MissionConfig {
                rounds: max_rounds,
                refresh_every,
                churn_per_round: 0,
                churn_seed: 1,
                stop_on_first_death: true,
            },
            1,
        );
        t.row(vec![
            name.to_string(),
            if refresh_every == 0 {
                "never".into()
            } else {
                refresh_every.to_string()
            },
            f(budget, 0),
            report.rounds.to_string(),
            report.completed.to_string(),
            report.refreshes.to_string(),
        ]);
    }
    t
}

/// EXP-18: intra-cell sampling (§3.2's "intra-cell readings"): mean
/// absolute error of the leaders' effective readings versus cell density
/// and sensor noise, with and without the sampling phase — plus what that
/// accuracy buys in data units moved.
pub fn exp18_sampling_accuracy(side: u32, densities: &[usize], noises: &[f64]) -> Table {
    let mut t = Table::new(
        "EXP-18: intra-cell sampling vs single-sensor reading (leader MAE)",
        &[
            "per-cell",
            "noise σ",
            "MAE single",
            "MAE sampled",
            "improvement",
            "samples",
            "elapsed",
        ],
    );
    for &per_cell in densities {
        for &noise in noises {
            let deployment = DeploymentSpec::per_cell(side, per_cell).generate(5);
            let range = deployment.grid().range_for_adjacent_cell_reachability();
            let truth = |c: GridCoord| f64::from(c.col * 7 + c.row * 3);
            let mut rt: PhysicalRuntime<u32> = PhysicalRuntime::new(
                deployment,
                RadioModel::uniform(range),
                LinkModel::ideal(),
                None,
                1,
                5,
                truth,
            );
            rt.set_sampling_noise(noise, 13);
            rt.run_topology_emulation();
            assert!(rt.run_binding().unique);

            let mae = |rt: &PhysicalRuntime<u32>| -> f64 {
                let cells: Vec<GridCoord> = rt.grid().nodes().collect();
                cells
                    .iter()
                    .map(|&c| {
                        let leader = rt.leader_of(c).expect("leader");
                        (rt.node(leader).aggregated_reading() - truth(c)).abs()
                    })
                    .sum::<f64>()
                    / cells.len() as f64
            };

            let single = mae(&rt);
            let (elapsed, delivered) = rt.run_sampling();
            let sampled = mae(&rt);
            t.row(vec![
                per_cell.to_string(),
                f(noise, 1),
                f(single, 3),
                f(sampled, 3),
                f(single / sampled.max(1e-12), 2),
                delivered.to_string(),
                elapsed.to_string(),
            ]);
        }
    }
    t
}

/// EXP-19: architecture selection (§3.2: "for non-uniform deployments,
/// other virtual topologies such as a tree could be more appropriate").
/// Aggregating one reading per sensing point under the grid architecture
/// (hierarchical reduce over the emulated grid) vs the tree architecture
/// (convergecast over a cluster tree), both measured on their VMs and
/// against their closed forms.
///
/// Caveat the table quantifies: a tree *virtual hop* is one edge
/// regardless of geography, which is realistic exactly for clustered
/// deployments (edges map to short intra/inter-cluster links) — the
/// deployment class for which the paper recommends the tree.
pub fn exp19_architecture_selection(grid_sides: &[u32]) -> Table {
    let mut t = Table::new(
        "EXP-19: grid vs tree virtual architecture for aggregation",
        &[
            "N sensed",
            "architecture",
            "latency",
            "pred",
            "energy",
            "pred",
            "messages",
        ],
    );
    let cost = CostModel::uniform();
    for &side in grid_sides {
        let n = (side as usize).pow(2);

        // Grid: hierarchical reduce on the m×m grid.
        let mut vm: Vm<CollectiveMsg> = Vm::new(
            side,
            cost,
            1,
            |_| 1.0,
            move |_| Box::new(ReduceProgram::new(side, ReduceOp::Sum)),
        );
        vm.run();
        let m = vm.metrics();
        let est = quadtree_merge_estimate(side, &cost, &|_| 1, &|_| 4, 1);
        t.row(vec![
            n.to_string(),
            format!("grid {side}x{side}"),
            m.latency_ticks.to_string(),
            est.latency_ticks.to_string(),
            f(m.total_energy, 0),
            f(est.total_energy, 0),
            m.messages.to_string(),
        ]);

        // Tree: a 4-ary cluster tree whose leaves are the sensing points
        // (interior nodes are cluster heads, which also sense).
        let depth = side.trailing_zeros(); // 4^depth leaves = side²
        let tree = VirtualTree::balanced_kary(4, depth);
        let t2 = tree.clone();
        let est = tree_convergecast_estimate(&tree, &cost, 1);
        let mut tvm = TreeVm::new(
            tree,
            cost,
            1,
            |_| 1.0,
            move |id| Box::new(ConvergecastSum::new(t2.children(id).len())),
        );
        let (latency, energy, messages) = tvm.run();
        t.row(vec![
            n.to_string(),
            format!("4-ary tree h={depth}"),
            latency.to_string(),
            est.latency_ticks.to_string(),
            f(energy, 0),
            f(est.total_energy, 0),
            messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp5_steps_match_prediction() {
        let t = exp5_latency_scaling(&[4, 8]);
        assert_eq!(t.len(), 2);
        // steps == 2(side−1) exactly under the step model.
        assert_eq!(t.cell(0, 2), t.cell(0, 3));
        assert_eq!(t.cell(1, 2), t.cell(1, 3));
    }

    #[test]
    fn exp6_dandc_wins_at_scale() {
        let t = exp6_dandc_vs_central(&[16], &[0.2]);
        let ratio: f64 = t.cell(0, 4).parse().unwrap();
        assert!(
            ratio > 1.0,
            "centralized/dandc energy ratio {ratio} should exceed 1"
        );
    }

    #[test]
    fn exp7_completes_and_tracks_diameter() {
        let t = exp7_topology_emulation(&[4], &[3], &[5.0f64.sqrt()]);
        assert_eq!(t.cell(0, 9), "true");
        let ratio: f64 = t.cell(0, 6).parse().unwrap();
        assert!(
            ratio < 10.0,
            "elapsed should track cell diameter, ratio {ratio}"
        );
    }

    #[test]
    fn exp8_unique_leaders() {
        let t = exp8_binding(3, &[2, 4], &[5.0f64.sqrt()]);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 8), "true");
            assert_eq!(t.cell(r, 9), "true");
        }
    }

    #[test]
    fn exp9_vm_matches_estimate_exactly() {
        let t = exp9_model_fidelity(&[4], 2);
        assert_eq!(t.cell(0, 4), "1.000", "vm/est latency");
        assert_eq!(t.cell(0, 9), "1.000", "vm/est energy");
        let phys_vm: f64 = t.cell(0, 5).parse().unwrap();
        assert!(phys_vm >= 1.0);
    }

    #[test]
    fn exp10_measured_matches_prediction() {
        let t = exp10_group_cost(8, &[1, 2]);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 2), t.cell(r, 3), "mean hops row {r}");
            assert_eq!(t.cell(r, 6), t.cell(r, 7), "energy row {r}");
        }
    }

    #[test]
    fn exp11_rotation_improves_balance() {
        let t = exp11_energy_balance(8, 16);
        let jain_nw: f64 = t.cell(0, 6).parse().unwrap();
        let jain_rot: f64 = t.cell(2, 6).parse().unwrap();
        assert!(
            jain_rot > jain_nw,
            "rotating {jain_rot} should beat NW {jain_nw}"
        );
    }

    #[test]
    fn exp12_ideal_links_always_complete_and_arq_restores_liveness() {
        let t = exp12_loss_robustness(4, 2, &[0.0, 0.05], 3);
        // rows: (p=0, no-arq), (p=0, arq), (p=0.05, no-arq), (p=0.05, arq)
        assert_eq!(t.cell(0, 3), "3", "ideal links complete");
        assert_eq!(t.cell(0, 4), "3", "ideal links correct");
        assert_eq!(t.cell(1, 8), "0", "no retransmissions without loss");
        assert_eq!(t.cell(3, 3), "3", "ARQ completes under 5% loss");
        assert_eq!(t.cell(3, 4), "3", "ARQ answers are exact");
        let retx: u64 = t.cell(3, 8).parse().unwrap();
        assert!(retx > 0, "loss must trigger retransmissions");
    }

    #[test]
    fn exp14_reduce_matches_estimate() {
        let t = exp14_collectives(&[4]);
        assert_eq!(t.cell(0, 2), t.cell(0, 3), "reduce latency exact");
        assert_eq!(t.cell(0, 4), t.cell(0, 5), "reduce energy exact");
        assert_eq!(t.cell(1, 4), t.cell(1, 5), "disseminate energy exact");
        assert_eq!(t.cell(2, 2), t.cell(2, 3), "sort latency exact");
        assert_eq!(t.cell(2, 4), t.cell(2, 5), "sort energy exact");
    }

    #[test]
    fn exp15_tdma_slows_but_preserves_result_and_energy() {
        let t = exp15_mac_ablation(4, 2, &[8]);
        assert_eq!(t.cell(0, 5), "1");
        assert_eq!(t.cell(1, 5), "1");
        let base: u64 = t.cell(0, 1).parse().unwrap();
        let tdma: u64 = t.cell(1, 1).parse().unwrap();
        assert!(tdma > base, "TDMA must add access latency");
        assert_eq!(t.cell(0, 3), t.cell(1, 3), "energy is MAC-independent");
    }

    #[test]
    fn exp16_refresh_beats_no_refresh() {
        let t = exp16_mission_under_churn(2, 5, 8, &[0, 1]);
        let never: u32 = t.cell(0, 2).parse().unwrap();
        let every: u32 = t.cell(1, 2).parse().unwrap();
        assert!(every > never, "refresh {every} must beat never {never}");
    }

    #[test]
    fn exp17_reports_lifetimes_for_all_configs() {
        let t = exp17_election_lifetime(2, 4, 600.0, 60);
        assert_eq!(t.len(), 4);
        for r in 0..t.len() {
            let rounds: u32 = t.cell(r, 3).parse().unwrap();
            assert!(rounds > 0);
        }
    }

    #[test]
    fn exp18_sampling_reduces_error() {
        let t = exp18_sampling_accuracy(2, &[8], &[2.0]);
        let single: f64 = t.cell(0, 2).parse().unwrap();
        let sampled: f64 = t.cell(0, 3).parse().unwrap();
        assert!(
            sampled < single,
            "averaging 8 samples must beat one: {sampled} vs {single}"
        );
    }

    #[test]
    fn exp19_both_architectures_match_their_closed_forms() {
        let t = exp19_architecture_selection(&[4]);
        for r in 0..t.len() {
            assert_eq!(t.cell(r, 2), t.cell(r, 3), "latency row {r}");
            assert_eq!(t.cell(r, 4), t.cell(r, 5), "energy row {r}");
        }
        // The tree aggregates in fewer virtual hops than the grid.
        let grid_lat: u64 = t.cell(0, 2).parse().unwrap();
        let tree_lat: u64 = t.cell(1, 2).parse().unwrap();
        assert!(tree_lat < grid_lat);
    }

    #[test]
    fn end_to_end_trace_phases_cover_the_run() {
        let doc = record_end_to_end_trace(4, 2, 5, true);
        let meta = doc.meta.clone().expect("trace has a meta line");
        assert_eq!(meta.grid, 4);
        assert_eq!(meta.nodes, 32);
        let names: Vec<&str> = doc.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["topology-emulation", "binding", "application"]);
        let phase_sum: u64 = doc.spans.iter().map(|s| s.duration_ticks()).sum();
        assert_eq!(phase_sum, meta.total_ticks, "phases tile the run");
        assert!(doc.counter("net.messages") > 0);
        assert!(
            !doc.events.is_empty(),
            "trace_events captures the dispatch log"
        );
        assert_eq!(doc.nodes.len(), 32);
        // The export round-trips through JSONL.
        let parsed = wsn_obs::TraceDocument::from_jsonl(&doc.to_jsonl()).unwrap();
        assert_eq!(parsed.spans, doc.spans);
        assert_eq!(parsed.counters, doc.counters);
    }

    #[test]
    fn exp13_all_mappers_feasible() {
        let t = exp13_mapping_ablation(&[8]);
        assert_eq!(t.len(), 4);
    }
}
