//! Machine-readable run snapshots and the perf-baseline regression gate.
//!
//! `run_all` distills each seeded topoquery run into a [`RunSnapshot`]
//! (latency, messages, energy, critical-path shape per grid side), writes
//! the set to `BENCH_topoquery.json`, and diffs it against the committed
//! baseline with [`regression_gate`]: any per-metric drift beyond the
//! tolerance fails the build. The causal layer makes the gate sharp — the
//! critical-path length is an *exact* quantity on seeded runs, so a +50%
//! hop-delay mutation shifts it deterministically and must trip the gate.
//!
//! Two snapshot columns are machine-dependent rather than seeded:
//! `events_per_sec` (simulator throughput) and `peak_rss_bytes` (process
//! memory high-water mark). They are always *recorded* so the baseline
//! documents the scale runs, but only *gated* when the caller opts in
//! (`gate_throughput`) — CI gates them against a same-machine baseline,
//! never against numbers committed from another box. Snapshots marked
//! `scale: true` (the side-512 sharded-kernel row) are likewise exempt
//! from the missing-side check unless the caller re-records them.

use crate::experiments::RunEngine;
use wsn_obs::{extract_critical_path, Json, TraceDocument};

/// Headline numbers of one seeded topoquery run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Grid side (the run simulates a `side x side` virtual grid).
    pub side: u32,
    /// Application span duration in ticks.
    pub latency_ticks: u64,
    /// Application messages (`net.messages`).
    pub messages: u64,
    /// Total energy spent across the network.
    pub energy_total: f64,
    /// Critical-path length in ticks (equals `latency_ticks` on faithful
    /// seeded runs — the exactness invariant).
    pub critpath_ticks: u64,
    /// Radio hops on the critical path.
    pub critpath_hops: u64,
    /// Kernel events dispatched over the whole mission (deterministic).
    pub events: u64,
    /// Events dispatched per wall-clock second (machine-dependent).
    pub events_per_sec: f64,
    /// Process peak RSS after the run, from `/proc/self/status` VmHWM
    /// (machine-dependent; 0 where the proc interface is unavailable).
    pub peak_rss_bytes: u64,
    /// Heap allocations per dispatched event in the steady-state round
    /// of the framed hot-path mission (see
    /// [`crate::hotpath::steady_state_hotpath`]). Deterministic — the
    /// zero-copy contract pins it to exactly `0.0` — but measurable only
    /// under a counting allocator; `-1.0` means unmeasured, and the gate
    /// only compares the column when both sides measured it.
    pub allocs_per_event: f64,
    /// Telemetry overhead on the steady-state hot path: percent slowdown
    /// of the per-event wall cost with the full registry live versus the
    /// bare (disabled-registry) configuration, best-of-run on the same
    /// machine (see [`crate::lint::telemetry_overhead_pct`]). Machine-
    /// dependent and noisy, so recorded but never drift-gated here; the
    /// absolute ≤10% bound is `wsn-lint --obs-gate`'s job. `-1.0` means
    /// unmeasured; small negative measured values are clamped to `0.0`.
    pub telemetry_overhead_pct: f64,
    /// Scale-experiment row (sharded kernel at a large side): exempt
    /// from the default gate's missing-side check so routine `--perf-gate`
    /// runs stay cheap.
    pub scale: bool,
}

/// The process's peak resident-set size in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms or sandboxes
/// without that interface — callers treat 0 as "unmeasured".
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// Distills a recorded trace into a [`RunSnapshot`]. `wall_secs` is the
/// measured wall-clock duration of the recording (throughput
/// denominator); the RSS high-water mark is read at call time.
pub fn snapshot_from_trace(
    side: u32,
    doc: &TraceDocument,
    wall_secs: f64,
) -> Result<RunSnapshot, String> {
    let span = doc
        .spans
        .iter()
        .find(|s| s.name == "application")
        .ok_or("trace has no application span")?;
    let energy = doc
        .gauges
        .iter()
        .find(|(k, _)| k == "energy.total")
        .map(|&(_, v)| v)
        .ok_or("trace has no energy.total gauge")?;
    let events = doc.meta.as_ref().map(|m| m.events).unwrap_or(0);
    let path = extract_critical_path(&doc.causal)?;
    Ok(RunSnapshot {
        side,
        latency_ticks: span.duration_ticks(),
        messages: doc.counter("net.messages"),
        energy_total: energy,
        critpath_ticks: path.total_ticks(),
        critpath_hops: path.hop_count() as u64,
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        allocs_per_event: -1.0,
        telemetry_overhead_pct: -1.0,
        scale: false,
    })
}

/// Renders snapshots as the `BENCH_topoquery.json` document.
pub fn render_snapshots(runs: &[RunSnapshot]) -> String {
    let arr = runs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("side".to_string(), Json::from_u64(u64::from(r.side))),
                ("latency_ticks".to_string(), Json::from_u64(r.latency_ticks)),
                ("messages".to_string(), Json::from_u64(r.messages)),
                ("energy_total".to_string(), Json::Num(r.energy_total)),
                (
                    "critpath_ticks".to_string(),
                    Json::from_u64(r.critpath_ticks),
                ),
                ("critpath_hops".to_string(), Json::from_u64(r.critpath_hops)),
                ("events".to_string(), Json::from_u64(r.events)),
                (
                    "events_per_sec".to_string(),
                    Json::Num((r.events_per_sec * 10.0).round() / 10.0),
                ),
                (
                    "peak_rss_bytes".to_string(),
                    Json::from_u64(r.peak_rss_bytes),
                ),
                (
                    "allocs_per_event".to_string(),
                    Json::Num((r.allocs_per_event * 10000.0).round() / 10000.0),
                ),
                (
                    "telemetry_overhead_pct".to_string(),
                    Json::Num((r.telemetry_overhead_pct * 10.0).round() / 10.0),
                ),
                ("scale".to_string(), Json::Bool(r.scale)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![("runs".to_string(), Json::Arr(arr))]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// Parses a `BENCH_topoquery.json` document. The throughput columns and
/// the scale flag default to zero/false so baselines recorded before
/// those columns existed still parse.
pub fn parse_snapshots(text: &str) -> Result<Vec<RunSnapshot>, String> {
    let doc = Json::parse(text.trim()).map_err(|e| e.to_string())?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("baseline without a runs array")?;
    runs.iter()
        .map(|r| {
            let u = |key: &str| {
                r.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("run without {key}"))
            };
            Ok(RunSnapshot {
                side: u("side")? as u32,
                latency_ticks: u("latency_ticks")?,
                messages: u("messages")?,
                energy_total: r
                    .get("energy_total")
                    .and_then(Json::as_f64)
                    .ok_or("run without energy_total")?,
                critpath_ticks: u("critpath_ticks")?,
                critpath_hops: u("critpath_hops")?,
                events: u("events").unwrap_or(0),
                events_per_sec: r
                    .get("events_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                peak_rss_bytes: u("peak_rss_bytes").unwrap_or(0),
                allocs_per_event: r
                    .get("allocs_per_event")
                    .and_then(Json::as_f64)
                    .unwrap_or(-1.0),
                telemetry_overhead_pct: r
                    .get("telemetry_overhead_pct")
                    .and_then(Json::as_f64)
                    .unwrap_or(-1.0),
                scale: r.get("scale").and_then(Json::as_bool).unwrap_or(false),
            })
        })
        .collect()
}

/// Records the seeded fidelity run at each side and distills snapshots.
/// The multipliers mirror
/// [`record_model_fidelity_trace`](crate::experiments::record_model_fidelity_trace):
/// `1.0`/`1.0` is the faithful run; `hop_cost_multiplier = 1.5` is the
/// +50% hop-delay mutation the gate must catch.
pub fn perf_snapshots(
    sides: &[u32],
    hop_cost_multiplier: f64,
    tx_energy_multiplier: f64,
) -> Result<Vec<RunSnapshot>, String> {
    perf_snapshots_with(
        sides,
        hop_cost_multiplier,
        tx_energy_multiplier,
        RunEngine::Sequential,
        false,
    )
}

/// [`perf_snapshots`] on an explicit engine. `scale` marks the resulting
/// rows as scale-experiment rows (recorded but side-set-exempt in the
/// default gate); scale rows deploy one node per cell — at side 512 that
/// is already a quarter-million physical nodes.
pub fn perf_snapshots_with(
    sides: &[u32],
    hop_cost_multiplier: f64,
    tx_energy_multiplier: f64,
    engine: RunEngine,
    scale: bool,
) -> Result<Vec<RunSnapshot>, String> {
    sides
        .iter()
        .map(|&side| {
            let started = std::time::Instant::now();
            let doc = crate::experiments::record_model_fidelity_trace_with(
                side,
                if scale { 1 } else { 3 },
                5,
                hop_cost_multiplier,
                tx_energy_multiplier,
                engine,
            );
            let wall = started.elapsed().as_secs_f64();
            snapshot_from_trace(side, &doc, wall)
                .map(|mut s| {
                    s.scale = scale;
                    // The per-event allocation and telemetry-overhead columns
                    // ride the standard rows only: the steady-state
                    // framed mission is a fixed side-`side` workload,
                    // pointless (and slow) to repeat at scale sides
                    // outside the frame envelope.
                    if !scale && wsn_core::framed_payload_fits(side) {
                        s.allocs_per_event = crate::hotpath::steady_state_hotpath(side, 100, 2)
                            .allocs_per_event()
                            .unwrap_or(-1.0);
                        s.telemetry_overhead_pct =
                            crate::lint::telemetry_overhead_pct(side, 100, 1);
                    }
                    s
                })
                .map_err(|e| format!("side {side}: {e}"))
        })
        .collect()
}

fn drift_pct(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((current - baseline) / baseline * 100.0).abs()
    }
}

/// Diffs `current` against `baseline`, metric by metric. Returns the
/// rendered report; `Err` when any gated metric drifts more than
/// `tolerance_pct` percent (or a non-scale side is missing from either
/// set).
///
/// Seeded metrics (latency, messages, energy, critical path, events) are
/// always gated. The machine-dependent throughput metrics
/// (`events_per_sec`, `peak_rss_bytes`) are reported as `info` unless
/// `gate_throughput` is set — only meaningful against a baseline recorded
/// on the same machine. Rows flagged `scale` are skipped (not failed)
/// when the other set lacks them.
pub fn regression_gate(
    current: &[RunSnapshot],
    baseline: &[RunSnapshot],
    tolerance_pct: f64,
    gate_throughput: bool,
) -> Result<String, String> {
    let mut report = String::new();
    let mut failures = 0usize;
    for base in baseline {
        let Some(cur) = current.iter().find(|r| r.side == base.side) else {
            if base.scale {
                report.push_str(&format!(
                    "side {}: scale row not re-recorded (skipped)\n",
                    base.side
                ));
            } else {
                report.push_str(&format!("side {}: MISSING from current run\n", base.side));
                failures += 1;
            }
            continue;
        };
        // (name, baseline, current, gated)
        let metrics: [(&str, f64, f64, bool); 10] = [
            (
                "latency_ticks",
                base.latency_ticks as f64,
                cur.latency_ticks as f64,
                true,
            ),
            ("messages", base.messages as f64, cur.messages as f64, true),
            ("energy_total", base.energy_total, cur.energy_total, true),
            (
                "critpath_ticks",
                base.critpath_ticks as f64,
                cur.critpath_ticks as f64,
                true,
            ),
            (
                "critpath_hops",
                base.critpath_hops as f64,
                cur.critpath_hops as f64,
                true,
            ),
            ("events", base.events as f64, cur.events as f64, true),
            (
                "events_per_sec",
                base.events_per_sec,
                cur.events_per_sec,
                gate_throughput,
            ),
            (
                "peak_rss_bytes",
                base.peak_rss_bytes as f64,
                cur.peak_rss_bytes as f64,
                gate_throughput,
            ),
            // Deterministic (a seeded count, not wall clock), so gated
            // like latency — but only when both sides measured it
            // (`-1.0` = no counting allocator was installed).
            (
                "allocs_per_event",
                base.allocs_per_event,
                cur.allocs_per_event,
                base.allocs_per_event >= 0.0 && cur.allocs_per_event >= 0.0,
            ),
            // Wall-clock ratio: recorded for the record, never
            // drift-gated (the absolute bound lives in --obs-gate).
            (
                "telemetry_overhead_pct",
                base.telemetry_overhead_pct,
                cur.telemetry_overhead_pct,
                false,
            ),
        ];
        for (name, b, c, gated) in metrics {
            let drift = drift_pct(b, c);
            let verdict = if !gated {
                "info"
            } else if drift > tolerance_pct {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            report.push_str(&format!(
                "side {}: {name:<16} {b:>12.1} -> {c:<12.1} drift {drift:>6.1}%  {verdict}\n",
                base.side
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|r| r.side == cur.side) {
            if cur.scale {
                report.push_str(&format!(
                    "side {}: new scale row (re-commit BENCH_topoquery.json to keep it)\n",
                    cur.side
                ));
            } else {
                report.push_str(&format!(
                    "side {}: not in baseline (re-commit BENCH_topoquery.json)\n",
                    cur.side
                ));
                failures += 1;
            }
        }
    }
    if failures > 0 {
        Err(format!(
            "{report}perf baseline gate: {failures} metric(s) beyond +/-{tolerance_pct}%"
        ))
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(side: u32) -> RunSnapshot {
        RunSnapshot {
            side,
            latency_ticks: 31,
            messages: 20,
            energy_total: 99.0,
            critpath_ticks: 31,
            critpath_hops: 3,
            events: 500,
            events_per_sec: 120000.0,
            peak_rss_bytes: 40 * 1024 * 1024,
            allocs_per_event: 0.0,
            telemetry_overhead_pct: 3.5,
            scale: false,
        }
    }

    fn scale_snap(side: u32) -> RunSnapshot {
        RunSnapshot {
            scale: true,
            ..snap(side)
        }
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let runs = vec![snap(4), snap(8), scale_snap(512)];
        let text = render_snapshots(&runs);
        let parsed = parse_snapshots(&text).unwrap();
        assert_eq!(parsed, runs);
    }

    #[test]
    fn legacy_baseline_without_throughput_columns_still_parses() {
        let text = r#"{"runs": [{"side": 4, "latency_ticks": 31, "messages": 20,
            "energy_total": 99.0, "critpath_ticks": 31, "critpath_hops": 3}]}"#;
        let parsed = parse_snapshots(text).unwrap();
        assert_eq!(parsed[0].events, 0);
        assert_eq!(parsed[0].events_per_sec, 0.0);
        assert_eq!(parsed[0].peak_rss_bytes, 0);
        assert_eq!(parsed[0].allocs_per_event, -1.0);
        assert_eq!(parsed[0].telemetry_overhead_pct, -1.0);
        assert!(!parsed[0].scale);
    }

    #[test]
    fn gate_passes_identical_runs_and_reports_every_metric() {
        let runs = vec![snap(4)];
        let report = regression_gate(&runs, &runs, 10.0, false).unwrap();
        assert_eq!(report.matches(" ok\n").count(), 7);
        assert_eq!(report.matches(" info\n").count(), 3);
        assert!(!report.contains("FAIL"));
    }

    #[test]
    fn any_steady_state_allocation_trips_the_gate() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        // The committed contract is exactly zero; a single allocation
        // per thousand events is infinite drift from it.
        current[0].allocs_per_event = 0.001;
        let err = regression_gate(&current, &baseline, 10.0, false).unwrap_err();
        assert!(err.contains("allocs_per_event"), "{err}");
        assert!(err.contains("FAIL"), "{err}");
        // Unmeasured on either side: informational, never gated.
        current[0].allocs_per_event = -1.0;
        let report = regression_gate(&current, &baseline, 10.0, false).unwrap();
        assert!(!report.contains("FAIL"), "{report}");
    }

    #[test]
    fn gate_fails_on_latency_drift_beyond_tolerance() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        current[0].latency_ticks = 47; // the +50% hop-delay shape
        current[0].critpath_ticks = 47;
        let err = regression_gate(&current, &baseline, 10.0, false).unwrap_err();
        assert!(err.contains("latency_ticks"), "{err}");
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("beyond"), "{err}");
    }

    #[test]
    fn gate_fails_on_missing_or_extra_sides() {
        let baseline = vec![snap(4), snap(8)];
        let current = vec![snap(4), snap(16)];
        let err = regression_gate(&current, &baseline, 10.0, false).unwrap_err();
        assert!(err.contains("side 8: MISSING"), "{err}");
        assert!(err.contains("side 16: not in baseline"), "{err}");
    }

    #[test]
    fn scale_rows_are_exempt_from_the_side_set_check() {
        let baseline = vec![snap(4), scale_snap(512)];
        let current = vec![snap(4)];
        let report = regression_gate(&current, &baseline, 10.0, false).unwrap();
        assert!(
            report.contains("side 512: scale row not re-recorded"),
            "{report}"
        );
        // And a freshly recorded scale row not yet committed passes too.
        let report = regression_gate(&[snap(4), scale_snap(512)], &[snap(4)], 10.0, false).unwrap();
        assert!(report.contains("side 512: new scale row"), "{report}");
    }

    #[test]
    fn throughput_gating_is_opt_in() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        current[0].events_per_sec = 10.0; // collapsed throughput
        current[0].peak_rss_bytes = 100 * 1024 * 1024 * 1024; // blown RSS
        assert!(
            regression_gate(&current, &baseline, 10.0, false).is_ok(),
            "throughput drift must not fail the default gate"
        );
        let err = regression_gate(&current, &baseline, 10.0, true).unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
        assert!(err.contains("peak_rss_bytes"), "{err}");
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        current[0].energy_total = 101.0; // ~2% drift
        assert!(regression_gate(&current, &baseline, 10.0, false).is_ok());
    }

    #[test]
    fn peak_rss_reads_a_plausible_value_on_linux() {
        let rss = peak_rss_bytes();
        // On Linux this process certainly exceeds 1 MiB; elsewhere 0 is
        // the documented "unmeasured" value.
        assert!(rss == 0 || rss > 1024 * 1024, "implausible VmHWM {rss}");
    }
}
