//! Machine-readable run snapshots and the perf-baseline regression gate.
//!
//! `run_all` distills each seeded topoquery run into a [`RunSnapshot`]
//! (latency, messages, energy, critical-path shape per grid side), writes
//! the set to `BENCH_topoquery.json`, and diffs it against the committed
//! baseline with [`regression_gate`]: any per-metric drift beyond the
//! tolerance fails the build. The causal layer makes the gate sharp — the
//! critical-path length is an *exact* quantity on seeded runs, so a +50%
//! hop-delay mutation shifts it deterministically and must trip the gate.

use wsn_obs::{extract_critical_path, Json, TraceDocument};

/// Headline numbers of one seeded topoquery run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Grid side (the run simulates a `side x side` virtual grid).
    pub side: u32,
    /// Application span duration in ticks.
    pub latency_ticks: u64,
    /// Application messages (`net.messages`).
    pub messages: u64,
    /// Total energy spent across the network.
    pub energy_total: f64,
    /// Critical-path length in ticks (equals `latency_ticks` on faithful
    /// seeded runs — the exactness invariant).
    pub critpath_ticks: u64,
    /// Radio hops on the critical path.
    pub critpath_hops: u64,
}

/// Distills a recorded trace into a [`RunSnapshot`].
pub fn snapshot_from_trace(side: u32, doc: &TraceDocument) -> Result<RunSnapshot, String> {
    let span = doc
        .spans
        .iter()
        .find(|s| s.name == "application")
        .ok_or("trace has no application span")?;
    let energy = doc
        .gauges
        .iter()
        .find(|(k, _)| k == "energy.total")
        .map(|&(_, v)| v)
        .ok_or("trace has no energy.total gauge")?;
    let path = extract_critical_path(&doc.causal)?;
    Ok(RunSnapshot {
        side,
        latency_ticks: span.duration_ticks(),
        messages: doc.counter("net.messages"),
        energy_total: energy,
        critpath_ticks: path.total_ticks(),
        critpath_hops: path.hop_count() as u64,
    })
}

/// Renders snapshots as the `BENCH_topoquery.json` document.
pub fn render_snapshots(runs: &[RunSnapshot]) -> String {
    let arr = runs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("side".to_string(), Json::from_u64(u64::from(r.side))),
                ("latency_ticks".to_string(), Json::from_u64(r.latency_ticks)),
                ("messages".to_string(), Json::from_u64(r.messages)),
                ("energy_total".to_string(), Json::Num(r.energy_total)),
                (
                    "critpath_ticks".to_string(),
                    Json::from_u64(r.critpath_ticks),
                ),
                ("critpath_hops".to_string(), Json::from_u64(r.critpath_hops)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![("runs".to_string(), Json::Arr(arr))]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// Parses a `BENCH_topoquery.json` document.
pub fn parse_snapshots(text: &str) -> Result<Vec<RunSnapshot>, String> {
    let doc = Json::parse(text.trim()).map_err(|e| e.to_string())?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("baseline without a runs array")?;
    runs.iter()
        .map(|r| {
            let u = |key: &str| {
                r.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("run without {key}"))
            };
            Ok(RunSnapshot {
                side: u("side")? as u32,
                latency_ticks: u("latency_ticks")?,
                messages: u("messages")?,
                energy_total: r
                    .get("energy_total")
                    .and_then(Json::as_f64)
                    .ok_or("run without energy_total")?,
                critpath_ticks: u("critpath_ticks")?,
                critpath_hops: u("critpath_hops")?,
            })
        })
        .collect()
}

/// Records the seeded fidelity run at each side and distills snapshots.
/// The multipliers mirror
/// [`record_model_fidelity_trace`](crate::experiments::record_model_fidelity_trace):
/// `1.0`/`1.0` is the faithful run; `hop_cost_multiplier = 1.5` is the
/// +50% hop-delay mutation the gate must catch.
pub fn perf_snapshots(
    sides: &[u32],
    hop_cost_multiplier: f64,
    tx_energy_multiplier: f64,
) -> Result<Vec<RunSnapshot>, String> {
    sides
        .iter()
        .map(|&side| {
            let doc = crate::experiments::record_model_fidelity_trace(
                side,
                3,
                5,
                hop_cost_multiplier,
                tx_energy_multiplier,
            );
            snapshot_from_trace(side, &doc).map_err(|e| format!("side {side}: {e}"))
        })
        .collect()
}

fn drift_pct(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((current - baseline) / baseline * 100.0).abs()
    }
}

/// Diffs `current` against `baseline`, metric by metric. Returns the
/// rendered report; `Err` when any metric drifts more than
/// `tolerance_pct` percent (or a side is missing from either set).
pub fn regression_gate(
    current: &[RunSnapshot],
    baseline: &[RunSnapshot],
    tolerance_pct: f64,
) -> Result<String, String> {
    let mut report = String::new();
    let mut failures = 0usize;
    for base in baseline {
        let Some(cur) = current.iter().find(|r| r.side == base.side) else {
            report.push_str(&format!("side {}: MISSING from current run\n", base.side));
            failures += 1;
            continue;
        };
        let metrics: [(&str, f64, f64); 5] = [
            (
                "latency_ticks",
                base.latency_ticks as f64,
                cur.latency_ticks as f64,
            ),
            ("messages", base.messages as f64, cur.messages as f64),
            ("energy_total", base.energy_total, cur.energy_total),
            (
                "critpath_ticks",
                base.critpath_ticks as f64,
                cur.critpath_ticks as f64,
            ),
            (
                "critpath_hops",
                base.critpath_hops as f64,
                cur.critpath_hops as f64,
            ),
        ];
        for (name, b, c) in metrics {
            let drift = drift_pct(b, c);
            let verdict = if drift > tolerance_pct { "FAIL" } else { "ok" };
            if drift > tolerance_pct {
                failures += 1;
            }
            report.push_str(&format!(
                "side {}: {name:<16} {b:>10} -> {c:<10} drift {drift:>6.1}%  {verdict}\n",
                base.side
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|r| r.side == cur.side) {
            report.push_str(&format!(
                "side {}: not in baseline (re-commit BENCH_topoquery.json)\n",
                cur.side
            ));
            failures += 1;
        }
    }
    if failures > 0 {
        Err(format!(
            "{report}perf baseline gate: {failures} metric(s) beyond +/-{tolerance_pct}%"
        ))
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(side: u32) -> RunSnapshot {
        RunSnapshot {
            side,
            latency_ticks: 31,
            messages: 20,
            energy_total: 99.0,
            critpath_ticks: 31,
            critpath_hops: 3,
        }
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let runs = vec![snap(4), snap(8)];
        let text = render_snapshots(&runs);
        let parsed = parse_snapshots(&text).unwrap();
        assert_eq!(parsed, runs);
    }

    #[test]
    fn gate_passes_identical_runs_and_reports_every_metric() {
        let runs = vec![snap(4)];
        let report = regression_gate(&runs, &runs, 10.0).unwrap();
        assert_eq!(report.matches(" ok\n").count(), 5);
        assert!(!report.contains("FAIL"));
    }

    #[test]
    fn gate_fails_on_latency_drift_beyond_tolerance() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        current[0].latency_ticks = 47; // the +50% hop-delay shape
        current[0].critpath_ticks = 47;
        let err = regression_gate(&current, &baseline, 10.0).unwrap_err();
        assert!(err.contains("latency_ticks"), "{err}");
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("beyond"), "{err}");
    }

    #[test]
    fn gate_fails_on_missing_or_extra_sides() {
        let baseline = vec![snap(4), snap(8)];
        let current = vec![snap(4), snap(16)];
        let err = regression_gate(&current, &baseline, 10.0).unwrap_err();
        assert!(err.contains("side 8: MISSING"), "{err}");
        assert!(err.contains("side 16: not in baseline"), "{err}");
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let baseline = vec![snap(4)];
        let mut current = vec![snap(4)];
        current[0].energy_total = 101.0; // ~2% drift
        assert!(regression_gate(&current, &baseline, 10.0).is_ok());
    }
}
