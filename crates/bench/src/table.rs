//! Plain-text/CSV experiment tables.

use std::fmt;

/// A titled table with aligned text rendering and CSV export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// A cell by (row, column) index.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// CSV rendering (headers + rows; fields quoted when they contain
    /// separators).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", line.join("  "))?;
        writeln!(f, "{}", "-".repeat(line.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats an f64 with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_columns() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "10.5".into()]);
        t.row(vec!["22".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains(" a  metric"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 0), "22");
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("q", &["x", "note"]);
        t.row(vec!["1".into(), "plain".into()]);
        t.row(vec!["2".into(), "has,comma".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("x,note\n"));
        assert!(csv.contains("\"has,comma\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(3.0, 0), "3");
    }
}
