//! Regenerates Figure 2: the quad-tree representation of the algorithm.
fn main() {
    print!("{}", wsn_bench::fig2_quadtree());
}
