//! EXP-17: election policy vs system lifetime under energy budgets.
fn main() {
    wsn_bench::emit(&wsn_bench::exp17_election_lifetime(4, 4, 3000.0, 400));
}
