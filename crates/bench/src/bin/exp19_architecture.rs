//! EXP-19: grid vs tree virtual architecture.
fn main() {
    wsn_bench::emit(&wsn_bench::exp19_architecture_selection(&[4, 8, 16, 32]));
}
