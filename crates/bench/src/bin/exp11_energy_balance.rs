//! EXP-11: leader placement vs energy balance across rounds.
fn main() {
    wsn_bench::emit(&wsn_bench::exp11_energy_balance(16, 64));
}
