//! EXP-5: O(sqrt N) latency scaling of the divide-and-conquer algorithm.
fn main() {
    wsn_bench::emit(&wsn_bench::exp5_latency_scaling(&[4, 8, 16, 32, 64]));
}
