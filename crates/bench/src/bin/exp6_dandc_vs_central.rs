//! EXP-6: in-network divide-and-conquer vs centralized collection.
fn main() {
    wsn_bench::emit(&wsn_bench::exp6_dandc_vs_central(
        &[4, 8, 16, 32],
        &[0.05, 0.2, 0.5],
    ));
}
