//! `netscope` — inspect a wsn JSONL trace.
//!
//! Reads a trace produced by [`wsn_runtime::PhysicalRuntime::record_trace`]
//! (or any conforming JSONL document) and prints the phase breakdown, span
//! tree, registry counters, histogram summaries, the hottest nodes by
//! energy, and — when the trace carries kernel events — an activity
//! timeline.
//!
//! ```text
//! netscope <trace.jsonl> [--top K] [--no-timeline]
//! netscope --demo [--side N] [--per-cell K] [--seed S] [--out FILE] [--top K]
//! netscope critical-path <trace.jsonl> [--width W]
//! netscope critical-path --demo [--side N] [--per-cell K] [--seed S] [--width W]
//! netscope shards <trace.jsonl>
//! netscope shards --demo [--side N] [--per-cell K] [--seed S] [--cut-level L]
//! netscope flight <dump.jsonl> [--width W]
//! netscope flight --demo [--side N] [--per-cell K] [--seed S] [--cut-level L] [--width W]
//! netscope diff <a.jsonl> <b.jsonl>
//! ```
//!
//! `--demo` records a fresh end-to-end run (topology emulation → binding →
//! divide-and-conquer application, 16×16 virtual grid by default) and
//! inspects it in place; `--out` additionally writes the JSONL to a file.
//! On power-of-two demo grids the report also re-runs the mission on the
//! sharded engine to show the per-shard telemetry table and a sample
//! flight-recorder dump.
//!
//! `critical-path` walks the trace's causal log back from the final
//! exfiltration, renders the per-hop/per-merge-level waterfall, and
//! cross-checks the telescoped path length against the measured
//! application span — exiting non-zero on a mismatch, so CI can assert
//! the exactness invariant. `diff` prints per-counter/per-span deltas
//! between two traces.
//!
//! `shards` decodes a shard-metrics trace (`wsn-lint
//! --record-shard-metrics-trace`, or its own `--demo` run) into the
//! per-shard utilization/skew/barrier-stall table, exiting 1 when the
//! per-shard counters fail to reconcile with the kernel's dispatch total.
//! `flight` renders a flight-recorder dump (`wsn-lint
//! --record-flight-dump`, or a crash artifact) as a per-dispatch
//! waterfall. Both exit 2 on unreadable input.

use std::process::ExitCode;
use wsn_obs::{
    extract_critical_path, render_span_forest, render_timeline, render_trace_diff, shard_table,
    FlightDump, TimelineConfig, TraceDocument,
};

struct Options {
    input: Option<String>,
    demo: bool,
    side: u32,
    per_cell: usize,
    seed: u64,
    out: Option<String>,
    top: usize,
    timeline: bool,
}

const USAGE: &str = "usage: netscope <trace.jsonl> [--top K] [--no-timeline]
       netscope --demo [--side N] [--per-cell K] [--seed S] [--out FILE] [--top K]
       netscope critical-path <trace.jsonl> [--width W]
       netscope critical-path --demo [--side N] [--per-cell K] [--seed S] [--width W]
       netscope shards <trace.jsonl>
       netscope shards --demo [--side N] [--per-cell K] [--seed S] [--cut-level L]
       netscope flight <dump.jsonl> [--width W]
       netscope flight --demo [--side N] [--per-cell K] [--seed S] [--cut-level L] [--width W]
       netscope diff <a.jsonl> <b.jsonl>";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        demo: false,
        side: 16,
        per_cell: 2,
        seed: 5,
        out: None,
        top: 8,
        timeline: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--demo" => opts.demo = true,
            "--side" => opts.side = parse_num(&value("--side")?)?,
            "--per-cell" => opts.per_cell = parse_num(&value("--per-cell")?)?,
            "--seed" => opts.seed = parse_num(&value("--seed")?)?,
            "--out" => opts.out = Some(value("--out")?),
            "--top" => opts.top = parse_num(&value("--top")?)?,
            "--no-timeline" => opts.timeline = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') && opts.input.is_none() => {
                opts.input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if opts.demo == opts.input.is_some() {
        return Err(format!(
            "pass exactly one of a trace file or --demo\n{USAGE}"
        ));
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

fn load_trace(path: &str) -> Result<TraceDocument, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TraceDocument::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// `netscope critical-path …`: waterfall + exactness verdict. Non-zero
/// exit when the telescoped path length disagrees with the measured
/// application span (or the trace has no causal log).
fn cmd_critical_path(args: &[String]) -> Result<String, String> {
    let mut input = None;
    let mut demo = false;
    let mut side: u32 = 4;
    let mut per_cell: usize = 3;
    let mut seed: u64 = 5;
    let mut width: usize = 64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--demo" => demo = true,
            "--side" => side = parse_num(&value("--side")?)?,
            "--per-cell" => per_cell = parse_num(&value("--per-cell")?)?,
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--width" => width = parse_num(&value("--width")?)?,
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let doc = match (&input, demo) {
        (Some(path), false) => load_trace(path)?,
        (None, true) => wsn_bench::record_end_to_end_trace(side, per_cell, seed, false),
        _ => {
            return Err(format!(
                "pass exactly one of a trace file or --demo\n{USAGE}"
            ))
        }
    };
    if doc.causal.is_empty() {
        return Err("trace carries no causal events (cev records) — \
                    record it with causal tracing enabled"
            .to_string());
    }
    let path = extract_critical_path(&doc.causal)?;
    let mut out = path.render_waterfall(width);
    let span = doc.spans.iter().find(|s| s.name == "application");
    match span {
        Some(span) => {
            let measured = span.duration_ticks();
            let verdict = if path.total_ticks() == measured
                && path.segment_sum() == measured
                && path.start == span.start
                && path.end == span.end
            {
                "EXACT"
            } else {
                "MISMATCH"
            };
            out.push_str(&format!(
                "application span {}..{} ({measured} ticks) vs critical path {} ticks — {verdict}\n",
                span.start.ticks(),
                span.end.ticks(),
                path.total_ticks(),
            ));
            if verdict == "MISMATCH" {
                return Err(out);
            }
        }
        None => {
            out.push_str("(no application span in trace; cannot cross-check)\n");
            return Err(out);
        }
    }
    Ok(out)
}

/// `netscope shards …`: the per-shard utilization/skew/barrier-stall
/// table of a shard-metrics trace. Returns the rendered table plus the
/// reconciliation verdict (`false` → exit 1); `Err` is a usage or decode
/// problem (exit 2).
fn cmd_shards(args: &[String]) -> Result<(String, bool), String> {
    let mut input = None;
    let mut demo = false;
    let mut side: u32 = 4;
    let mut per_cell: usize = 3;
    let mut seed: u64 = 5;
    let mut cut: u8 = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--demo" => demo = true,
            "--side" => side = parse_num(&value("--side")?)?,
            "--per-cell" => per_cell = parse_num(&value("--per-cell")?)?,
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--cut-level" => cut = parse_num(&value("--cut-level")?)?,
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let doc = match (&input, demo) {
        (Some(path), false) => load_trace(path)?,
        (None, true) => {
            validate_shard_demo(side, cut)?;
            wsn_bench::experiments::record_shard_metrics_trace(side, per_cell, seed, cut, false)
        }
        _ => {
            return Err(format!(
                "pass exactly one of a trace file or --demo\n{USAGE}"
            ))
        }
    };
    let table = shard_table(&doc)?;
    Ok((table.render(), table.reconciled))
}

/// `netscope flight …`: renders a flight-recorder dump as a
/// per-dispatch waterfall. `Err` is a usage or decode problem (exit 2).
fn cmd_flight(args: &[String]) -> Result<String, String> {
    let mut input = None;
    let mut demo = false;
    let mut side: u32 = 4;
    let mut per_cell: usize = 3;
    let mut seed: u64 = 5;
    let mut cut: u8 = 1;
    let mut width: usize = 32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--demo" => demo = true,
            "--side" => side = parse_num(&value("--side")?)?,
            "--per-cell" => per_cell = parse_num(&value("--per-cell")?)?,
            "--seed" => seed = parse_num(&value("--seed")?)?,
            "--cut-level" => cut = parse_num(&value("--cut-level")?)?,
            "--width" => width = parse_num(&value("--width")?)?,
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let dump = match (&input, demo) {
        (Some(path), false) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            FlightDump::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?
        }
        (None, true) => {
            validate_shard_demo(side, cut)?;
            wsn_bench::experiments::record_flight_dump(side, per_cell, seed, cut, 8, "demo")
        }
        _ => {
            return Err(format!(
                "pass exactly one of a dump file or --demo\n{USAGE}"
            ))
        }
    };
    Ok(dump.render_waterfall(width))
}

/// The sharded demo runs need a quad-tree plan: power-of-two side, cut
/// within the depth.
fn validate_shard_demo(side: u32, cut: u8) -> Result<(), String> {
    if side < 2 || !side.is_power_of_two() {
        return Err(format!("--side {side} is not a power of two >= 2"));
    }
    let depth = side.trailing_zeros() as u8;
    if cut < 1 || cut > depth {
        return Err(format!("--cut-level {cut} is outside 1..={depth}"));
    }
    Ok(())
}

/// `netscope diff a.jsonl b.jsonl`: per-counter/per-span deltas.
fn cmd_diff(args: &[String]) -> Result<String, String> {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if files.len() != 2 || args.len() != 2 {
        return Err(format!("diff takes exactly two trace files\n{USAGE}"));
    }
    let a = load_trace(files[0])?;
    let b = load_trace(files[1])?;
    Ok(render_trace_diff(&a, &b))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("critical-path") => {
            return match cmd_critical_path(&argv[1..]) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("diff") => {
            return match cmd_diff(&argv[1..]) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("shards") => {
            return match cmd_shards(&argv[1..]) {
                Ok((out, reconciled)) => {
                    print!("{out}");
                    if reconciled {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::from(2)
                }
            }
        }
        Some("flight") => {
            return match cmd_flight(&argv[1..]) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {}
    }
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let doc = if opts.demo {
        eprintln!(
            "recording end-to-end demo trace: {}x{} grid, {} nodes/cell, seed {}",
            opts.side, opts.side, opts.per_cell, opts.seed
        );
        let doc =
            wsn_bench::record_end_to_end_trace(opts.side, opts.per_cell, opts.seed, opts.timeline);
        if let Some(path) = &opts.out {
            if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        doc
    } else {
        let path = opts.input.as_deref().unwrap();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match TraceDocument::from_jsonl(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    print!("{}", report(&doc, opts.top, opts.timeline));
    // Demo runs on a quad-tree-shardable grid also show the engine's
    // per-shard telemetry and a sample flight-recorder dump, so the
    // demo exercises every view netscope has.
    if opts.demo && opts.side >= 2 && opts.side.is_power_of_two() {
        let shard_doc = wsn_bench::experiments::record_shard_metrics_trace(
            opts.side,
            opts.per_cell,
            opts.seed,
            1,
            false,
        );
        match shard_table(&shard_doc) {
            Ok(table) => print!("\n== shard telemetry (cut level 1) ==\n{}", table.render()),
            Err(e) => eprintln!("shard telemetry unavailable: {e}"),
        }
        let dump = wsn_bench::experiments::record_flight_dump(
            opts.side,
            opts.per_cell,
            opts.seed,
            1,
            8,
            "demo",
        );
        print!(
            "\n== flight dump (sample, capacity 8/shard) ==\n{}",
            dump.render_waterfall(32)
        );
    }
    ExitCode::SUCCESS
}

/// Renders the full inspection report for a trace document.
fn report(doc: &TraceDocument, top: usize, timeline: bool) -> String {
    let mut out = String::new();
    let push = |out: &mut String, section: &str| {
        out.push_str("\n== ");
        out.push_str(section);
        out.push_str(" ==\n");
    };

    if let Some(meta) = &doc.meta {
        out.push_str(&format!(
            "trace: {g}x{g} grid, {n} nodes, seed {s}, {t} ticks, {e} events\n",
            g = meta.grid,
            n = meta.nodes,
            s = meta.seed,
            t = meta.total_ticks,
            e = meta.events,
        ));
    } else {
        out.push_str("trace: (no meta record)\n");
    }

    if !doc.spans.is_empty() {
        push(&mut out, "phases");
        let total: u64 = doc.spans.iter().map(|s| s.duration_ticks()).sum();
        for span in &doc.spans {
            let d = span.duration_ticks();
            out.push_str(&format!(
                "{:<22} {:>6}..{:<6} {:>7} ticks {:>5.1}%  {:>8} events\n",
                span.name,
                span.start.ticks(),
                span.end.ticks(),
                d,
                100.0 * d as f64 / total.max(1) as f64,
                span.events,
            ));
        }
        if let Some(meta) = &doc.meta {
            let verdict = if total == meta.total_ticks {
                "exact"
            } else {
                "MISMATCH"
            };
            out.push_str(&format!(
                "phase sum {total} vs run total {} — {verdict}\n",
                meta.total_ticks
            ));
        }
        push(&mut out, "span tree");
        out.push_str(&render_span_forest(&doc.spans));
    }

    if !doc.counters.is_empty() {
        push(&mut out, "counters");
        let mut counters = doc.counters.clone();
        counters.sort();
        for (name, value) in counters {
            out.push_str(&format!("{name:<28} {value:>10}\n"));
        }
    }
    if !doc.gauges.is_empty() {
        push(&mut out, "gauges");
        let mut gauges = doc.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in gauges {
            out.push_str(&format!("{name:<28} {value:>10.1}\n"));
        }
    }
    if !doc.histograms.is_empty() {
        push(&mut out, "histograms");
        out.push_str(&format!(
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "name", "count", "mean", "p50", "p99", "max"
        ));
        for (name, h) in &doc.histograms {
            out.push_str(&format!(
                "{:<28} {:>8} {:>8.1} {:>8.1} {:>8.1} {:>8.1}\n",
                name,
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }

    if !doc.nodes.is_empty() {
        push(&mut out, &format!("hottest {top} nodes (by energy)"));
        let mut nodes = doc.nodes.clone();
        nodes.sort_by(|a, b| b.energy.total_cmp(&a.energy).then(a.id.cmp(&b.id)));
        nodes.truncate(top);
        out.push_str(&format!(
            "{:>6} {:>10} {:>8} {:>8}\n",
            "node", "energy", "tx", "rx"
        ));
        for n in &nodes {
            out.push_str(&format!(
                "{:>6} {:>10.1} {:>8} {:>8}\n",
                n.id, n.energy, n.tx, n.rx
            ));
        }
    }

    if timeline && !doc.events.is_empty() {
        push(&mut out, "activity timeline");
        out.push_str(&render_timeline(&doc.events, &TimelineConfig::default()));
    }

    if !doc.causal.is_empty() {
        push(&mut out, "critical path");
        match extract_critical_path(&doc.causal) {
            Ok(path) => out.push_str(&path.render_waterfall(64)),
            Err(e) => out.push_str(&format!("(not extractable: {e})\n")),
        }
    }
    out
}
