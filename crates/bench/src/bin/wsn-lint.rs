//! `wsn-lint` — static analysis CLI for synthesized WSN artifacts.
//!
//! ```text
//! wsn-lint                         lint the paper's Figure-4 deployment (depth 2)
//! wsn-lint --fig4 [depth]          same, at an explicit hierarchy depth
//! wsn-lint --program <file.json>   lint a serialized program (JSON model)
//! wsn-lint --emit-json-program [depth]   print the Figure-4 program as JSON
//! wsn-lint --certify [depth]       derive the symbolic §4 cost certificate
//! wsn-lint --conform <trace.jsonl> check a measured trace against the certificate
//! wsn-lint --record-fidelity-trace <out.jsonl> [depth]
//!                                  record the seeded model-fidelity run as JSONL;
//!                                  --mutate-hop-cost <k> / --mutate-tx-energy <x>
//!                                  deliberately mis-price the runtime radio
//! wsn-lint --perf-baseline <out.json>
//!                                  record the seeded perf snapshots (sides 4, 8)
//! wsn-lint --perf-gate <baseline.json> [--tolerance pct]
//!                                  re-record the snapshots and fail on drift;
//!                                  the mutation flags apply here too, so CI can
//!                                  prove an injected +50% hop delay trips it
//! wsn-lint --check                 CI gate: paper deployments must be error-free
//! wsn-lint --codes                 list the diagnostic catalog
//! ```
//!
//! `--json` switches the report to JSON. Exit status: 0 when no
//! error-severity diagnostics were found, 1 otherwise, 2 on usage or
//! decode errors.

use std::process::ExitCode;
use wsn_analyze::{Code, Diagnostics};
use wsn_bench::lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    // Flags that consume the following argument as their value.
    const VALUE_FLAGS: [&str; 3] = ["--mutate-hop-cost", "--mutate-tx-energy", "--tolerance"];
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") || a.as_str() == "--" {
            positional.push(a);
        }
    }

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--codes") {
        for &code in Code::all() {
            println!("{code}  {}", code.description());
        }
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--emit-json-program") {
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        println!("{}", lint::figure4_program_json(depth));
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--certify") {
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let (cert, diags) = lint::certify_figure4(depth);
        if json {
            println!("{}", diags.to_json().render());
        } else {
            print!("{}", cert.render_text());
            print!("{}", diags.render_text());
        }
        return if diags.has_errors() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.iter().any(|a| a == "--conform") {
        let Some(path) = positional.first() else {
            return usage_error("--conform needs a trace file path");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::conform_trace_text(&text) {
            Ok((cert, diags)) => {
                if json {
                    println!("{}", diags.to_json().render());
                } else {
                    print!("{}", cert.render_text());
                    if diags.is_empty() {
                        println!("trace conforms: every measured quantity is inside its bound");
                    } else {
                        print!("{}", diags.render_text());
                    }
                }
                if diags.has_errors() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    if args.iter().any(|a| a == "--record-fidelity-trace") {
        let Some(path) = positional.first() else {
            return usage_error("--record-fidelity-trace needs an output path");
        };
        let depth = match parse_depth(&positional[1..]) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        let hop = match parse_flag_value(&args, "--mutate-hop-cost", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tx = match parse_flag_value(&args, "--mutate-tx-energy", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let side = 2u32.pow(u32::from(depth));
        let doc = wsn_bench::experiments::record_model_fidelity_trace(side, 3, 5, hop, tx);
        if let Err(e) = std::fs::write(path, doc.to_jsonl()) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!(
            "recorded side-{side} model-fidelity trace to {path} \
             (hop-cost ×{hop}, tx-energy ×{tx})"
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--perf-baseline") {
        let Some(path) = positional.first() else {
            return usage_error("--perf-baseline needs an output path");
        };
        let snaps = match wsn_bench::perfbase::perf_snapshots(&[4, 8], 1.0, 1.0) {
            Ok(s) => s,
            Err(e) => return usage_error(&e),
        };
        if let Err(e) = std::fs::write(path, wsn_bench::perfbase::render_snapshots(&snaps)) {
            return usage_error(&format!("cannot write {path}: {e}"));
        }
        println!("recorded perf baseline (sides 4, 8) to {path}");
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--perf-gate") {
        let Some(path) = positional.first() else {
            return usage_error("--perf-gate needs a baseline file path");
        };
        let hop = match parse_flag_value(&args, "--mutate-hop-cost", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tx = match parse_flag_value(&args, "--mutate-tx-energy", 1.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let tolerance = match parse_flag_value(&args, "--tolerance", 10.0f64) {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        let baseline = match wsn_bench::perfbase::parse_snapshots(&text) {
            Ok(b) => b,
            Err(e) => return usage_error(&format!("{path}: {e}")),
        };
        let sides: Vec<u32> = baseline.iter().map(|r| r.side).collect();
        let current = match wsn_bench::perfbase::perf_snapshots(&sides, hop, tx) {
            Ok(s) => s,
            Err(e) => return usage_error(&e),
        };
        return match wsn_bench::perfbase::regression_gate(&current, &baseline, tolerance) {
            Ok(report) => {
                print!("{report}");
                println!("perf baseline gate: every metric within +/-{tolerance}%");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--check") {
        return match lint::check_gate() {
            Ok(()) => {
                println!("wsn-lint --check: paper deployments (depths 1..=3) are error-free");
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for (depth, diags) in failures {
                    eprintln!("depth {depth} failed the gate:\n{}", diags.render_text());
                }
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--program") {
        let Some(path) = positional.first() else {
            return usage_error("--program needs a file path");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::lint_program_text(&text) {
            Ok(diags) => report(&diags, json),
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    // Default (and --fig4): the paper deployment.
    let depth = match parse_depth(&positional) {
        Ok(d) => d,
        Err(e) => return usage_error(&e),
    };
    let diags = lint::lint_figure4(depth);
    report(&diags, json)
}

fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a value")),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("{flag}: cannot parse {raw:?}")),
        },
    }
}

fn parse_depth(positional: &[&String]) -> Result<u8, String> {
    match positional.first() {
        None => Ok(2),
        Some(raw) => match raw.parse::<u8>() {
            Ok(d) if (1..=4).contains(&d) => Ok(d),
            _ => Err(format!("depth must be 1..=4, got {raw:?}")),
        },
    }
}

fn report(diags: &Diagnostics, json: bool) -> ExitCode {
    if json {
        println!("{}", diags.to_json().render());
    } else {
        print!("{}", diags.render_text());
    }
    if diags.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("wsn-lint: {message}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: wsn-lint [--fig4] [depth] | --program <file.json> | \
         --emit-json-program [depth] | --certify [depth] | --conform <trace.jsonl> | \
         --record-fidelity-trace <out.jsonl> [depth] [--mutate-hop-cost k] \
         [--mutate-tx-energy x] | --perf-baseline <out.json> | \
         --perf-gate <baseline.json> [--tolerance pct] [--mutate-hop-cost k] | \
         --check | --codes   [--json]"
    );
}
