//! `wsn-lint` — static analysis CLI for synthesized WSN artifacts.
//!
//! ```text
//! wsn-lint                         lint the paper's Figure-4 deployment (depth 2)
//! wsn-lint --fig4 [depth]          same, at an explicit hierarchy depth
//! wsn-lint --program <file.json>   lint a serialized program (JSON model)
//! wsn-lint --emit-json-program [depth]   print the Figure-4 program as JSON
//! wsn-lint --check                 CI gate: paper deployments must be error-free
//! wsn-lint --codes                 list the diagnostic catalog
//! ```
//!
//! `--json` switches the report to JSON. Exit status: 0 when no
//! error-severity diagnostics were found, 1 otherwise, 2 on usage or
//! decode errors.

use std::process::ExitCode;
use wsn_analyze::{Code, Diagnostics};
use wsn_bench::lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") || a.as_str() == "--")
        .collect();

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--codes") {
        for &code in Code::all() {
            println!("{code}  {}", code.description());
        }
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--emit-json-program") {
        let depth = match parse_depth(&positional) {
            Ok(d) => d,
            Err(e) => return usage_error(&e),
        };
        println!("{}", lint::figure4_program_json(depth));
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--check") {
        return match lint::check_gate() {
            Ok(()) => {
                println!("wsn-lint --check: paper deployments (depths 1..=3) are error-free");
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for (depth, diags) in failures {
                    eprintln!("depth {depth} failed the gate:\n{}", diags.render_text());
                }
                ExitCode::FAILURE
            }
        };
    }

    if args.iter().any(|a| a == "--program") {
        let Some(path) = positional.first() else {
            return usage_error("--program needs a file path");
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
        };
        return match lint::lint_program_text(&text) {
            Ok(diags) => report(&diags, json),
            Err(e) => usage_error(&format!("{path}: {e}")),
        };
    }

    // Default (and --fig4): the paper deployment.
    let depth = match parse_depth(&positional) {
        Ok(d) => d,
        Err(e) => return usage_error(&e),
    };
    let diags = lint::lint_figure4(depth);
    report(&diags, json)
}

fn parse_depth(positional: &[&String]) -> Result<u8, String> {
    match positional.first() {
        None => Ok(2),
        Some(raw) => match raw.parse::<u8>() {
            Ok(d) if (1..=4).contains(&d) => Ok(d),
            _ => Err(format!("depth must be 1..=4, got {raw:?}")),
        },
    }
}

fn report(diags: &Diagnostics, json: bool) -> ExitCode {
    if json {
        println!("{}", diags.to_json().render());
    } else {
        print!("{}", diags.render_text());
    }
    if diags.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("wsn-lint: {message}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: wsn-lint [--fig4] [depth] | --program <file.json> | \
         --emit-json-program [depth] | --check | --codes   [--json]"
    );
}
