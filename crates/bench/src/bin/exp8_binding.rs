//! EXP-8: binding (leader election) convergence (paper section 5.2).
fn main() {
    wsn_bench::emit(&wsn_bench::exp8_binding(
        8,
        &[8, 16, 32],
        &[0.4, 0.5, 0.7, 2.24],
    ));
}
