//! EXP-15: asynchronous vs TDMA channel access.
fn main() {
    wsn_bench::emit(&wsn_bench::exp15_mac_ablation(8, 3, &[4, 8, 16, 32]));
}
