//! EXP-10: group-communication (follower to leader) cost.
fn main() {
    wsn_bench::emit(&wsn_bench::exp10_group_cost(32, &[1, 2, 3, 4, 5]));
}
