//! Runs every figure regenerator and experiment in DESIGN.md order, then
//! the model-fidelity conformance gate and the perf-baseline regression
//! gate (seeded snapshots vs the committed `BENCH_topoquery.json`).

/// Where the committed perf baseline lives, relative to the invocation
/// directory (the workspace root in CI).
const BASELINE_PATH: &str = "BENCH_topoquery.json";

/// Allowed per-metric drift before the regression gate fails the run.
const TOLERANCE_PCT: f64 = 10.0;

fn main() {
    print!("{}\n\n", wsn_bench::fig2_quadtree());
    print!("{}\n\n", wsn_bench::fig3_mapping());
    print!("{}\n\n", wsn_bench::fig4_program());
    println!("{}", wsn_bench::exp5_latency_scaling(&[4, 8, 16, 32, 64]));
    println!(
        "{}",
        wsn_bench::exp6_dandc_vs_central(&[4, 8, 16, 32], &[0.05, 0.2, 0.5])
    );
    println!(
        "{}",
        wsn_bench::exp7_topology_emulation(&[4, 8, 16], &[4], &[2.24])
    );
    println!(
        "{}",
        wsn_bench::exp7_topology_emulation(&[8], &[8, 16, 32], &[0.4, 0.5, 0.7, 1.0])
    );
    println!(
        "{}",
        wsn_bench::exp8_binding(8, &[8, 16, 32], &[0.4, 0.5, 0.7, 2.24])
    );
    println!("{}", wsn_bench::exp9_model_fidelity(&[4, 8, 16], 3));
    println!("{}", wsn_bench::exp10_group_cost(32, &[1, 2, 3, 4, 5]));
    println!("{}", wsn_bench::exp11_energy_balance(16, 64));
    println!(
        "{}",
        wsn_bench::exp12_loss_robustness(8, 3, &[0.0, 0.01, 0.05, 0.1], 20)
    );
    println!("{}", wsn_bench::exp13_mapping_ablation(&[8, 16, 32]));
    println!("{}", wsn_bench::exp14_collectives(&[4, 8, 16]));
    println!("{}", wsn_bench::exp15_mac_ablation(8, 3, &[4, 8, 16, 32]));
    println!(
        "{}",
        wsn_bench::exp16_mission_under_churn(4, 4, 40, &[0, 10, 5, 1])
    );
    println!("{}", wsn_bench::exp17_election_lifetime(4, 4, 3000.0, 400));
    println!(
        "{}",
        wsn_bench::exp18_sampling_accuracy(4, &[2, 4, 8, 16], &[0.5, 2.0])
    );
    println!(
        "{}",
        wsn_bench::exp19_architecture_selection(&[4, 8, 16, 32])
    );
    println!(
        "{}",
        wsn_bench::exp20_parallel_scale(
            &[8, 16],
            3,
            &[
                wsn_bench::experiments::RunEngine::Sequential,
                wsn_bench::experiments::RunEngine::Sharded {
                    cut_level: 2,
                    workers: 4,
                },
            ],
        )
    );
    // Model-fidelity gate: the measurements the tables above are built
    // from must sit inside the symbolically certified §4 bounds. Any
    // drift between the runtime's pricing and the certified cost model
    // fails the whole regeneration loudly.
    match wsn_bench::lint::conformance_gate(&[4, 8]) {
        Ok(quantities) => {
            println!("conformance gate: sides 4 and 8 inside all {quantities} certified bounds")
        }
        Err(failures) => {
            for (side, diags) in &failures {
                eprintln!(
                    "side {side} escaped its certificate:\n{}",
                    diags.render_text()
                );
            }
            panic!("model-fidelity drift: measured runs escaped the certified bounds");
        }
    }
    // Perf-baseline regression gate: distill the seeded runs into
    // machine-readable snapshots (latency, messages, energy, critical
    // path per side) and diff them against the committed baseline
    // *before* rewriting it, so drift fails loudly instead of being
    // silently absorbed into a fresh snapshot.
    let mut snaps = wsn_bench::perfbase::perf_snapshots(&[4, 8], 1.0, 1.0)
        .expect("seeded perf snapshots must record");
    match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => {
            let baseline = wsn_bench::perfbase::parse_snapshots(&text)
                .unwrap_or_else(|e| panic!("{BASELINE_PATH}: {e}"));
            match wsn_bench::perfbase::regression_gate(&snaps, &baseline, TOLERANCE_PCT, false) {
                Ok(report) => {
                    print!("{report}");
                    println!("perf baseline gate: every metric within +/-{TOLERANCE_PCT}%");
                }
                Err(report) => {
                    eprint!("{report}");
                    panic!("perf regression: current run drifted from {BASELINE_PATH}");
                }
            }
            // Carry the committed scale rows (the side-512 sharded run)
            // forward unchanged — run_all does not re-record them; use
            // `wsn-lint --perf-baseline --include-scale` for that.
            snaps.extend(baseline.into_iter().filter(|r| r.scale));
        }
        Err(_) => println!("no {BASELINE_PATH} baseline found; recording a fresh one"),
    }
    std::fs::write(BASELINE_PATH, wsn_bench::perfbase::render_snapshots(&snaps))
        .unwrap_or_else(|e| panic!("cannot write {BASELINE_PATH}: {e}"));
    println!("wrote {BASELINE_PATH} ({} sides)", snaps.len());
}
