//! Runs every figure regenerator and experiment in DESIGN.md order.
fn main() {
    print!("{}\n\n", wsn_bench::fig2_quadtree());
    print!("{}\n\n", wsn_bench::fig3_mapping());
    print!("{}\n\n", wsn_bench::fig4_program());
    println!("{}", wsn_bench::exp5_latency_scaling(&[4, 8, 16, 32, 64]));
    println!(
        "{}",
        wsn_bench::exp6_dandc_vs_central(&[4, 8, 16, 32], &[0.05, 0.2, 0.5])
    );
    println!(
        "{}",
        wsn_bench::exp7_topology_emulation(&[4, 8, 16], &[4], &[2.24])
    );
    println!(
        "{}",
        wsn_bench::exp7_topology_emulation(&[8], &[8, 16, 32], &[0.4, 0.5, 0.7, 1.0])
    );
    println!(
        "{}",
        wsn_bench::exp8_binding(8, &[8, 16, 32], &[0.4, 0.5, 0.7, 2.24])
    );
    println!("{}", wsn_bench::exp9_model_fidelity(&[4, 8, 16], 3));
    println!("{}", wsn_bench::exp10_group_cost(32, &[1, 2, 3, 4, 5]));
    println!("{}", wsn_bench::exp11_energy_balance(16, 64));
    println!(
        "{}",
        wsn_bench::exp12_loss_robustness(8, 3, &[0.0, 0.01, 0.05, 0.1], 20)
    );
    println!("{}", wsn_bench::exp13_mapping_ablation(&[8, 16, 32]));
    println!("{}", wsn_bench::exp14_collectives(&[4, 8, 16]));
    println!("{}", wsn_bench::exp15_mac_ablation(8, 3, &[4, 8, 16, 32]));
    println!(
        "{}",
        wsn_bench::exp16_mission_under_churn(4, 4, 40, &[0, 10, 5, 1])
    );
    println!("{}", wsn_bench::exp17_election_lifetime(4, 4, 3000.0, 400));
    println!(
        "{}",
        wsn_bench::exp18_sampling_accuracy(4, &[2, 4, 8, 16], &[0.5, 2.0])
    );
    println!(
        "{}",
        wsn_bench::exp19_architecture_selection(&[4, 8, 16, 32])
    );
    // Model-fidelity gate: the measurements the tables above are built
    // from must sit inside the symbolically certified §4 bounds. Any
    // drift between the runtime's pricing and the certified cost model
    // fails the whole regeneration loudly.
    match wsn_bench::lint::conformance_gate(&[4, 8]) {
        Ok(quantities) => {
            println!("conformance gate: sides 4 and 8 inside all {quantities} certified bounds")
        }
        Err(failures) => {
            for (side, diags) in &failures {
                eprintln!(
                    "side {side} escaped its certificate:\n{}",
                    diags.render_text()
                );
            }
            panic!("model-fidelity drift: measured runs escaped the certified bounds");
        }
    }
}
