//! `wsn-chaos` — seeded chaos fuzzer for the self-healing runtime.
//!
//! ```text
//! wsn-chaos                 200-scenario sweep (seeds 1..=200)
//! wsn-chaos --smoke         40-scenario sweep + determinism recheck (CI)
//! wsn-chaos --sweep N       N-scenario sweep
//! wsn-chaos --seed B        start the sweep at base seed B
//! wsn-chaos --no-shrink     skip minimizing failing schedules
//! ```
//!
//! Each seed deterministically generates a deployment, a scalar field,
//! and a [`wsn_net::ChaosPlan`] of typed fault injections, then runs the
//! distributed quad-tree labeling under the runtime's self-healing chaos
//! mission and differentially checks every surviving answer against the
//! centralized `label_regions` oracle. Stalling under fire is acceptable;
//! a wrong answer is a bug, is minimized by greedy delta-debugging, and
//! fails the process (exit 1). A sample of seeds is re-run to prove the
//! sweep replays bit-identically, and one telemetry-enabled mission
//! verifies the recovery counters surface in the exported registry.

use std::process::ExitCode;
use wsn_net::{ChaosPlan, DeploymentSpec, LinkModel, RadioModel};
use wsn_obs::Registry;
use wsn_runtime::{PhysicalRuntime, SelfHealConfig};
use wsn_sim::SimTime;
use wsn_topoquery::{
    chaos::{run_scenario, shrink_plan, ChaosScenario, ChaosVerdict},
    DandcMsg, DandcProgram,
};

/// How many stalled schedules to shrink and display (shrinking re-runs
/// the mission per candidate event, so it is rationed).
const SHRUNK_STALLS_SHOWN: usize = 3;
/// Seeds re-run verbatim to prove the sweep is replayable.
const DETERMINISM_SAMPLE: u64 = 5;

struct SweepTally {
    correct: u64,
    stalls: u64,
    wrong: u64,
    heals: u64,
    leases_expired: u64,
    reelections: u64,
    epochs: u64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let shrink = !args.iter().any(|a| a == "--no-shrink");
    let sweep = match flag_value(&args, "--sweep") {
        Ok(v) => v.unwrap_or(if smoke { 40 } else { 200 }),
        Err(e) => return usage_error(&e),
    };
    let base = match flag_value(&args, "--seed") {
        Ok(v) => v.unwrap_or(1),
        Err(e) => return usage_error(&e),
    };

    let mut tally = SweepTally {
        correct: 0,
        stalls: 0,
        wrong: 0,
        heals: 0,
        leases_expired: 0,
        reelections: 0,
        epochs: 0,
    };
    let mut stalls_shown = 0;
    for seed in base..base + sweep {
        let scenario = ChaosScenario::generate(seed);
        let outcome = run_scenario(&scenario);
        tally.heals += u64::from(outcome.report.heals);
        tally.leases_expired += outcome.report.leases_expired;
        tally.reelections += outcome.report.reelections;
        tally.epochs += u64::from(outcome.report.epochs);
        match outcome.verdict {
            ChaosVerdict::Correct => tally.correct += 1,
            ChaosVerdict::Stall => {
                tally.stalls += 1;
                if shrink && stalls_shown < SHRUNK_STALLS_SHOWN {
                    stalls_shown += 1;
                    let minimal = shrink_plan(&scenario, |o| o.verdict == ChaosVerdict::Stall);
                    println!(
                        "seed {seed}: stall ({} node(s), {} event(s)) — minimal schedule:",
                        scenario.side * scenario.side * scenario.per_cell as u32,
                        scenario.plan.len(),
                    );
                    for ev in minimal.events() {
                        println!("    {ev}");
                    }
                }
            }
            ChaosVerdict::Wrong { got, want } => {
                tally.wrong += 1;
                eprintln!(
                    "seed {seed}: WRONG ANSWER — distributed {got} vs oracle {want} \
                     (side {}, {} per cell, {} fault(s))",
                    scenario.side,
                    scenario.per_cell,
                    scenario.plan.len(),
                );
                if let Some(jsonl) = &outcome.flight_jsonl {
                    let path = format!("chaos-flight-{seed}.jsonl");
                    match std::fs::write(&path, jsonl) {
                        Ok(()) => eprintln!("  flight dump written to {path} (netscope flight)"),
                        Err(e) => eprintln!("  cannot write flight dump {path}: {e}"),
                    }
                }
                if shrink {
                    let minimal = shrink_plan(&scenario, |o| !o.verdict.is_safe());
                    eprintln!("  minimal failing schedule:");
                    for ev in minimal.events() {
                        eprintln!("    {ev}");
                    }
                }
            }
        }
    }

    println!(
        "sweep: {} scenario(s), seeds {}..={}",
        sweep,
        base,
        base + sweep - 1
    );
    println!(
        "  verdicts: {} correct, {} stalled, {} wrong",
        tally.correct, tally.stalls, tally.wrong
    );
    println!(
        "  recovery: {} heal(s), {} lease(s) expired, {} re-election(s), {} epoch(s) run",
        tally.heals, tally.leases_expired, tally.reelections, tally.epochs
    );

    let replayable = determinism_recheck(base, sweep);
    let registry_ok = registry_check();

    if tally.wrong > 0 {
        eprintln!("FAIL: {} wrong answer(s)", tally.wrong);
        return ExitCode::FAILURE;
    }
    if !replayable || !registry_ok {
        return ExitCode::FAILURE;
    }
    println!("OK: no wrong answers; sweep replays bit-identically");
    ExitCode::SUCCESS
}

/// Re-runs a sample of seeds and demands identical mission reports and
/// answers — the property that makes any reported failure reproducible
/// from its seed alone.
fn determinism_recheck(base: u64, sweep: u64) -> bool {
    let step = (sweep / DETERMINISM_SAMPLE).max(1);
    let mut ok = true;
    for seed in (base..base + sweep).step_by(step as usize) {
        let scenario = ChaosScenario::generate(seed);
        let a = run_scenario(&scenario);
        let b = run_scenario(&scenario);
        if a.report != b.report || a.answers != b.answers {
            eprintln!("seed {seed}: NON-DETERMINISTIC replay\n  a: {a:?}\n  b: {b:?}");
            ok = false;
        }
    }
    if ok {
        println!("  determinism: sampled seeds replay bit-identically");
    }
    ok
}

/// One telemetry-enabled mission with a mid-application leader-killing
/// crash: the recovery counters must surface in the exported registry.
fn registry_check() -> bool {
    let deployment = DeploymentSpec::per_cell(2, 4).generate(21);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut rt: PhysicalRuntime<DandcMsg> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        21,
        |c| f64::from(c.col + c.row),
    );
    rt.enable_telemetry(false);
    rt.install_programs(|_| Box::new(DandcProgram::new(2, 5.0)));
    let cfg = SelfHealConfig::default();
    // A far-future pending event holds every bounded bring-up phase to
    // its full horizon, so the application starts at exactly
    // 3 × phase_budget_ticks; the crash lands one tick later. Node 0 is
    // not guaranteed to lead a cell, so fall back to periodic refresh to
    // guarantee at least one heal either way.
    let crash_at = 3 * cfg.phase_budget_ticks + 1;
    rt.install_chaos(ChaosPlan::none().crash_at(SimTime::from_ticks(crash_at), 0))
        .expect("static plan validates");
    let report = rt.run_chaos_mission(
        SelfHealConfig {
            refresh_every_epochs: 2,
            ..cfg
        },
        1,
    );
    let reg: &Registry = rt.telemetry();
    let exported = [
        ("heal.epochs", u64::from(report.epochs)),
        ("heal.reemulations", u64::from(report.heals)),
        ("heal.reelections", report.reelections),
        ("heal.leases_expired", report.leases_expired),
    ];
    let mut ok = true;
    for (name, expect) in exported {
        if reg.counter(name) != expect {
            eprintln!(
                "registry mismatch: {name} = {} but mission reported {expect}",
                reg.counter(name)
            );
            ok = false;
        }
    }
    if reg.counter("heal.epochs") == 0 {
        eprintln!("registry check: heal.epochs never incremented");
        ok = false;
    }
    if ok {
        println!(
            "  registry: heal.* counters exported (epochs {}, heals {}, re-elections {}, leases {})",
            report.epochs, report.heals, report.reelections, report.leases_expired
        );
    }
    ok
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("{flag} expects a number, got {v:?}")),
            None => Err(format!("{flag} expects a value")),
        },
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("wsn-chaos: {msg}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: wsn-chaos [--smoke] [--sweep N] [--seed B] [--no-shrink]\n\
         seeded differential chaos fuzzing of the self-healing runtime;\n\
         exit 1 on any wrong answer, non-deterministic replay, or missing\n\
         registry counters"
    );
}
