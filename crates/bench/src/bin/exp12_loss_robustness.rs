//! EXP-12: completion and correctness under message loss.
fn main() {
    wsn_bench::emit(&wsn_bench::exp12_loss_robustness(
        8,
        3,
        &[0.0, 0.01, 0.05, 0.1],
        20,
    ));
}
