//! EXP-16: sustained mission under churn vs protocol refresh period.
fn main() {
    wsn_bench::emit(&wsn_bench::exp16_mission_under_churn(
        4,
        4,
        40,
        &[0, 10, 5, 1],
    ));
}
