//! EXP-9: analytic estimate vs virtual machine vs emulated physical network.
fn main() {
    wsn_bench::emit(&wsn_bench::exp9_model_fidelity(&[4, 8, 16], 3));
}
