//! EXP-18: intra-cell sampling accuracy vs density and noise.
fn main() {
    wsn_bench::emit(&wsn_bench::exp18_sampling_accuracy(
        4,
        &[2, 4, 8, 16],
        &[0.5, 2.0],
    ));
}
