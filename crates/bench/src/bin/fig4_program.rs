//! Regenerates Figure 4: the synthesized program specification.
fn main() {
    print!("{}", wsn_bench::fig4_program());
}
