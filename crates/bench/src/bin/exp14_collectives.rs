//! EXP-14: collective primitives (reduce / disseminate / sort).
fn main() {
    wsn_bench::emit(&wsn_bench::exp14_collectives(&[4, 8, 16]));
}
