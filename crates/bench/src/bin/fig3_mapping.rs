//! Regenerates Figure 3: the example task-to-grid mapping.
fn main() {
    print!("{}", wsn_bench::fig3_mapping());
}
