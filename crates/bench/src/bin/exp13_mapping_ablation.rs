//! EXP-13: mapping-strategy ablation under the paper's constraints.
fn main() {
    wsn_bench::emit(&wsn_bench::exp13_mapping_ablation(&[8, 16, 32]));
}
