//! EXP-7: topology emulation protocol cost (paper section 5.1).
//!
//! Two sweeps: (a) network-size independence at the guaranteed range —
//! setup latency does not grow with N; (b) proportionality to the worst
//! intra-cell path length when the radio range shrinks below the cell
//! size and real relay chains form.
fn main() {
    wsn_bench::emit(&wsn_bench::exp7_topology_emulation(
        &[4, 8, 16],
        &[4],
        &[2.24],
    ));
    wsn_bench::emit(&wsn_bench::exp7_topology_emulation(
        &[8],
        &[8, 16, 32],
        &[0.4, 0.5, 0.7, 1.0],
    ));
}
