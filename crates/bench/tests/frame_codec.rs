//! Byte-equivalence certification of the zero-copy wire codec.
//!
//! The frame-layout certificate (wsn-analyze pass 7) licenses swapping
//! heap-owning `DandcMsg` values for flat `FrameBuf`s on the hot path.
//! This suite proves the swap is invisible:
//!
//! * every [`RtMsg`] variant round-trips through
//!   [`encode_rtmsg`]/[`decode_rtmsg`] bit-exactly, including seeded
//!   random region-summary payloads drawn from real feature maps;
//! * the full topoquery mission run on `PhysicalRuntime<FrameBuf>`
//!   (via [`FramedProgram`]) exfiltrates **identical decoded answers**
//!   and identical run metrics to the legacy typed
//!   `PhysicalRuntime<DandcMsg>` run, across seeds at sides 4 and 8;
//! * `Partial` accumulators — which the certifier proves never reach a
//!   send site — are refused by the codec, not silently mangled.

use wsn_core::{GridCoord, NodeProgram};
use wsn_net::{DeploymentSpec, FrameBuf, LinkModel, RadioModel, WireError, WirePayload};
use wsn_runtime::{decode_framed, decode_rtmsg, encode_rtmsg, AppEnvelope, PhysicalRuntime, RtMsg};
use wsn_sim::CausalStamp;
use wsn_topoquery::{BoundarySummary, DandcMsg, DandcProgram, Field, FieldSpec, RegionSummary};

const SEEDS: [u64; 5] = [3, 5, 11, 21, 42];

/// A deterministic splitmix64 stream: cheap seeded randomness for field
/// values without reaching into the kernel's RNG.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random complete summary over an `extent × extent` feature map.
fn random_summary(extent: u32, seed: u64) -> RegionSummary {
    let map = Field::generate(
        FieldSpec::RandomCells {
            p: 0.45,
            hot: 10.0,
            cold: 0.0,
        },
        extent,
        seed,
    )
    .threshold(5.0);
    RegionSummary::Complete(BoundarySummary::from_feature_map(
        &map,
        GridCoord::new(0, 0),
        extent,
    ))
}

fn random_envelope(rng: &mut Mix, extent: u32, seed: u64) -> AppEnvelope<DandcMsg> {
    AppEnvelope {
        src_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
        dest_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
        units: rng.next() % 1000,
        round: rng.next() as u32 % 100,
        origin: (rng.next() % 256) as usize,
        msg_id: rng.next(),
        stamp: CausalStamp {
            seq: rng.next() % 10_000,
            lamport: rng.next() % 10_000,
        },
        payload: wsn_synth::SummaryMsg {
            sender: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            level: extent.trailing_zeros() as u8,
            data: random_summary(extent, seed),
        },
    }
}

/// Every variant of the runtime message enum, parameterized by a seeded
/// random summary payload where the variant carries one.
fn all_variants(rng: &mut Mix, extent: u32, seed: u64) -> Vec<RtMsg<DandcMsg>> {
    vec![
        RtMsg::Topo {
            sender: (rng.next() % 64) as usize,
            sender_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            dirs: [
                rng.next().is_multiple_of(2),
                rng.next().is_multiple_of(2),
                rng.next().is_multiple_of(2),
                rng.next().is_multiple_of(2),
            ],
        },
        RtMsg::Delta {
            sender_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            delta: rng.f64() * 8.0 - 4.0,
            candidate: (rng.next() % 64) as usize,
        },
        RtMsg::Announce {
            sender_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            leader: (rng.next() % 64) as usize,
            hops: rng.next() as u32 % 32,
            sender: (rng.next() % 64) as usize,
        },
        RtMsg::App(random_envelope(rng, extent, seed)),
        RtMsg::AppArq {
            seq: rng.next() % 4096,
            hop_sender: (rng.next() % 64) as usize,
            env: random_envelope(rng, extent, seed ^ 0xdead),
        },
        RtMsg::Ack {
            seq: rng.next() % 4096,
            from: (rng.next() % 64) as usize,
        },
        RtMsg::Sample {
            sender_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            reading: rng.f64() * 20.0,
        },
        RtMsg::Heartbeat {
            sender_cell: GridCoord::new(rng.next() as u32 % 8, rng.next() as u32 % 8),
            leader: (rng.next() % 64) as usize,
            seq: rng.next() % 4096,
        },
    ]
}

#[test]
fn every_variant_round_trips_with_random_summary_payloads() {
    let mut frame = FrameBuf::new();
    for extent in [1u32, 2, 4, 8] {
        for seed in SEEDS {
            let mut rng = Mix(seed.wrapping_mul(extent as u64 + 1));
            for msg in all_variants(&mut rng, extent, seed) {
                encode_rtmsg(&msg, &mut frame).unwrap();
                let back: RtMsg<DandcMsg> = decode_rtmsg(&frame).unwrap();
                assert_eq!(back, msg, "extent {extent} seed {seed}: codec round trip");
            }
        }
    }
}

#[test]
fn reencoding_a_decoded_frame_is_byte_stable() {
    // Decode → re-encode must reproduce the exact frame bytes: the codec
    // has one canonical form, so relays may compare or hash raw frames.
    let mut frame = FrameBuf::new();
    let mut again = FrameBuf::new();
    for seed in SEEDS {
        let mut rng = Mix(seed);
        for msg in all_variants(&mut rng, 4, seed) {
            encode_rtmsg(&msg, &mut frame).unwrap();
            let back: RtMsg<DandcMsg> = decode_rtmsg(&frame).unwrap();
            encode_rtmsg(&back, &mut again).unwrap();
            assert_eq!(
                frame.bytes(),
                again.bytes(),
                "seed {seed}: re-encoding drifted"
            );
        }
    }
}

#[test]
fn partial_summaries_are_refused_not_mangled() {
    let env = AppEnvelope {
        src_cell: GridCoord::new(0, 0),
        dest_cell: GridCoord::new(1, 1),
        units: 1,
        round: 0,
        origin: 0,
        msg_id: 1,
        stamp: CausalStamp { seq: 0, lamport: 0 },
        payload: wsn_synth::SummaryMsg {
            sender: GridCoord::new(0, 0),
            level: 1,
            data: RegionSummary::Partial(vec![]),
        },
    };
    let mut frame = FrameBuf::new();
    assert!(matches!(
        encode_rtmsg(&RtMsg::App(env), &mut frame),
        Err(WireError::Unrepresentable(_))
    ));
}

/// Runs the full topoquery mission and returns the decoded exfiltrated
/// answers plus the headline run metrics, generic over the payload
/// representation on the air.
fn mission<P, D>(
    side: u32,
    seed: u64,
    make: impl Fn() -> Box<dyn NodeProgram<P>> + 'static,
    decode: D,
) -> (Vec<(GridCoord, DandcMsg)>, String)
where
    P: Clone + 'static,
    D: Fn(&P) -> DandcMsg,
{
    let spec = DeploymentSpec::per_cell(side, 2);
    let deployment = spec.generate(seed);
    let range = deployment.grid().range_for_adjacent_cell_reachability();
    let mut rt: PhysicalRuntime<P> = PhysicalRuntime::new(
        deployment,
        RadioModel::uniform(range),
        LinkModel::ideal(),
        None,
        1,
        seed,
        |c| f64::from((c.col * 7 + c.row * 3) % 11),
    );
    assert!(rt.run_topology_emulation().complete);
    assert!(rt.run_binding().unique);
    rt.install_programs(move |_| make());
    let app = rt.run_application();
    let metrics = format!(
        "messages={} hops={} retx={} elapsed={} exfil={}",
        app.messages, app.physical_hops, app.retransmissions, app.elapsed_ticks, app.exfil_count
    );
    let answers = rt
        .take_exfiltrated()
        .iter()
        .map(|e| (e.from, decode(&e.payload)))
        .collect();
    (answers, metrics)
}

#[test]
fn framed_missions_decode_identical_to_legacy_typed_missions() {
    for side in [4u32, 8] {
        for seed in SEEDS {
            let legacy = mission::<DandcMsg, _>(
                side,
                seed,
                move || Box::new(DandcProgram::new(side, 5.0)),
                Clone::clone,
            );
            let framed = mission::<FrameBuf, _>(
                side,
                seed,
                move || {
                    Box::new(wsn_runtime::FramedProgram::new(DandcProgram::new(
                        side, 5.0,
                    )))
                },
                |f| decode_framed::<DandcMsg>(f).expect("framed exfiltration decodes"),
            );
            assert_eq!(
                legacy, framed,
                "side {side} seed {seed}: framed run diverged from legacy"
            );
        }
    }
}

#[test]
fn framed_exfiltrations_respect_the_certified_byte_bound() {
    // Whatever the mission actually ships must sit inside the closed-form
    // bound the certificate quotes for the deployment's top level.
    let side = 8u32;
    let (answers, _) = mission::<FrameBuf, _>(
        side,
        3,
        move || {
            Box::new(wsn_runtime::FramedProgram::new(DandcProgram::new(
                side, 5.0,
            )))
        },
        |f| decode_framed::<DandcMsg>(f).expect("framed exfiltration decodes"),
    );
    assert!(!answers.is_empty());
    for (_, msg) in &answers {
        let actual = msg.encoded_bytes() as u64;
        let bound = wsn_core::summary_wire_bound_bytes(side);
        assert!(
            actual <= bound,
            "exfiltrated {actual} bytes exceeds the certified bound {bound}"
        );
    }
}
