//! Oracle-at-scale: where exhaustive differential fuzzing no longer
//! reaches (sides ≥ 64), the certifier's closed forms in `s` remain the
//! oracle. Each case runs the seeded uniform-field topoquery mission on
//! the **sharded** kernel once and demands
//!
//! 1. every measured quantity lands inside the symbolically certified §4
//!    intervals (`check_conformance`, TC001–TC008), and
//! 2. every observed cross-shard delivery hop is a certified boundary
//!    edge of the quadrant plan (`check_shard_conformance`, TC009).
//!
//! Side 64 runs in the default suite; sides 128 and 512 are `#[ignore]`d
//! locally (minutes of wall clock) and executed by the CI parallel-gate
//! job, which also records their throughput into the perf baseline.

use wsn_analyze::{check_conformance, check_shard_conformance};
use wsn_bench::experiments::{record_model_fidelity_trace_with, RunEngine};
use wsn_bench::lint;

fn oracle_at(side: u32, cut: u8, workers: usize, per_cell: usize) {
    let depth = u8::try_from(side.trailing_zeros()).expect("depth fits");

    // Certificate gating: the sharded engine must engage cleanly here.
    let (engine, diags) = lint::certified_engine(side, cut, workers, false);
    assert!(
        matches!(engine, RunEngine::Sharded { .. }),
        "side {side} cut {cut}: sharded kernel refused to engage:\n{}",
        diags.render_text()
    );

    let doc = record_model_fidelity_trace_with(side, per_cell, 5, 1.0, 1.0, engine);

    // §4 interval conformance (TC001–TC008).
    let (cert, cert_diags) = lint::certify_figure4(depth);
    assert_eq!(
        cert_diags.error_count(),
        0,
        "side {side}: certification failed:\n{}",
        cert_diags.render_text()
    );
    let report = check_conformance(&cert, &doc);
    assert!(
        report.is_empty(),
        "side {side}: sharded run escaped its certificate:\n{}{}",
        cert.render_text(),
        report.render_text()
    );

    // Boundary-traffic conformance (TC009): the sharded run's cross-shard
    // deliveries must stay on the certified hop edges of its own plan.
    let (shard_cert, shard_diags) = lint::shard_check_figure4(depth, cut, false)
        .unwrap_or_else(|e| panic!("side {side} cut {cut}: {e}"));
    let shard_cert = shard_cert.unwrap_or_else(|| {
        panic!(
            "side {side} cut {cut}: no shard certificate:\n{}",
            shard_diags.render_text()
        )
    });
    let replay = check_shard_conformance(&shard_cert, &doc);
    assert!(
        !replay.has_errors(),
        "side {side} cut {cut}: cross-shard traffic left the certified boundary:\n{}",
        replay.render_text()
    );
}

#[test]
fn sharded_side_64_lands_inside_the_certified_intervals() {
    oracle_at(64, 2, 4, 1);
}

#[test]
#[ignore = "minutes of wall clock; run by the CI parallel-gate job"]
fn sharded_side_128_lands_inside_the_certified_intervals() {
    oracle_at(128, 2, 4, 1);
}

#[test]
#[ignore = "minutes of wall clock; run by the CI parallel-gate job"]
fn sharded_side_512_lands_inside_the_certified_intervals() {
    oracle_at(512, 2, 8, 1);
}
