//! The no-alloc gate, measured for real: this test binary installs a
//! counting `#[global_allocator]` (integration tests live outside the
//! `src/` trees the CI unsafe audit covers, exactly like the `wsn-lint`
//! binary in `cli/`) and proves the certified zero-copy hot path
//! dispatches steady-state events **without touching the heap**.
//!
//! It also pins the allocation regression fixed alongside the codec
//! swap: repeated application rounds on a warm runtime used to clone
//! per-epoch energy/leader snapshots; they now reuse struct-held
//! scratch, so a warmed-up round performs zero allocations end to end.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wsn_bench::hotpath::{allocprobe, steady_state_hotpath};
use wsn_bench::lint;

struct CountingAlloc;

static ALLOCATION_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_calls() -> u64 {
    ALLOCATION_CALLS.load(Ordering::Relaxed)
}

fn install_probe() {
    allocprobe::install(allocation_calls);
}

#[test]
fn steady_state_hot_path_performs_zero_heap_allocations() {
    install_probe();
    let report = steady_state_hotpath(8, 200, 2);
    assert!(report.events > 0, "measured round dispatched no events");
    assert_eq!(
        report.allocations,
        Some(0),
        "the certified hot path allocated on {} events",
        report.events
    );
    assert_eq!(report.allocs_per_event(), Some(0.0));
}

#[test]
fn the_alloc_gate_passes_end_to_end() {
    install_probe();
    let report = lint::alloc_gate(8, 200).expect("alloc gate must pass with the probe installed");
    assert!(
        report.contains("zero-copy hot path holds"),
        "unexpected gate report: {report}"
    );
}

#[test]
fn warm_application_rounds_reuse_runtime_scratch() {
    // The satellite regression pin: snapshot clones in the epoch loop
    // (energy ledger reads, leader healing, kernel outbox) must not
    // reappear. Two warmed-up rounds at a second side both measure zero.
    install_probe();
    let a = steady_state_hotpath(4, 50, 3);
    let b = steady_state_hotpath(4, 50, 3);
    assert_eq!(a.allocations, Some(0));
    assert_eq!(b.allocations, Some(0));
    assert_eq!(a.events, b.events, "warm rounds must be deterministic");
}
