//! Differential determinism suite: the sharded parallel kernel is
//! certified against the sequential reference by byte-comparison, not by
//! statistics. For every (side, cut level, seed) cell of the matrix the
//! sharded run's JSONL trace — events, causal log, counters, gauges,
//! per-node energy — and its metric bundle must be **byte-identical** to
//! the sequential run's. One chaos mission (fault injection + crash +
//! self-healing) rides in the matrix so the epoch-sliced driver is
//! differenced too, not just the plain application run.
//!
//! The suite doubles as CI's mutation detector: with
//! `WSN_SHARD_MISORDER=1` in the environment the sharded kernel merges
//! boundary traffic in a deliberately wrong order, and this suite MUST
//! fail (the workflow inverts the exit code to prove it has teeth).

use wsn_bench::experiments::{record_end_to_end_trace_with, RunEngine};
use wsn_core::{GridCoord, NodeApi, NodeProgram};
use wsn_net::{ChaosPlan, DeliveryChaos, DeploymentSpec, LinkModel, RadioModel};
use wsn_runtime::{ParallelConfig, PhysicalRuntime, SelfHealConfig};
use wsn_sim::SimTime;

const SEEDS: [u64; 5] = [3, 5, 11, 21, 42];

struct Gather {
    expected: usize,
    seen: usize,
    sum: f64,
}

impl NodeProgram<f64> for Gather {
    fn on_init(&mut self, api: &mut dyn NodeApi<f64>) {
        let v = api.read_sensor();
        api.compute(1);
        if api.coord() != GridCoord::new(0, 0) {
            api.send(GridCoord::new(0, 0), 1, v);
        } else {
            self.sum += v;
            self.seen += 1;
        }
    }

    fn on_receive(&mut self, api: &mut dyn NodeApi<f64>, _from: GridCoord, payload: f64) {
        self.sum += payload;
        self.seen += 1;
        if self.seen == self.expected {
            api.exfiltrate(self.sum);
        }
    }
}

/// Sequential reference vs sharded run at every cut level, one side at a
/// time so failures name the exact matrix cell.
fn differential_matrix(side: u32) {
    for seed in SEEDS {
        let (seq_doc, seq_metrics) =
            record_end_to_end_trace_with(side, 3, seed, true, RunEngine::Sequential);
        let seq_jsonl = seq_doc.to_jsonl();
        let seq_metrics = format!("{seq_metrics:?}");
        for cut_level in [1u32, 2] {
            let engine = RunEngine::Sharded {
                cut_level,
                workers: 4,
            };
            let (doc, metrics) = record_end_to_end_trace_with(side, 3, seed, true, engine);
            assert_eq!(
                doc.to_jsonl(),
                seq_jsonl,
                "side {side} seed {seed} cut {cut_level}: sharded trace diverged"
            );
            assert_eq!(
                format!("{metrics:?}"),
                seq_metrics,
                "side {side} seed {seed} cut {cut_level}: sharded metrics diverged"
            );
        }
    }
}

#[test]
fn side_4_sharded_traces_are_byte_identical() {
    differential_matrix(4);
}

#[test]
fn side_8_sharded_traces_are_byte_identical() {
    differential_matrix(8);
}

#[test]
fn side_16_sharded_traces_are_byte_identical() {
    differential_matrix(16);
}

/// The chaos cell of the matrix: duplicated + reordered deliveries, a
/// mid-mission crash, and the self-healing epoch driver — replayed on
/// the sharded kernel and compared on the mission report, final clock,
/// and canonical causal log.
#[test]
fn chaos_mission_is_byte_identical_across_engines() {
    let run = |parallel: Option<ParallelConfig>| {
        let spec = DeploymentSpec::per_cell(4, 3);
        let deployment = spec.generate(33);
        let range = deployment.grid().range_for_adjacent_cell_reachability();
        let mut rt: PhysicalRuntime<f64> = PhysicalRuntime::new(
            deployment,
            RadioModel::uniform(range),
            LinkModel::ideal(),
            None,
            1,
            33,
            |c| f64::from(c.col + c.row),
        );
        rt.enable_causal_tracing();
        assert!(rt.run_topology_emulation().complete);
        assert!(rt.run_binding().unique);
        rt.install_programs(|_| {
            Box::new(Gather {
                expected: 16,
                seen: 0,
                sum: 0.0,
            })
        });
        rt.install_chaos(
            ChaosPlan::none()
                .delivery_at(
                    SimTime::from_ticks(10),
                    DeliveryChaos {
                        dup_prob: 0.2,
                        reorder_prob: 0.2,
                        reorder_max_extra_ticks: 3,
                    },
                )
                .crash_at(SimTime::from_ticks(60), 0),
        )
        .unwrap();
        let report = match &parallel {
            None => rt.run_chaos_mission(SelfHealConfig::default(), 1),
            Some(cfg) => rt.run_chaos_mission_parallel(SelfHealConfig::default(), 1, cfg),
        };
        let causal = rt.causal_log().unwrap().borrow().canonical_events();
        (report, rt.now(), format!("{causal:?}"))
    };
    let sequential = run(None);
    for cut_level in [1u32, 2] {
        let cfg = ParallelConfig {
            cut_level,
            workers: 3,
        };
        assert_eq!(
            run(Some(cfg)),
            sequential,
            "chaos mission at {cfg:?} diverged from sequential"
        );
    }
}
