//! The model-fidelity acceptance loop, end to end: the seeded EXP-9
//! uniform-field run on the emulated physical network must land inside
//! every symbolically certified §4 bound, while a runtime whose radio is
//! deliberately mis-priced against the certifier (the cost-model
//! mutation) must be caught with an error-severity `TC0xx` diagnostic.

use wsn_analyze::{check_conformance, Code};
use wsn_bench::experiments::record_model_fidelity_trace;
use wsn_bench::lint;

#[test]
fn faithful_runs_conform_at_every_paper_side() {
    for side in [4u32, 8] {
        let depth = u8::try_from(side.trailing_zeros()).unwrap();
        let doc = record_model_fidelity_trace(side, 3, 5, 1.0, 1.0);
        let (cert, diags) = lint::certify_figure4(depth);
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
        let report = check_conformance(&cert, &doc);
        assert!(
            report.is_empty(),
            "side {side} escaped its certificate:\n{}{}",
            cert.render_text(),
            report.render_text()
        );
    }
}

#[test]
fn doubled_hop_cost_in_the_runtime_is_caught_as_tc004() {
    // The runtime's radio charges 2 ticks per unit per hop; the
    // certifier still prices the uniform model. The stretched
    // application phase escapes the certified latency interval.
    let doc = record_model_fidelity_trace(4, 3, 5, 2.0, 1.0);
    let (cert, _) = lint::certify_figure4(2);
    let report = check_conformance(&cert, &doc);
    assert!(report.has_errors(), "{}", report.render_text());
    assert!(report.has_code(Code::TC004), "{}", report.render_text());
}

#[test]
fn doubled_tx_energy_in_the_runtime_is_caught_as_tc006() {
    let doc = record_model_fidelity_trace(4, 3, 5, 1.0, 2.0);
    let (cert, _) = lint::certify_figure4(2);
    let report = check_conformance(&cert, &doc);
    assert!(report.has_errors(), "{}", report.render_text());
    assert!(report.has_code(Code::TC006), "{}", report.render_text());
}

#[test]
fn conformance_gate_passes_clean_and_trace_text_round_trips() {
    assert!(lint::conformance_gate(&[4]).is_ok());
    // The CLI path: serialize the faithful trace to JSONL, re-parse,
    // certify at the trace's own side, conform.
    let doc = record_model_fidelity_trace(4, 3, 5, 1.0, 1.0);
    let (_, diags) = lint::conform_trace_text(&doc.to_jsonl()).unwrap();
    assert!(diags.is_empty(), "{}", diags.render_text());
    // And the mutated trace through the same path carries errors.
    let doc = record_model_fidelity_trace(4, 3, 5, 2.0, 1.0);
    let (_, diags) = lint::conform_trace_text(&doc.to_jsonl()).unwrap();
    assert!(diags.has_errors(), "{}", diags.render_text());
}
