//! Golden tests for `wsn-lint`: the synthesized paper artifacts must lint
//! clean of errors, and each deliberately-broken fixture must report its
//! expected diagnostic class.

use wsn_analyze::Code;
use wsn_bench::lint;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn synthesized_figure4_reports_zero_errors() {
    for depth in 1..=3 {
        let diags = lint::lint_figure4(depth);
        assert_eq!(
            diags.error_count(),
            0,
            "depth {depth}:\n{}",
            diags.render_text()
        );
    }
}

#[test]
fn figure4_fixture_round_trips_and_lints_clean() {
    let diags = lint::lint_program_text(&fixture("figure4_depth2.json")).unwrap();
    assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
    // The one expected finding: the paper's scan-order-dependent overlap
    // between the transmit and quorum rules.
    assert_eq!(diags.codes(), vec![Code::RD002], "{}", diags.render_text());
}

#[test]
fn json_report_is_byte_stable() {
    // Satellite of the certification PR: diagnostic ordering is a total
    // order (severity, code, span, message, suggestion), so the JSON
    // report is byte-for-byte reproducible — across repeated runs and
    // against the committed golden file.
    let golden = fixture("figure4_depth2_diags.json");
    let render = || lint::lint_figure4(2).to_json().render();
    let first = render();
    assert_eq!(first, render(), "two renders in one process differ");
    assert_eq!(
        format!("{first}\n"),
        golden,
        "wsn-lint --json drifted from the golden fixture; if the change is \
         intentional, regenerate tests/fixtures/figure4_depth2_diags.json"
    );
}

#[test]
fn unbound_variable_fixture_reports_wf_codes() {
    let diags = lint::lint_program_text(&fixture("broken_unbound_var.json")).unwrap();
    assert!(diags.has_errors());
    assert!(diags.has_code(Code::WF002), "{}", diags.render_text());
    assert!(diags.has_code(Code::WF003), "{}", diags.render_text());
    // The dynamics pass is skipped for unsound programs.
    assert!(!diags.has_code(Code::RD001));
}

#[test]
fn guard_overlap_fixture_reports_rd002() {
    let diags = lint::lint_program_text(&fixture("broken_guard_overlap.json")).unwrap();
    assert!(diags.has_code(Code::RD002), "{}", diags.render_text());
    // The shadowed second rule never fires.
    assert!(diags.has_code(Code::RD001), "{}", diags.render_text());
    assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
}

#[test]
fn under_supplied_merge_fixture_reports_dl001() {
    let diags = lint::lint_program_text(&fixture("broken_under_supplied.json")).unwrap();
    assert!(diags.has_errors());
    assert!(diags.has_code(Code::DL001), "{}", diags.render_text());
    // One deadlocked merge per interior task of the 4×4 quad-tree.
    let dl = diags
        .items()
        .iter()
        .filter(|d| d.code == Code::DL001)
        .count();
    assert_eq!(dl, 5, "{}", diags.render_text());
}

#[test]
fn footprint_pass_covers_the_existing_fixtures() {
    // The shard analyzer over the four pre-existing lint fixtures: the
    // clean program certifies, the unbound program is gated at
    // well-formedness (no SI evaluation over unbound names), and the two
    // structurally-broken programs fail certification (CC001) with clean
    // footprints — their defects are not interference defects.
    let shard = |name: &str| lint::shard_check_program_text(&fixture(name), 1).unwrap();

    let (cert, diags) = shard("figure4_depth2.json");
    assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
    let cert = cert.expect("clean figure-4 must certify");
    assert_eq!(cert.cross_shard_messages, 3);
    assert_eq!(cert.total_messages, 20);

    let (cert, diags) = shard("broken_unbound_var.json");
    assert!(cert.is_none());
    assert!(diags.has_code(Code::WF002));
    assert!(!diags
        .codes()
        .iter()
        .any(|c| { matches!(c, Code::SI001 | Code::SI002 | Code::SI003 | Code::SI004) }));

    for name in ["broken_guard_overlap.json", "broken_under_supplied.json"] {
        let (cert, diags) = shard(name);
        assert!(cert.is_none(), "{name}");
        assert!(
            diags.has_code(Code::CC001),
            "{name}: {}",
            diags.render_text()
        );
        assert!(
            !diags
                .codes()
                .iter()
                .any(|c| { matches!(c, Code::SI001 | Code::SI002 | Code::SI003 | Code::SI004) }),
            "{name}: {}",
            diags.render_text()
        );
    }
}

#[test]
fn shard_leak_fixture_reports_si_codes_byte_stably() {
    // The new fixture: Figure 4 plus a boot-time send straight to the
    // global root. Two interference findings — the duplicate write into
    // the level-2 quorum slot (SI002) and the off-boundary cross-shard
    // send (SI003) — and the JSON report is byte-for-byte reproducible
    // against the committed golden file.
    let (cert, diags) = lint::shard_check_program_text(&fixture("shard_leak.json"), 1).unwrap();
    assert!(
        cert.is_none(),
        "an interfering program earns no certificate"
    );
    assert!(diags.has_code(Code::SI002), "{}", diags.render_text());
    assert!(diags.has_code(Code::SI003), "{}", diags.render_text());
    let golden = fixture("shard_leak_diags.json");
    let render = || {
        lint::shard_check_program_text(&fixture("shard_leak.json"), 1)
            .unwrap()
            .1
            .to_json()
            .render()
    };
    let first = render();
    assert_eq!(first, render(), "two renders in one process differ");
    assert_eq!(
        format!("{first}\n"),
        golden,
        "shard-check --json drifted from the golden fixture; if the change is \
         intentional, regenerate tests/fixtures/shard_leak_diags.json with \
         wsn-lint --shard-check --program shard_leak.json --cut-level 1 --json"
    );
}

#[test]
fn the_three_broken_classes_have_distinct_codes() {
    let codes_of = |name: &str| lint::lint_program_text(&fixture(name)).unwrap().codes();
    let unbound = codes_of("broken_unbound_var.json");
    let overlap = codes_of("broken_guard_overlap.json");
    let deadlock = codes_of("broken_under_supplied.json");
    assert!(unbound.contains(&Code::WF002));
    assert!(overlap.contains(&Code::RD002));
    assert!(deadlock.contains(&Code::DL001));
    // No class's signature code appears in another class's report.
    assert!(!overlap.contains(&Code::WF002) && !deadlock.contains(&Code::WF002));
    assert!(!unbound.contains(&Code::DL001) && !overlap.contains(&Code::DL001));
    assert!(!unbound.contains(&Code::RD002));
}
