//! Golden exit-code matrix for `wsn-lint`: every gate/check entry point
//! must exit 0 on a clean run, 1 when it finds error-severity findings,
//! and 2 on usage or decode errors — so CI can trust the process status
//! without parsing the report.

use std::path::PathBuf;
use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wsn-lint"))
}

fn run(args: &[&str]) -> i32 {
    lint()
        .args(args)
        .output()
        .expect("spawn wsn-lint")
        .status
        .code()
        .expect("exit code")
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wsn-lint-exit-codes-{}-{name}", std::process::id()));
    p
}

#[test]
fn static_analysis_paths() {
    // (args, expected exit) — 0 clean, 1 findings, 2 usage.
    let matrix: &[(&[&str], i32)] = &[
        (&[], 0),
        (&["--fig4", "2"], 0),
        (&["--check"], 0),
        (&["--codes"], 0),
        (&["--certify", "2"], 0),
        (&["--program", &fixture("figure4_depth2.json")], 0),
        (&["--program", &fixture("broken_unbound_var.json")], 1),
        (&["--program", &fixture("broken_under_supplied.json")], 1),
        (&["--program", "/nonexistent/nope.json"], 2),
        (&["--fig4", "9"], 2),
    ];
    for (args, want) in matrix {
        assert_eq!(run(args), *want, "wsn-lint {}", args.join(" "));
    }
}

#[test]
fn shard_check_paths() {
    let matrix: &[(&[&str], i32)] = &[
        (&["--shard-check"], 0),
        (&["--shard-check", "2", "--cut-level", "2"], 0),
        (&["--shard-check", "3", "--cut-level", "1"], 0),
        (&["--shard-check", "--emit-shard-cert"], 0),
        (&["--shard-check", "--mutate-shard-leak"], 1),
        (
            &["--shard-check", "--mutate-shard-leak", "--cut-level", "2"],
            1,
        ),
        // cut level beyond the hierarchy depth is a usage error.
        (&["--shard-check", "2", "--cut-level", "5"], 2),
        (&["--shard-check", "--cut-level"], 2),
        (
            &[
                "--shard-check",
                "--program",
                &fixture("figure4_depth2.json"),
            ],
            0,
        ),
        (
            &["--shard-check", "--program", &fixture("shard_leak.json")],
            1,
        ),
        (&["--shard-conform", "/nonexistent/nope.jsonl"], 2),
    ];
    for (args, want) in matrix {
        assert_eq!(run(args), *want, "wsn-lint {}", args.join(" "));
    }
}

#[test]
fn shard_cert_json_is_machine_checkable() {
    let out = lint()
        .args([
            "--shard-check",
            "2",
            "--cut-level",
            "1",
            "--emit-shard-cert",
        ])
        .output()
        .expect("spawn wsn-lint");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 cert");
    let json = wsn_obs::Json::parse(text.trim()).expect("cert parses");
    let cert = wsn_analyze::shard_cert_from_json(&json).expect("cert decodes");
    assert_eq!(cert.side, 4);
    assert_eq!(cert.cut_level, 1);
    assert_eq!(cert.cross_shard_messages, 3);
    assert_eq!(cert.total_messages, 20);
    assert_eq!(cert.boundary_edges.len(), 3);
}

#[test]
fn frame_check_paths() {
    let matrix: &[(&[&str], i32)] = &[
        (&["--frame-check"], 0),
        (&["--frame-check", "2"], 0),
        (&["--frame-check", "3"], 0),
        (&["--frame-check", "--emit-frame-cert"], 0),
        // The planted mutation: a deployment whose top-level summary
        // cannot fit the fixed frame. FL001, exit 1 — CI inverts this.
        (&["--frame-check", "--mutate-payload-overflow"], 1),
        (&["--frame-check", "--mutate-payload-overflow", "--json"], 1),
        (&["--frame-check", "9"], 2),
        (&["--alloc-gate"], 0),
    ];
    for (args, want) in matrix {
        assert_eq!(run(args), *want, "wsn-lint {}", args.join(" "));
    }
}

#[test]
fn frame_cert_json_is_machine_checkable() {
    let out = lint()
        .args(["--frame-check", "2", "--emit-frame-cert"])
        .output()
        .expect("spawn wsn-lint");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 cert");
    let json = wsn_obs::Json::parse(text.trim()).expect("cert parses");
    let cert = wsn_analyze::frame_cert_from_json(&json).expect("cert decodes");
    assert_eq!(cert.side, 4);
    assert_eq!(cert.depth, 2);
    assert_eq!(cert.frame_bytes, 2048);
    assert_eq!(cert.payload_capacity, 1968);
    assert_eq!(cert.max_payload_bytes, 248);
    assert_eq!(cert.levels.len(), 3, "levels 0..=2 at depth 2");
    assert_eq!(cert.roles.len(), 3);
}

#[test]
fn overflow_mutation_names_fl001_and_matches_the_golden_fixture() {
    let out = lint()
        .args(["--frame-check", "--mutate-payload-overflow", "--json"])
        .output()
        .expect("spawn wsn-lint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("utf8 diags");
    assert!(text.contains("\"FL001\""), "missing FL001 in: {text}");
    let golden =
        std::fs::read_to_string(fixture("frame_overflow_diags.json")).expect("read golden fixture");
    assert_eq!(
        text, golden,
        "frame-check --json drifted from the golden fixture; if the change \
         is intentional, regenerate tests/fixtures/frame_overflow_diags.json \
         with wsn-lint --frame-check --mutate-payload-overflow --json"
    );
}

#[test]
fn frame_and_alloc_codes_are_catalogued() {
    let out = lint().args(["--codes"]).output().expect("spawn wsn-lint");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 catalog");
    for code in [
        "FL001", "FL002", "FL003", "FL004", "FL005", "AL001", "AL002", "AL003",
    ] {
        assert!(text.contains(code), "--codes misses {code}");
    }
}

#[test]
fn conformance_paths_trip_on_recorded_mutations() {
    // Record the faithful and mutated runs once, then drive every
    // trace-checking entry point through both.
    let faithful = temp("faithful.jsonl");
    let drifted = temp("drifted.jsonl");
    let leak = temp("leak.jsonl");
    assert_eq!(
        run(&["--record-fidelity-trace", faithful.to_str().unwrap(), "2"]),
        0
    );
    assert_eq!(
        run(&[
            "--record-fidelity-trace",
            drifted.to_str().unwrap(),
            "2",
            "--mutate-hop-cost",
            "2.0",
        ]),
        0
    );
    assert_eq!(
        run(&["--record-shard-leak-trace", leak.to_str().unwrap(), "2"]),
        0
    );

    let matrix: &[(&[&str], i32)] = &[
        (&["--conform", faithful.to_str().unwrap()], 0),
        (&["--conform", drifted.to_str().unwrap()], 1),
        (
            &[
                "--shard-conform",
                faithful.to_str().unwrap(),
                "--cut-level",
                "1",
            ],
            0,
        ),
        (
            &[
                "--shard-conform",
                leak.to_str().unwrap(),
                "--cut-level",
                "1",
            ],
            1,
        ),
        // With a single shard (cut = depth) nothing can cross: even the
        // leaking run conforms, which is exactly what the plan says.
        (
            &[
                "--shard-conform",
                leak.to_str().unwrap(),
                "--cut-level",
                "2",
            ],
            0,
        ),
    ];
    for (args, want) in matrix {
        assert_eq!(run(args), *want, "wsn-lint {}", args.join(" "));
    }
    for p in [faithful, drifted, leak] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn parallel_gate_paths() {
    assert_eq!(run(&["--parallel-gate"]), 0);
    // A misordered boundary merge must trip the differential gate — CI
    // inverts this exit code to prove the suite has teeth.
    assert_eq!(run(&["--parallel-gate", "--mutate-misorder"]), 1);
    assert_eq!(run(&["--parallel-gate", "--scale-workers"]), 2);
}

#[test]
fn shard_metrics_paths() {
    let matrix: &[(&[&str], i32)] = &[
        (&["--shard-metrics"], 0),
        (&["--shard-metrics", "3", "--cut-level", "2"], 0),
        // The planted undercounting tap: shard 0 drops one dispatch per
        // window from its counter, so the per-shard sum falls short of
        // the certified total. TC010, exit 1 — CI inverts this.
        (&["--shard-metrics", "--mutate-shard-skew"], 1),
        // Cut level beyond the hierarchy depth is a usage error.
        (&["--shard-metrics", "--cut-level", "9"], 2),
        (&["--shard-metrics", "--cut-level"], 2),
        (&["--obs-gate", "--tolerance", "abc"], 2),
    ];
    for (args, want) in matrix {
        assert_eq!(run(args), *want, "wsn-lint {}", args.join(" "));
    }
}

fn netscope(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_netscope"))
        .args(args)
        .output()
        .expect("spawn netscope")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn netscope_shard_and_flight_paths() {
    let clean = temp("shard-metrics.jsonl");
    let skewed = temp("shard-metrics-skew.jsonl");
    let dump = temp("flight-dump.jsonl");
    assert_eq!(
        run(&["--record-shard-metrics-trace", clean.to_str().unwrap(), "2"]),
        0
    );
    assert_eq!(
        run(&[
            "--record-shard-metrics-trace",
            skewed.to_str().unwrap(),
            "2",
            "--mutate-shard-skew",
        ]),
        0
    );
    assert_eq!(
        run(&["--record-flight-dump", dump.to_str().unwrap(), "2"]),
        0
    );

    // netscope shards: 0 reconciled, 1 mismatch, 2 usage/decode.
    assert_eq!(netscope(&["shards", clean.to_str().unwrap()]), 0);
    assert_eq!(netscope(&["shards", skewed.to_str().unwrap()]), 1);
    assert_eq!(netscope(&["shards", "--demo", "--side", "4"]), 0);
    assert_eq!(netscope(&["shards", "/nonexistent/nope.jsonl"]), 2);
    assert_eq!(netscope(&["shards", "--demo", "--side", "3"]), 2);

    // netscope flight: 0 rendered, 2 usage/decode.
    assert_eq!(netscope(&["flight", dump.to_str().unwrap()]), 0);
    assert_eq!(netscope(&["flight", "--demo", "--side", "4"]), 0);
    assert_eq!(netscope(&["flight", "/nonexistent/nope.jsonl"]), 2);

    for p in [clean, skewed, dump] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn perf_gate_path_round_trips_and_trips() {
    let baseline = temp("perf-baseline.json");
    assert_eq!(run(&["--perf-baseline", baseline.to_str().unwrap()]), 0);
    assert_eq!(run(&["--perf-gate", baseline.to_str().unwrap()]), 0);
    assert_eq!(
        run(&[
            "--perf-gate",
            baseline.to_str().unwrap(),
            "--mutate-hop-cost",
            "1.5",
        ]),
        1
    );
    assert_eq!(run(&["--perf-gate", "/nonexistent/base.json"]), 2);
    let _ = std::fs::remove_file(baseline);
}
