//! Golden-output tests for the `netscope shards` and `netscope flight`
//! subcommands: the demo renders are fully seeded (deployment seed,
//! barrier schedule, and recorder stamps are all deterministic), so the
//! exact bytes are pinned against committed fixtures. A drift here means
//! the telemetry or flight-recorder pipeline changed what it records —
//! regenerate the fixture only when that change is intentional.

use std::process::Command;

fn netscope(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_netscope"))
        .args(args)
        .output()
        .expect("spawn netscope");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
    )
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn shard_table_demo_matches_the_golden_fixture() {
    let (code, stdout) = netscope(&["shards", "--demo", "--side", "4", "--cut-level", "1"]);
    assert_eq!(code, 0);
    assert_eq!(
        stdout,
        fixture("shard_table_demo.txt"),
        "netscope shards --demo drifted from the golden fixture; if the \
         change is intentional, regenerate tests/fixtures/shard_table_demo.txt \
         with netscope shards --demo --side 4 --cut-level 1"
    );
}

#[test]
fn flight_waterfall_demo_matches_the_golden_fixture() {
    let (code, stdout) = netscope(&["flight", "--demo", "--side", "4"]);
    assert_eq!(code, 0);
    assert_eq!(
        stdout,
        fixture("flight_waterfall_demo.txt"),
        "netscope flight --demo drifted from the golden fixture; if the \
         change is intentional, regenerate tests/fixtures/flight_waterfall_demo.txt \
         with netscope flight --demo --side 4"
    );
}

#[test]
fn library_renderers_produce_the_same_bytes_as_the_binary() {
    // The subcommands are thin shells over the wsn-obs renderers: the
    // library path must agree byte-for-byte with the binary transcript.
    let doc = wsn_bench::experiments::record_shard_metrics_trace(4, 3, 5, 1, false);
    let table = wsn_obs::shard_table(&doc).expect("demo trace carries shard telemetry");
    assert!(table.reconciled);
    assert_eq!(table.render(), fixture("shard_table_demo.txt"));

    let dump = wsn_bench::experiments::record_flight_dump(4, 3, 5, 1, 8, "demo");
    assert_eq!(
        dump.render_waterfall(32),
        fixture("flight_waterfall_demo.txt")
    );
}

#[test]
fn full_demo_includes_the_telemetry_and_flight_sections() {
    // `netscope --demo` is the one-command tour: it must now end with
    // the shard-telemetry table and a sample flight waterfall.
    let (code, stdout) = netscope(&["--demo", "--side", "4"]);
    assert_eq!(code, 0);
    for section in [
        "== shard telemetry (cut level 1) ==",
        "== flight dump (sample, capacity 8/shard) ==",
        "reconciliation: per-shard sum",
        "utilization skew (max/mean):",
        "flight dump: reason \"demo\"",
    ] {
        assert!(stdout.contains(section), "demo output misses {section:?}");
    }
}
