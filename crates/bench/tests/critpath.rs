//! End-to-end critical-path exactness over the real runtime.
//!
//! The acceptance bar for the causal layer: on seeded ideal-link runs the
//! extracted critical path's per-hop/per-merge segment durations must sum
//! *exactly* to the measured application span — no approximation, no
//! off-by-one. Telescoping (see `wsn_sim::causal`) guarantees the segment
//! sum equals the chain's end-to-end duration; these tests pin the chain
//! itself to the application span on the paper's quad-tree configurations.

use wsn_bench::experiments::record_model_fidelity_trace;
use wsn_obs::{extract_critical_path, HbDag, SegmentKind};

#[test]
fn critical_path_is_exact_on_seeded_runs_at_sides_4_and_8() {
    for side in [4u32, 8] {
        let doc = record_model_fidelity_trace(side, 3, 5, 1.0, 1.0);
        let span = doc
            .spans
            .iter()
            .find(|s| s.name == "application")
            .expect("application span");
        let path =
            extract_critical_path(&doc.causal).unwrap_or_else(|e| panic!("side {side}: {e}"));
        // Telescoping: segments partition the chain interval exactly.
        assert_eq!(path.segment_sum(), path.total_ticks(), "side {side}");
        // And the chain interval is exactly the measured application span.
        assert_eq!(path.start, span.start, "side {side}");
        assert_eq!(path.end, span.end, "side {side}");
        assert_eq!(
            path.total_ticks(),
            span.duration_ticks(),
            "side {side}: critical path must equal the application span"
        );
        // Per-stage attribution also telescopes to the same total.
        let staged: u64 = path.per_stage().iter().map(|&(_, t)| t).sum();
        assert_eq!(staged, path.total_ticks(), "side {side}");
        // The path crosses at least one radio hop per merge level.
        assert!(path.hop_count() >= 2, "side {side}: {}", path.hop_count());
    }
}

#[test]
fn recorded_causal_log_is_a_valid_happens_before_dag() {
    let doc = record_model_fidelity_trace(4, 3, 5, 1.0, 1.0);
    assert!(!doc.causal.is_empty());
    let dag = HbDag::build(doc.causal.clone()).expect("valid DAG");
    // Exactly one exfiltration terminates the seeded run.
    assert_eq!(
        dag.events()
            .iter()
            .filter(|e| e.label == "app.exfil")
            .count(),
        1
    );
    // Every node that started the application phase recorded a root.
    let meta = doc.meta.expect("meta");
    assert_eq!(
        dag.events()
            .iter()
            .filter(|e| e.label == "app.start")
            .count() as u64,
        meta.nodes
    );
}

#[test]
fn hop_delay_mutation_stretches_the_critical_path() {
    let faithful = record_model_fidelity_trace(4, 3, 5, 1.0, 1.0);
    let mutated = record_model_fidelity_trace(4, 3, 5, 1.5, 1.0);
    let base = extract_critical_path(&faithful.causal).unwrap();
    let slow = extract_critical_path(&mutated.causal).unwrap();
    assert!(
        slow.total_ticks() > base.total_ticks(),
        "+50% hop delay must lengthen the path: {} vs {}",
        slow.total_ticks(),
        base.total_ticks()
    );
    // The mutated run still telescopes exactly — the mutation changes
    // the numbers, not the accounting.
    assert_eq!(slow.segment_sum(), slow.total_ticks());
    // Flight time (radio) is what grew; it dominates the increase.
    let flight = |p: &wsn_obs::CriticalPath| -> u64 {
        p.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Flight)
            .map(|s| s.ticks())
            .sum()
    };
    assert!(flight(&slow) > flight(&base));
}
