//! JSONL trace documents.
//!
//! A trace is a sequence of JSON Lines records, one per line, each tagged
//! with a `"t"` field:
//!
//! | tag     | record                                                   |
//! |---------|----------------------------------------------------------|
//! | `meta`  | run parameters (grid side, seed, node count, totals)     |
//! | `span`  | one root [`SpanNode`] with nested children               |
//! | `ctr`   | a counter name/value pair                                |
//! | `gauge` | a gauge name/value pair                                  |
//! | `hist`  | a [`FixedHistogram`] with buckets and summary stats      |
//! | `node`  | a per-node snapshot (energy, tx/rx message counts)       |
//! | `ev`    | one kernel [`TraceEntry`] (dispatched event)             |
//! | `cev`   | one causal [`CausalEvent`] (Lamport-stamped send/deliver/local) |
//!
//! [`TraceDocument`] is the in-memory form; [`TraceDocument::to_jsonl`] and
//! [`TraceDocument::from_jsonl`] convert losslessly in both directions.
//! [`JsonlEventSink`] implements the kernel's [`TraceSink`] so per-event
//! records stream straight into a JSONL buffer instead of accumulating in
//! kernel memory.

use crate::json::Json;
use crate::registry::{FixedHistogram, Registry};
use crate::span::SpanNode;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use wsn_sim::{CausalEvent, CausalKind, SimTime, TraceEntry, TraceKind, TraceSink};

/// The JSONL trace schema this writer emits and this reader understands.
/// Bumped on any incompatible record-shape change; see
/// [`TraceDocument::from_jsonl`] for the mismatch policy.
///
/// * v1 — meta/span/ctr/gauge/hist/node/ev records.
/// * v2 — adds `cev` causal-event records (Lamport stamps, cause links);
///   consumers assume causal semantics v1 readers cannot check, so v1
///   traces are rejected rather than silently read without them.
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// Run parameters recorded in a trace's `meta` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Trace schema version (see [`TRACE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Grid side length (the run simulates `grid * grid` sensors).
    pub grid: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Number of simulated nodes.
    pub nodes: u64,
    /// Simulated clock at the end of the run, in ticks.
    pub total_ticks: u64,
    /// Total kernel events dispatched.
    pub events: u64,
}

impl Default for TraceMeta {
    fn default() -> Self {
        TraceMeta {
            schema_version: TRACE_SCHEMA_VERSION,
            grid: 0,
            seed: 0,
            nodes: 0,
            total_ticks: 0,
            events: 0,
        }
    }
}

/// Per-node resource snapshot recorded in a `node` line.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Node id (kernel actor id).
    pub id: u64,
    /// Energy consumed over the run, in cost-model units.
    pub energy: f64,
    /// Transmit activity (data units; equals tx energy under the uniform
    /// cost model).
    pub tx: u64,
    /// Receive activity, in data units.
    pub rx: u64,
    /// Deployment cell `(col, row)` the node lies in, when the recorder
    /// knows the placement map; `None` for synthetic or legacy traces.
    /// Optional within schema v2: shard-conformance replay requires it,
    /// plain bound conformance does not.
    pub cell: Option<(u32, u32)>,
}

/// A parsed or under-construction trace; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct TraceDocument {
    /// Run parameters, if a `meta` line was present.
    pub meta: Option<TraceMeta>,
    /// Root spans, in file order.
    pub spans: Vec<SpanNode>,
    /// Counters, in file order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, in file order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, in file order.
    pub histograms: Vec<(String, FixedHistogram)>,
    /// Per-node snapshots, in file order.
    pub nodes: Vec<NodeSnapshot>,
    /// Kernel events, in dispatch order.
    pub events: Vec<TraceEntry>,
    /// Causal events (Lamport-stamped sends/deliveries/local milestones),
    /// in record order — empty unless causal tracing was enabled.
    pub causal: Vec<CausalEvent>,
}

/// Failure to parse a JSONL trace, with the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl TraceDocument {
    /// An empty document.
    pub fn new() -> Self {
        TraceDocument::default()
    }

    /// Copies every counter, gauge, and histogram out of `registry`.
    pub fn absorb_registry(&mut self, registry: &Registry) {
        self.counters.extend(registry.counters());
        self.gauges.extend(registry.gauges());
        self.histograms.extend(registry.histograms());
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Total span count across all root trees.
    pub fn span_count(&self) -> usize {
        self.spans.iter().map(SpanNode::subtree_len).sum()
    }

    /// Serializes the document to JSON Lines (one record per line, in the
    /// order meta, spans, counters, gauges, histograms, nodes, events).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(meta) = &self.meta {
            push_line(&mut out, meta_to_json(meta));
        }
        for span in &self.spans {
            let mut obj = vec![("t".to_string(), Json::Str("span".to_string()))];
            span_fields(span, &mut obj);
            push_line(&mut out, Json::Obj(obj));
        }
        for (name, value) in &self.counters {
            push_line(
                &mut out,
                Json::Obj(vec![
                    ("t".to_string(), Json::Str("ctr".to_string())),
                    ("name".to_string(), Json::Str(name.clone())),
                    ("value".to_string(), Json::from_u64(*value)),
                ]),
            );
        }
        for (name, value) in &self.gauges {
            push_line(
                &mut out,
                Json::Obj(vec![
                    ("t".to_string(), Json::Str("gauge".to_string())),
                    ("name".to_string(), Json::Str(name.clone())),
                    ("value".to_string(), Json::Num(*value)),
                ]),
            );
        }
        for (name, h) in &self.histograms {
            push_line(&mut out, hist_to_json(name, h));
        }
        for node in &self.nodes {
            let mut fields = vec![
                ("t".to_string(), Json::Str("node".to_string())),
                ("id".to_string(), Json::from_u64(node.id)),
                ("energy".to_string(), Json::Num(node.energy)),
                ("tx".to_string(), Json::from_u64(node.tx)),
                ("rx".to_string(), Json::from_u64(node.rx)),
            ];
            if let Some((col, row)) = node.cell {
                fields.push(("col".to_string(), Json::from_u64(u64::from(col))));
                fields.push(("row".to_string(), Json::from_u64(u64::from(row))));
            }
            push_line(&mut out, Json::Obj(fields));
        }
        for ev in &self.events {
            push_line(&mut out, event_to_json(ev));
        }
        for cev in &self.causal {
            push_line(&mut out, causal_to_json(cev));
        }
        out
    }

    /// Parses a JSON Lines trace. Blank lines are skipped; unknown record
    /// tags are an error (they indicate a version mismatch).
    pub fn from_jsonl(text: &str) -> Result<Self, TraceParseError> {
        let mut doc = TraceDocument::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| TraceParseError {
                line: line_no,
                message: e.to_string(),
            })?;
            let fail = |message: &str| TraceParseError {
                line: line_no,
                message: message.to_string(),
            };
            let tag = v
                .get("t")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing record tag \"t\""))?;
            match tag {
                "meta" => doc.meta = Some(meta_from_json(&v).map_err(|e| fail(&e))?),
                "span" => doc.spans.push(span_from_json(&v).map_err(&fail)?),
                "ctr" => {
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fail("ctr without name"))?;
                    let value = v
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("ctr without value"))?;
                    doc.counters.push((name.to_string(), value));
                }
                "gauge" => {
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| fail("gauge without name"))?;
                    let value = v
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| fail("gauge without value"))?;
                    doc.gauges.push((name.to_string(), value));
                }
                "hist" => doc.histograms.push(hist_from_json(&v).map_err(&fail)?),
                "node" => doc.nodes.push(NodeSnapshot {
                    id: v
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("node without id"))?,
                    energy: v
                        .get("energy")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| fail("node without energy"))?,
                    tx: v.get("tx").and_then(Json::as_u64).unwrap_or(0),
                    rx: v.get("rx").and_then(Json::as_u64).unwrap_or(0),
                    cell: match (
                        v.get("col").and_then(Json::as_u64),
                        v.get("row").and_then(Json::as_u64),
                    ) {
                        (Some(col), Some(row)) => Some((
                            u32::try_from(col).map_err(|_| fail("node col overflows u32"))?,
                            u32::try_from(row).map_err(|_| fail("node row overflows u32"))?,
                        )),
                        _ => None,
                    },
                }),
                "ev" => doc.events.push(event_from_json(&v).map_err(&fail)?),
                "cev" => doc.causal.push(causal_from_json(&v).map_err(&fail)?),
                other => return Err(fail(&format!("unknown record tag {other:?}"))),
            }
        }
        Ok(doc)
    }
}

fn push_line(out: &mut String, v: Json) {
    out.push_str(&v.render());
    out.push('\n');
}

fn meta_to_json(meta: &TraceMeta) -> Json {
    Json::Obj(vec![
        ("t".to_string(), Json::Str("meta".to_string())),
        (
            "schema_version".to_string(),
            Json::from_u64(meta.schema_version),
        ),
        ("grid".to_string(), Json::from_u64(meta.grid)),
        ("seed".to_string(), Json::from_u64(meta.seed)),
        ("nodes".to_string(), Json::from_u64(meta.nodes)),
        ("total_ticks".to_string(), Json::from_u64(meta.total_ticks)),
        ("events".to_string(), Json::from_u64(meta.events)),
    ])
}

fn meta_from_json(v: &Json) -> Result<TraceMeta, String> {
    let field = |key: &str| v.get(key).and_then(Json::as_u64);
    // Pre-versioning traces carry no schema_version; they are v1 by
    // construction. A *different* version is an incompatibility: reject
    // with a clear message instead of misparsing the records downstream.
    let schema_version = field("schema_version").unwrap_or(1);
    if schema_version != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "unsupported trace schema_version {schema_version} (this reader understands \
             {TRACE_SCHEMA_VERSION}); re-record the trace with a matching wsn-obs"
        ));
    }
    Ok(TraceMeta {
        schema_version,
        grid: field("grid").ok_or("meta without grid")?,
        seed: field("seed").ok_or("meta without seed")?,
        nodes: field("nodes").ok_or("meta without nodes")?,
        total_ticks: field("total_ticks").ok_or("meta without total_ticks")?,
        events: field("events").ok_or("meta without events")?,
    })
}

fn span_fields(span: &SpanNode, obj: &mut Vec<(String, Json)>) {
    obj.push(("name".to_string(), Json::Str(span.name.clone())));
    obj.push(("start".to_string(), Json::from_u64(span.start.ticks())));
    obj.push(("end".to_string(), Json::from_u64(span.end.ticks())));
    obj.push(("events".to_string(), Json::from_u64(span.events)));
    let children = span
        .children
        .iter()
        .map(|c| {
            let mut child = Vec::new();
            span_fields(c, &mut child);
            Json::Obj(child)
        })
        .collect();
    obj.push(("children".to_string(), Json::Arr(children)));
}

fn span_from_json(v: &Json) -> Result<SpanNode, &'static str> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span without name")?;
    let start = v
        .get("start")
        .and_then(Json::as_u64)
        .ok_or("span without start")?;
    let end = v
        .get("end")
        .and_then(Json::as_u64)
        .ok_or("span without end")?;
    let events = v.get("events").and_then(Json::as_u64).unwrap_or(0);
    let children = match v.get("children") {
        Some(c) => c
            .as_arr()
            .ok_or("span children is not an array")?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(SpanNode {
        name: name.to_string(),
        start: SimTime::from_ticks(start),
        end: SimTime::from_ticks(end),
        events,
        children,
    })
}

fn hist_to_json(name: &str, h: &FixedHistogram) -> Json {
    Json::Obj(vec![
        ("t".to_string(), Json::Str("hist".to_string())),
        ("name".to_string(), Json::Str(name.to_string())),
        (
            "uppers".to_string(),
            Json::Arr(h.uppers().iter().map(|&u| Json::Num(u)).collect()),
        ),
        (
            "counts".to_string(),
            Json::Arr(
                h.bucket_counts()
                    .iter()
                    .map(|&c| Json::from_u64(c))
                    .collect(),
            ),
        ),
        ("count".to_string(), Json::from_u64(h.count())),
        ("sum".to_string(), Json::Num(h.sum())),
        ("min".to_string(), Json::Num(h.min())),
        ("max".to_string(), Json::Num(h.max())),
    ])
}

fn hist_from_json(v: &Json) -> Result<(String, FixedHistogram), &'static str> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("hist without name")?;
    let uppers = v
        .get("uppers")
        .and_then(Json::as_arr)
        .ok_or("hist without uppers")?
        .iter()
        .map(|x| x.as_f64().ok_or("hist upper is not a number"))
        .collect::<Result<Vec<_>, _>>()?;
    let counts = v
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or("hist without counts")?
        .iter()
        .map(|x| x.as_u64().ok_or("hist count is not a number"))
        .collect::<Result<Vec<_>, _>>()?;
    if counts.len() != uppers.len() + 1 {
        return Err("hist counts/uppers length mismatch");
    }
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("hist without count")?;
    let sum = v
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or("hist without sum")?;
    let min = v.get("min").and_then(Json::as_f64).unwrap_or(0.0);
    let max = v.get("max").and_then(Json::as_f64).unwrap_or(0.0);
    Ok((
        name.to_string(),
        FixedHistogram::from_parts(uppers, counts, count, sum, min, max),
    ))
}

fn event_to_json(ev: &TraceEntry) -> Json {
    let kind = match ev.kind {
        TraceKind::Message => "msg",
        TraceKind::Timer => "timer",
    };
    Json::Obj(vec![
        ("t".to_string(), Json::Str("ev".to_string())),
        ("time".to_string(), Json::from_u64(ev.time.ticks())),
        ("target".to_string(), Json::from_u64(ev.target as u64)),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("a".to_string(), Json::from_u64(ev.a as u64)),
        ("b".to_string(), Json::from_u64(ev.b)),
    ])
}

fn event_from_json(v: &Json) -> Result<TraceEntry, &'static str> {
    let time = v
        .get("time")
        .and_then(Json::as_u64)
        .ok_or("ev without time")?;
    let target = v
        .get("target")
        .and_then(Json::as_u64)
        .ok_or("ev without target")?;
    let kind = match v.get("kind").and_then(Json::as_str) {
        Some("msg") => TraceKind::Message,
        Some("timer") => TraceKind::Timer,
        _ => return Err("ev with unknown kind"),
    };
    let a = v.get("a").and_then(Json::as_u64).unwrap_or(0);
    let b = v.get("b").and_then(Json::as_u64).unwrap_or(0);
    Ok(TraceEntry {
        time: SimTime::from_ticks(time),
        target: target as usize,
        kind,
        a: a as usize,
        b,
    })
}

fn causal_to_json(cev: &CausalEvent) -> Json {
    let kind = match cev.kind {
        CausalKind::Send => "s",
        CausalKind::Deliver => "d",
        CausalKind::Local => "l",
    };
    Json::Obj(vec![
        ("t".to_string(), Json::Str("cev".to_string())),
        ("seq".to_string(), Json::from_u64(cev.seq)),
        ("time".to_string(), Json::from_u64(cev.time.ticks())),
        ("node".to_string(), Json::from_u64(cev.node as u64)),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("lam".to_string(), Json::from_u64(cev.lamport)),
        ("cause".to_string(), Json::from_u64(cev.cause)),
        ("label".to_string(), Json::Str(cev.label.clone())),
        ("units".to_string(), Json::from_u64(cev.units)),
    ])
}

fn causal_from_json(v: &Json) -> Result<CausalEvent, &'static str> {
    let seq = v
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or("cev without seq")?;
    let time = v
        .get("time")
        .and_then(Json::as_u64)
        .ok_or("cev without time")?;
    let node = v
        .get("node")
        .and_then(Json::as_u64)
        .ok_or("cev without node")?;
    let kind = match v.get("kind").and_then(Json::as_str) {
        Some("s") => CausalKind::Send,
        Some("d") => CausalKind::Deliver,
        Some("l") => CausalKind::Local,
        _ => return Err("cev with unknown kind"),
    };
    let lamport = v
        .get("lam")
        .and_then(Json::as_u64)
        .ok_or("cev without lam")?;
    let cause = v.get("cause").and_then(Json::as_u64).unwrap_or(0);
    let label = v
        .get("label")
        .and_then(Json::as_str)
        .ok_or("cev without label")?;
    let units = v.get("units").and_then(Json::as_u64).unwrap_or(0);
    Ok(CausalEvent {
        seq,
        time: SimTime::from_ticks(time),
        node: node as usize,
        kind,
        lamport,
        cause,
        label: label.to_string(),
        units,
    })
}

/// A [`TraceSink`] that renders each kernel event as an `ev` JSONL line
/// into a shared string buffer.
///
/// The buffer is shared via `Rc<RefCell<…>>`: the sink moves into the
/// tracer (the kernel owns it), while the creator keeps the returned
/// handle to read the lines back out afterwards.
#[derive(Debug, Clone, Default)]
pub struct JsonlEventSink {
    buf: Rc<RefCell<String>>,
}

impl JsonlEventSink {
    /// Creates a sink and a second handle to its buffer.
    pub fn new() -> (Self, Rc<RefCell<String>>) {
        let sink = JsonlEventSink::default();
        let handle = Rc::clone(&sink.buf);
        (sink, handle)
    }

    /// Lines written so far.
    pub fn contents(&self) -> String {
        self.buf.borrow().clone()
    }
}

impl TraceSink for JsonlEventSink {
    fn record(&mut self, entry: &TraceEntry) {
        let mut buf = self.buf.borrow_mut();
        buf.push_str(&event_to_json(entry).render());
        buf.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::Tracer;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn sample_doc() -> TraceDocument {
        let mut doc = TraceDocument::new();
        doc.meta = Some(TraceMeta {
            schema_version: TRACE_SCHEMA_VERSION,
            grid: 16,
            seed: 42,
            nodes: 256,
            total_ticks: 900,
            events: 5000,
        });
        doc.spans.push(SpanNode {
            name: "mission".to_string(),
            start: t(0),
            end: t(900),
            events: 5000,
            children: vec![
                SpanNode::leaf("topology-emulation", t(0), t(300), 2000),
                SpanNode::leaf("binding", t(300), t(500), 1000),
            ],
        });
        doc.counters.push(("topo.msgs".to_string(), 2000));
        doc.gauges.push(("energy.total".to_string(), 12.5));
        let mut h = FixedHistogram::new(&[1.0, 8.0]);
        h.record(0.5);
        h.record(4.0);
        h.record(100.0);
        doc.histograms.push(("latency".to_string(), h));
        doc.nodes.push(NodeSnapshot {
            id: 3,
            energy: 1.25,
            tx: 40,
            rx: 41,
            cell: Some((5, 2)),
        });
        doc.events.push(TraceEntry {
            time: t(7),
            target: 3,
            kind: TraceKind::Message,
            a: 1,
            b: 4,
        });
        doc.events.push(TraceEntry {
            time: t(9),
            target: 1,
            kind: TraceKind::Timer,
            a: 0,
            b: 2,
        });
        doc.causal.push(CausalEvent {
            seq: 1,
            time: t(5),
            node: 2,
            kind: CausalKind::Send,
            lamport: 1,
            cause: 0,
            label: "app.hop".to_string(),
            units: 5,
        });
        doc.causal.push(CausalEvent {
            seq: 2,
            time: t(10),
            node: 7,
            kind: CausalKind::Deliver,
            lamport: 2,
            cause: 1,
            label: "app.hop".to_string(),
            units: 5,
        });
        doc.causal.push(CausalEvent {
            seq: 3,
            time: t(10),
            node: 7,
            kind: CausalKind::Local,
            lamport: 3,
            cause: 1,
            label: "merge.level1".to_string(),
            units: 0,
        });
        doc
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let doc = sample_doc();
        let text = doc.to_jsonl();
        assert_eq!(text.lines().count(), 11);
        let parsed = TraceDocument::from_jsonl(&text).unwrap();
        assert_eq!(parsed.meta, doc.meta);
        assert_eq!(parsed.spans, doc.spans);
        assert_eq!(parsed.counters, doc.counters);
        assert_eq!(parsed.gauges, doc.gauges);
        assert_eq!(parsed.histograms, doc.histograms);
        assert_eq!(parsed.nodes, doc.nodes);
        assert_eq!(parsed.events, doc.events);
        assert_eq!(parsed.causal, doc.causal);
        // Serialize → parse → serialize is a fixed point.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn causal_round_trip_preserves_every_stamp_field() {
        // Property-style sweep: every kind × a spread of stamp values must
        // survive the JSONL round trip bit-for-bit, including the fields
        // new in schema v2 (lamport, cause, label, units).
        let kinds = [CausalKind::Send, CausalKind::Deliver, CausalKind::Local];
        let mut doc = TraceDocument::new();
        doc.meta = Some(TraceMeta::default());
        for (i, &kind) in kinds.iter().cycle().take(60).enumerate() {
            let i = i as u64;
            doc.causal.push(CausalEvent {
                seq: i + 1,
                time: t(i * 3 + 1),
                node: (i % 7) as usize,
                kind,
                lamport: i + 1,
                cause: i, // 0 on the first = a root
                label: format!("label-{i}"),
                units: i % 6,
            });
        }
        let parsed = TraceDocument::from_jsonl(&doc.to_jsonl()).unwrap();
        assert_eq!(parsed.causal, doc.causal);
        assert_eq!(parsed.to_jsonl(), doc.to_jsonl());
    }

    #[test]
    fn schema_version_round_trips_and_gates_parsing() {
        // The writer stamps the current version.
        let doc = sample_doc();
        assert!(doc
            .to_jsonl()
            .lines()
            .next()
            .unwrap()
            .contains("\"schema_version\":2"));
        // A pre-versioning meta line (no field) is v1 by construction —
        // rejected now that the reader assumes v2 causal semantics.
        let legacy = "{\"t\":\"meta\",\"grid\":4,\"seed\":1,\"nodes\":16,\
                      \"total_ticks\":9,\"events\":2}";
        let err = TraceDocument::from_jsonl(legacy).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            err.message.contains("unsupported trace schema_version 1"),
            "{}",
            err.message
        );
        // An explicit v1 stamp is rejected the same way.
        let v1 = "{\"t\":\"meta\",\"schema_version\":1,\"grid\":4,\"seed\":1,\
                  \"nodes\":16,\"total_ticks\":9,\"events\":2}";
        let err = TraceDocument::from_jsonl(v1).unwrap_err();
        assert!(err.message.contains("understands 2"), "{}", err.message);
        // So is a future version: a clear error, not a misparse.
        let future = "{\"t\":\"meta\",\"schema_version\":3,\"grid\":4,\"seed\":1,\
                      \"nodes\":16,\"total_ticks\":9,\"events\":2}";
        let err = TraceDocument::from_jsonl(future).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            err.message.contains("unsupported trace schema_version 3"),
            "{}",
            err.message
        );
        assert!(err.message.contains("understands 2"), "{}", err.message);
    }

    #[test]
    fn blank_lines_are_skipped_and_unknown_tags_rejected() {
        let doc = TraceDocument::from_jsonl("\n\n{\"t\":\"ctr\",\"name\":\"x\",\"value\":3}\n\n")
            .unwrap();
        assert_eq!(doc.counter("x"), 3);
        let err = TraceDocument::from_jsonl("{\"t\":\"mystery\"}").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("mystery"));
        let err = TraceDocument::from_jsonl("{\"t\":\"ctr\",\"name\":\"x\",\"value\":3}\nnot json")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn node_cell_is_optional_and_round_trips() {
        // Legacy node lines carry no placement; the reader must not
        // reject them (bound conformance never needed cells).
        let legacy = "{\"t\":\"node\",\"id\":1,\"energy\":0.5,\"tx\":2,\"rx\":3}";
        let doc = TraceDocument::from_jsonl(legacy).unwrap();
        assert_eq!(doc.nodes[0].cell, None);
        assert!(!doc.to_jsonl().contains("col"));
        // A recorded cell survives the round trip.
        let with_cell = sample_doc();
        let parsed = TraceDocument::from_jsonl(&with_cell.to_jsonl()).unwrap();
        assert_eq!(parsed.nodes[0].cell, Some((5, 2)));
    }

    #[test]
    fn registry_absorbed_into_document() {
        let reg = Registry::enabled();
        reg.incr_by("app.msgs", 9);
        reg.gauge_set("energy", 3.5);
        reg.observe("lat", 2.0);
        let mut doc = TraceDocument::new();
        doc.absorb_registry(&reg);
        assert_eq!(doc.counter("app.msgs"), 9);
        assert_eq!(doc.gauges, vec![("energy".to_string(), 3.5)]);
        assert_eq!(doc.histograms.len(), 1);
        let text = doc.to_jsonl();
        let parsed = TraceDocument::from_jsonl(&text).unwrap();
        assert_eq!(parsed.histograms[0].1.count(), 1);
    }

    #[test]
    fn jsonl_sink_streams_kernel_events() {
        let (sink, handle) = JsonlEventSink::new();
        let mut tracer = Tracer::streaming(Box::new(sink));
        for i in 0..3u64 {
            tracer.record(TraceEntry {
                time: t(i),
                target: 0,
                kind: TraceKind::Timer,
                a: 0,
                b: i,
            });
        }
        let text = handle.borrow().clone();
        assert_eq!(text.lines().count(), 3);
        let doc = TraceDocument::from_jsonl(&text).unwrap();
        assert_eq!(doc.events.len(), 3);
        assert_eq!(doc.events[2].b, 2);
    }
}
