//! ASCII per-node activity timelines.
//!
//! Renders a kernel event trace as one row per node and one column per
//! time bucket, with a density glyph per cell (` `, `.`, `:`, `*`, `#`
//! from idle to hottest). Useful for eyeballing phase structure — the
//! flood of topology-emulation traffic, the quiet binding interval, and
//! the periodic application beats read directly off the picture.

use wsn_sim::TraceEntry;

/// Rendering knobs for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Number of time-bucket columns.
    pub width: usize,
    /// Maximum node rows; when exceeded, only the busiest nodes are shown.
    pub max_rows: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            width: 64,
            max_rows: 32,
        }
    }
}

const GLYPHS: [char; 5] = [' ', '.', ':', '*', '#'];

/// Renders the events as a per-node timeline; see the module docs.
pub fn render_timeline(events: &[TraceEntry], cfg: &TimelineConfig) -> String {
    if events.is_empty() || cfg.width == 0 || cfg.max_rows == 0 {
        return String::from("(no events)\n");
    }
    let t0 = events.iter().map(|e| e.time.ticks()).min().unwrap_or(0);
    let t1 = events.iter().map(|e| e.time.ticks()).max().unwrap_or(0);
    let span = (t1 - t0).max(1);
    let node_count = events.iter().map(|e| e.target).max().unwrap_or(0) + 1;

    // events per (node, bucket)
    let mut grid = vec![vec![0u64; cfg.width]; node_count];
    let mut totals = vec![0u64; node_count];
    for ev in events {
        let col = (((ev.time.ticks() - t0) * cfg.width as u64) / (span + 1)) as usize;
        grid[ev.target][col.min(cfg.width - 1)] += 1;
        totals[ev.target] += 1;
    }

    // Pick rows: all nodes, or the busiest `max_rows` (shown in id order).
    let mut shown: Vec<usize> = (0..node_count).filter(|&n| totals[n] > 0).collect();
    let omitted = if shown.len() > cfg.max_rows {
        shown.sort_by_key(|&n| std::cmp::Reverse(totals[n]));
        let cut = shown.split_off(cfg.max_rows);
        shown.sort_unstable();
        cut.len()
    } else {
        0
    };

    let peak = shown
        .iter()
        .flat_map(|&n| grid[n].iter().copied())
        .max()
        .unwrap_or(1)
        .max(1);

    let bucket_ticks = span.div_ceil(cfg.width as u64).max(1);
    let mut out = format!(
        "t={t0}..{t1}  ({} nodes active, 1 column ~ {bucket_ticks} ticks, peak {peak} events/cell)\n",
        shown.len() + omitted
    );
    for &n in &shown {
        let row: String = grid[n]
            .iter()
            .map(|&c| {
                if c == 0 {
                    GLYPHS[0]
                } else {
                    // Map 1..=peak onto the non-blank glyphs (ceiling
                    // division so the peak cell lands on the densest one).
                    let levels = (GLYPHS.len() - 1) as u64;
                    let idx = (c * levels).div_ceil(peak) as usize;
                    GLYPHS[idx.min(GLYPHS.len() - 1)]
                }
            })
            .collect();
        out.push_str(&format!("node {n:>5} |{row}| {:>7} ev\n", totals[n]));
    }
    if omitted > 0 {
        out.push_str(&format!("({omitted} quieter nodes omitted)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::{SimTime, TraceKind};

    fn ev(ticks: u64, target: usize) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_ticks(ticks),
            target,
            kind: TraceKind::Message,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(
            render_timeline(&[], &TimelineConfig::default()),
            "(no events)\n"
        );
    }

    #[test]
    fn zero_duration_trace_renders_single_column() {
        // Every event on one tick: the bucket math must not divide by the
        // zero-width span, and all activity lands in the first column.
        let events = vec![ev(7, 0), ev(7, 0), ev(7, 1)];
        let text = render_timeline(
            &events,
            &TimelineConfig {
                width: 8,
                max_rows: 4,
            },
        );
        assert!(text.contains("t=7..7"), "{text}");
        for line in text.lines().filter(|l| l.starts_with("node")) {
            let row = line.split('|').nth(1).unwrap();
            assert!(!row.starts_with(' '), "{text}");
            assert!(row[1..].chars().all(|c| c == ' '), "{text}");
        }
    }

    #[test]
    fn rows_cover_active_nodes_only() {
        let events = vec![ev(0, 0), ev(10, 0), ev(50, 2)];
        let text = render_timeline(
            &events,
            &TimelineConfig {
                width: 10,
                max_rows: 8,
            },
        );
        assert!(text.contains("node     0"));
        assert!(!text.contains("node     1"));
        assert!(text.contains("node     2"));
        assert!(text.contains("2 ev"));
    }

    #[test]
    fn busiest_nodes_survive_the_row_cap() {
        let mut events = Vec::new();
        for i in 0..20 {
            events.push(ev(i, i as usize)); // 1 event each
        }
        for _ in 0..50 {
            events.push(ev(5, 19)); // node 19 is the busiest
        }
        let text = render_timeline(
            &events,
            &TimelineConfig {
                width: 8,
                max_rows: 2,
            },
        );
        assert!(text.contains("node    19"));
        assert!(text.contains("nodes omitted"));
    }

    #[test]
    fn density_glyphs_scale_with_activity() {
        let mut events = Vec::new();
        for _ in 0..100 {
            events.push(ev(1, 0)); // hot early bucket
        }
        events.push(ev(99, 0)); // lone event in the last bucket
        let text = render_timeline(
            &events,
            &TimelineConfig {
                width: 10,
                max_rows: 4,
            },
        );
        assert!(
            text.contains('#'),
            "hot cell should use the densest glyph:\n{text}"
        );
        assert!(
            text.contains('.'),
            "cool cell should use the lightest glyph:\n{text}"
        );
    }
}
