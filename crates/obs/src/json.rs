//! Minimal JSON value, renderer, and recursive-descent parser.
//!
//! The trace format is JSON Lines, and this workspace builds offline with
//! no serde_json — so the few productions JSONL needs are implemented
//! here directly. Numbers are held as `f64`; integers up to 2^53 render
//! without a fractional part and round-trip exactly, which covers every
//! tick count, node id, and counter a trace can contain.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs for integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for integer-valued numbers.
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (rounded), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; traces never contain them, but degrade
        // gracefully rather than emitting an unparsable token.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a run of plain bytes.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(3.0), "3"),
            (Json::Num(-41.0), "-41"),
            (Json::Num(2.5), "2.5"),
            (Json::Str("a\"b\\c\nd".to_string()), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::Obj(vec![
            ("t".to_string(), Json::Str("span".to_string())),
            (
                "children".to_string(),
                Json::Arr(vec![
                    Json::Obj(vec![("n".to_string(), Json::Num(7.0))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
            ("ok".to_string(), Json::Bool(true)),
            ("x".to_string(), Json::Num(0.125)),
        ]);
        let text = v.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
        // Render → parse → render is a fixed point.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        for n in [0u64, 1, 1 << 20, (1 << 53) - 1] {
            let text = Json::from_u64(n).render();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":[1,2],"b":"s","c":1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "{]}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_multibyte_parse() {
        let escaped = "\"\\u0041x\"";
        assert_eq!(Json::parse(escaped).unwrap().as_str(), Some("Ax"));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }
}
