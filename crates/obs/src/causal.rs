//! Happens-before DAG stitched from a trace's causal events.
//!
//! A [`TraceDocument`](crate::TraceDocument) carries the flat causal event
//! list a run recorded (`cev` lines). [`HbDag`] validates that list into a
//! queryable happens-before DAG: every event indexed by sequence number,
//! `cause` edges pointing strictly backwards, Lamport clocks strictly
//! increasing and simulated time monotone along every edge. Consumers
//! (the critical-path profiler, the conformance checker) can then walk
//! chains without re-checking the invariants at every step.

use std::collections::HashMap;
use wsn_sim::CausalEvent;

/// Why a causal event list failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagError {
    /// Sequence number of the offending event (0 when structural).
    pub seq: u64,
    /// What invariant broke.
    pub message: String,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "causal event {}: {}", self.seq, self.message)
    }
}

impl std::error::Error for DagError {}

/// A validated happens-before DAG over a run's causal events.
#[derive(Debug, Clone)]
pub struct HbDag {
    events: Vec<CausalEvent>,
    /// Out-degree per event (indexed `seq - 1`): how many later events
    /// name it as their cause.
    effects: Vec<u32>,
}

impl HbDag {
    /// Validates `events` into a DAG.
    ///
    /// Invariants checked:
    /// * sequence numbers are dense and 1-based, in order;
    /// * every `cause` is 0 (root) or an earlier sequence number;
    /// * Lamport clocks strictly exceed the cause's along every edge;
    /// * simulated time never runs backwards along an edge.
    pub fn build(events: Vec<CausalEvent>) -> Result<Self, DagError> {
        let mut effects = vec![0u32; events.len()];
        for (i, ev) in events.iter().enumerate() {
            let expect = i as u64 + 1;
            if ev.seq != expect {
                return Err(DagError {
                    seq: ev.seq,
                    message: format!("sequence numbers not dense (expected {expect})"),
                });
            }
            if ev.cause >= ev.seq {
                return Err(DagError {
                    seq: ev.seq,
                    message: format!("cause {} does not precede the event", ev.cause),
                });
            }
            if ev.cause != 0 {
                let cause = &events[ev.cause as usize - 1];
                if ev.lamport <= cause.lamport {
                    return Err(DagError {
                        seq: ev.seq,
                        message: format!(
                            "lamport {} not greater than cause's {}",
                            ev.lamport, cause.lamport
                        ),
                    });
                }
                if ev.time < cause.time {
                    return Err(DagError {
                        seq: ev.seq,
                        message: format!("time {} precedes cause's {}", ev.time, cause.time),
                    });
                }
                effects[ev.cause as usize - 1] += 1;
            }
        }
        Ok(HbDag { events, effects })
    }

    /// All events, in sequence order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with sequence number `seq` (1-based).
    pub fn event(&self, seq: u64) -> Option<&CausalEvent> {
        if seq == 0 {
            return None;
        }
        self.events.get(seq as usize - 1)
    }

    /// Events with no recorded cause (chain roots).
    pub fn roots(&self) -> impl Iterator<Item = &CausalEvent> {
        self.events.iter().filter(|e| e.cause == 0)
    }

    /// Events no later event names as a cause (chain tips).
    pub fn leaves(&self) -> impl Iterator<Item = &CausalEvent> {
        self.events
            .iter()
            .zip(&self.effects)
            .filter(|&(_, &n)| n == 0)
            .map(|(e, _)| e)
    }

    /// The last (highest-sequence) event with the given label.
    pub fn last_labeled(&self, label: &str) -> Option<&CausalEvent> {
        self.events.iter().rev().find(|e| e.label == label)
    }

    /// The cause chain ending at `seq`, root first. `None` when `seq` is
    /// out of range.
    pub fn chain_to(&self, seq: u64) -> Option<Vec<&CausalEvent>> {
        let mut chain = Vec::new();
        let mut cur = self.event(seq)?;
        loop {
            chain.push(cur);
            if cur.cause == 0 {
                break;
            }
            // Validated at build time: cause < seq, so this indexes.
            cur = &self.events[cur.cause as usize - 1];
        }
        chain.reverse();
        Some(chain)
    }

    /// Per-label event counts — a quick shape summary for reports.
    pub fn label_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for ev in &self.events {
            *counts.entry(ev.label.as_str()).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::{CausalLog, SimTime};

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn chain_log() -> Vec<CausalEvent> {
        let mut log = CausalLog::new();
        let root = log.record_local(0, t(0), 0, "app.start");
        let s = log.record_send(0, t(1), root, "app.hop", 2);
        let d = log.record_deliver(1, t(3), s, "app.hop", 2);
        let m = log.record_local(1, t(3), d, "merge.level1");
        let s2 = log.record_send(1, t(4), m, "app.hop", 5);
        let d2 = log.record_deliver(2, t(9), s2, "app.hop", 5);
        log.record_local(2, t(9), d2, "app.exfil");
        log.into_events()
    }

    #[test]
    fn valid_chain_builds_and_walks() {
        let dag = HbDag::build(chain_log()).unwrap();
        assert_eq!(dag.len(), 7);
        assert_eq!(dag.roots().count(), 1);
        assert_eq!(dag.leaves().count(), 1);
        let exfil = dag.last_labeled("app.exfil").unwrap();
        let chain = dag.chain_to(exfil.seq).unwrap();
        assert_eq!(chain.len(), 7);
        assert_eq!(chain[0].label, "app.start");
        assert_eq!(chain[6].label, "app.exfil");
        // Time is monotone along the chain.
        for pair in chain.windows(2) {
            assert!(pair[1].time >= pair[0].time);
        }
    }

    #[test]
    fn forward_cause_is_rejected() {
        let mut events = chain_log();
        events[0].cause = 5; // root now points forward
        let err = HbDag::build(events).unwrap_err();
        assert_eq!(err.seq, 1);
        assert!(err.message.contains("precede"), "{}", err.message);
    }

    #[test]
    fn non_monotone_lamport_is_rejected() {
        let mut events = chain_log();
        events[3].lamport = events[2].lamport; // merge no longer after deliver
        let err = HbDag::build(events).unwrap_err();
        assert_eq!(err.seq, 4);
        assert!(err.message.contains("lamport"), "{}", err.message);
    }

    #[test]
    fn time_travel_is_rejected() {
        let mut events = chain_log();
        events[2].time = t(0); // delivery before its send
        let err = HbDag::build(events).unwrap_err();
        assert_eq!(err.seq, 3);
        assert!(err.message.contains("precedes"), "{}", err.message);
    }

    #[test]
    fn sparse_sequences_are_rejected() {
        let mut events = chain_log();
        events.remove(3);
        let err = HbDag::build(events).unwrap_err();
        assert!(err.message.contains("dense"), "{}", err.message);
    }

    #[test]
    fn label_histogram_summarizes_shape() {
        let dag = HbDag::build(chain_log()).unwrap();
        let hist = dag.label_histogram();
        assert!(hist.contains(&("app.hop".to_string(), 4)));
        assert!(hist.contains(&("merge.level1".to_string(), 1)));
    }
}
