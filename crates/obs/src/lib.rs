//! # wsn-obs — telemetry for the WSN reproduction stack
//!
//! Observability primitives shared by every layer of the reproduction:
//!
//! * [`Registry`] — named monotonic counters, gauges, and fixed-bucket
//!   histograms behind a cheaply cloneable handle. The disabled registry
//!   reduces every instrument call to a single `Option` check, so hot
//!   paths (per-message counters in the routing layer, per-event kernel
//!   metrics) can call it unconditionally.
//! * [`SpanRecorder`] / [`SpanNode`] — phase-scoped spans over simulated
//!   time. The runtime driver opens a span per mission phase
//!   (topology-emulation, binding, application) and per quadtree merge
//!   level; the closed spans form a tree whose durations decompose the
//!   total run, which is exactly what the paper's phase-latency analysis
//!   needs.
//! * [`TraceDocument`] — a JSONL serialization of a whole run: meta line,
//!   span trees, registry contents, per-node resource snapshots, and the
//!   kernel event stream. Round-trips losslessly through
//!   [`TraceDocument::to_jsonl`] / [`TraceDocument::from_jsonl`] with a
//!   built-in parser (no external JSON dependency).
//! * [`JsonlEventSink`] — a [`wsn_sim::TraceSink`] that streams kernel
//!   events into a JSONL buffer as they dispatch, keeping kernel memory
//!   bounded on long runs.
//! * [`render_span_forest`] / [`render_timeline`] /
//!   [`Registry::render_prometheus`] — human-readable sinks: an ASCII
//!   span tree with durations and shares, a per-node activity timeline,
//!   and a Prometheus-style text dump.
//! * [`HbDag`] / [`extract_critical_path`] — the causal layer: a
//!   validated happens-before DAG over a run's Lamport-stamped events,
//!   and the exact critical path through the quad-tree merge with
//!   per-hop flight/handle and per-merge-level attribution.
//! * [`render_trace_diff`] — per-counter/per-span deltas between two
//!   trace documents (what `netscope diff` prints).
//!
//! Everything here is deterministic: spans and traces from two runs with
//! the same seed compare equal, which the determinism suite asserts.

#![forbid(unsafe_code)]

pub mod causal;
pub mod critpath;
pub mod diff;
pub mod flight;
pub mod json;
pub mod registry;
pub mod shardview;
pub mod span;
pub mod timeline;
pub mod trace;

pub use causal::{DagError, HbDag};
pub use critpath::{extract_critical_path, CriticalPath, PathSegment, SegmentKind};
pub use diff::render_trace_diff;
pub use flight::{FlightDump, FlightDumpRec, FlightParseError, FlightShard, FLIGHT_SCHEMA_VERSION};
pub use json::{Json, JsonError};
pub use registry::{labeled, split_labels, FixedHistogram, Registry, TICK_BUCKETS};
pub use shardview::{shard_table, ShardRow, ShardTable};
pub use span::{render_span_forest, SpanNode, SpanRecorder};
pub use timeline::{render_timeline, TimelineConfig};
pub use trace::{
    JsonlEventSink, NodeSnapshot, TraceDocument, TraceMeta, TraceParseError, TRACE_SCHEMA_VERSION,
};
