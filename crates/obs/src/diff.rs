//! Structural diff between two trace documents.
//!
//! `netscope diff a.jsonl b.jsonl` renders this: per-counter, per-gauge,
//! per-span, and per-histogram deltas between two runs of the same
//! scenario. Entries present in only one trace are flagged rather than
//! silently dropped, and unchanged entries are suppressed so regressions
//! stand out.

use crate::span::SpanNode;
use crate::trace::TraceDocument;

fn flatten_spans(prefix: &str, spans: &[SpanNode], out: &mut Vec<(String, u64)>) {
    for span in spans {
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix}/{}", span.name)
        };
        out.push((path.clone(), span.duration_ticks()));
        flatten_spans(&path, &span.children, out);
    }
}

fn pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        return if new == 0.0 {
            "+0.0%".to_string()
        } else {
            "new".to_string()
        };
    }
    format!("{:+.1}%", (new - old) / old * 100.0)
}

/// One diffed section: rows of `(name, a-value, b-value)` rendered with
/// deltas, keeping only changed rows.
fn render_section<T: PartialEq + Copy + std::fmt::Display>(
    out: &mut String,
    title: &str,
    a: &[(String, T)],
    b: &[(String, T)],
    to_f64: impl Fn(T) -> f64,
    zero: T,
) {
    let mut names: Vec<&str> = a.iter().chain(b).map(|(k, _)| k.as_str()).collect();
    names.sort();
    names.dedup();
    let find =
        |rows: &[(String, T)], name: &str| rows.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
    let mut lines = Vec::new();
    for name in names {
        let va = find(a, name);
        let vb = find(b, name);
        if va == vb {
            continue;
        }
        let xa = va.unwrap_or(zero);
        let xb = vb.unwrap_or(zero);
        let note = match (va, vb) {
            (None, _) => " (only in b)".to_string(),
            (_, None) => " (only in a)".to_string(),
            _ => format!(" ({})", pct(to_f64(xa), to_f64(xb))),
        };
        lines.push(format!("  {name:<34} {xa:>12} -> {xb:<12}{note}"));
    }
    out.push_str(&format!("{title}:\n"));
    if lines.is_empty() {
        out.push_str("  (no changes)\n");
    } else {
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
}

/// Renders a human-readable diff of `a` vs `b`.
pub fn render_trace_diff(a: &TraceDocument, b: &TraceDocument) -> String {
    let mut out = String::new();
    match (&a.meta, &b.meta) {
        (Some(ma), Some(mb)) => {
            out.push_str(&format!(
                "meta: grid {}x{} -> {}x{}, seed {} -> {}, ticks {} -> {}, events {} -> {}\n",
                ma.grid,
                ma.grid,
                mb.grid,
                mb.grid,
                ma.seed,
                mb.seed,
                ma.total_ticks,
                mb.total_ticks,
                ma.events,
                mb.events
            ));
        }
        _ => out.push_str("meta: missing on one side\n"),
    }
    render_section(
        &mut out,
        "counters",
        &a.counters,
        &b.counters,
        |v| v as f64,
        0u64,
    );
    render_section(&mut out, "gauges", &a.gauges, &b.gauges, |v| v, 0.0f64);
    let mut sa = Vec::new();
    let mut sb = Vec::new();
    flatten_spans("", &a.spans, &mut sa);
    flatten_spans("", &b.spans, &mut sb);
    render_section(&mut out, "span ticks", &sa, &sb, |v| v as f64, 0u64);
    let ha: Vec<(String, u64)> = a
        .histograms
        .iter()
        .map(|(k, h)| (k.clone(), h.count()))
        .collect();
    let hb: Vec<(String, u64)> = b
        .histograms
        .iter()
        .map(|(k, h)| (k.clone(), h.count()))
        .collect();
    render_section(&mut out, "histogram counts", &ha, &hb, |v| v as f64, 0u64);
    out.push_str(&format!(
        "causal events: {} -> {}\n",
        a.causal.len(),
        b.causal.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceMeta;
    use wsn_sim::SimTime;

    fn doc(ticks: u64, msgs: u64, energy: f64) -> TraceDocument {
        let mut d = TraceDocument::new();
        d.meta = Some(TraceMeta {
            grid: 4,
            seed: 5,
            nodes: 48,
            total_ticks: ticks,
            events: 100,
            ..TraceMeta::default()
        });
        d.counters.push(("net.messages".to_string(), msgs));
        d.counters.push(("stable.counter".to_string(), 7));
        d.gauges.push(("energy.total".to_string(), energy));
        d.spans.push(SpanNode::leaf(
            "application",
            SimTime::from_ticks(5),
            SimTime::from_ticks(ticks),
            50,
        ));
        d
    }

    #[test]
    fn diff_is_stable_golden_output() {
        let a = doc(36, 20, 99.0);
        let b = doc(46, 26, 120.5);
        let text = render_trace_diff(&a, &b);
        let expected = "\
meta: grid 4x4 -> 4x4, seed 5 -> 5, ticks 36 -> 46, events 100 -> 100
counters:
  net.messages                                 20 -> 26           (+30.0%)
gauges:
  energy.total                                 99 -> 120.5        (+21.7%)
span ticks:
  application                                  31 -> 41           (+32.3%)
histogram counts:
  (no changes)
causal events: 0 -> 0
";
        assert_eq!(text, expected);
    }

    #[test]
    fn identical_documents_diff_to_no_changes() {
        let a = doc(36, 20, 99.0);
        let text = render_trace_diff(&a, &a.clone());
        assert!(text.contains("counters:\n  (no changes)"), "{text}");
        assert!(text.contains("gauges:\n  (no changes)"), "{text}");
        assert!(text.contains("span ticks:\n  (no changes)"), "{text}");
    }

    #[test]
    fn one_sided_entries_are_flagged() {
        let mut a = doc(36, 20, 99.0);
        let b = doc(36, 20, 99.0);
        a.counters.push(("only.a".to_string(), 3));
        let text = render_trace_diff(&a, &b);
        assert!(text.contains("only.a"), "{text}");
        assert!(text.contains("(only in a)"), "{text}");
    }
}
