//! Named counters, gauges, and fixed-bucket histograms.
//!
//! A [`Registry`] is a cheaply cloneable handle to a shared metric store
//! (nodes, the runtime driver, and the exporter all hold clones). The
//! disabled registry holds no store at all, so every instrument call is a
//! single `Option` discriminant check — hot paths can call it
//! unconditionally.
//!
//! Counters are monotonic `u64`s, gauges are last-write-wins `f64`s, and
//! histograms count observations into a fixed set of upper-bound buckets
//! (Prometheus-style `le` semantics: bucket `i` counts values `<=
//! uppers[i]`, with an implicit `+Inf` bucket at the end).
//!
//! ## Label dimensions
//!
//! Metric keys may carry label pairs after `|` separators:
//! `shard.events|shard=3` is the metric `shard.events` with label
//! `shard="3"` (build keys with [`labeled`]). Storage and JSONL traces
//! keep the raw key; [`Registry::render_prometheus`] splits it and emits
//! proper exposition-format series — metric and label names sanitized to
//! the Prometheus charset, label values escaped per the text format
//! (`\` → `\\`, `"` → `\"`, newline → `\n`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Builds a registry key carrying label dimensions: `name|k=v|k2=v2`.
/// Keys compare textually, so series of one metric sort together.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut key = String::from(name);
    for (k, v) in labels {
        key.push('|');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

/// Splits a registry key into its metric name and label pairs.
pub fn split_labels(key: &str) -> (&str, Vec<(&str, &str)>) {
    let mut parts = key.split('|');
    let base = parts.next().unwrap_or(key);
    let labels = parts
        .map(|p| p.split_once('=').unwrap_or((p, "")))
        .collect();
    (base, labels)
}

/// Default histogram buckets for tick-valued observations: powers of two
/// up to 4096 ticks.
pub const TICK_BUCKETS: [f64; 13] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// A histogram with fixed upper-bound buckets plus count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    uppers: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl FixedHistogram {
    /// Creates an empty histogram with the given strictly increasing
    /// upper bounds (an `+Inf` bucket is added implicitly).
    pub fn new(uppers: &[f64]) -> Self {
        debug_assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        FixedHistogram {
            uppers: uppers.to_vec(),
            counts: vec![0; uppers.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Creates a histogram with [`TICK_BUCKETS`].
    pub fn ticks() -> Self {
        FixedHistogram::new(&TICK_BUCKETS)
    }

    /// Rebuilds a histogram from exported parts (used by the JSONL parser).
    pub fn from_parts(
        uppers: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        debug_assert_eq!(counts.len(), uppers.len() + 1);
        FixedHistogram {
            uppers,
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .uppers
            .iter()
            .position(|&u| value <= u)
            .unwrap_or(self.uppers.len());
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket upper bounds (excluding the implicit `+Inf`).
    pub fn uppers(&self) -> &[f64] {
        &self.uppers
    }

    /// Per-bucket counts; the final entry is the `+Inf` bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile by linear interpolation inside the bucket
    /// that crosses rank `q * count` (`q` in `[0, 1]`, clamped; a NaN `q`
    /// reads as 0). An empty histogram reports every quantile as 0 —
    /// finite, like [`mean`](Self::mean)/[`min`](Self::min)/
    /// [`max`](Self::max) — so report renderers never print NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q };
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= rank && c > 0 {
                let lower = if i == 0 { self.min } else { self.uppers[i - 1] };
                let upper = if i < self.uppers.len() {
                    self.uppers[i]
                } else {
                    self.max
                };
                let frac = (rank - seen) as f64 / c as f64;
                return (lower + (upper - lower) * frac).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, FixedHistogram>,
}

/// Shared handle to a metric store; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Registry {
    /// A registry that records nothing; every call is a no-op.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// A live registry; clones share the same store.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// Whether instrument calls record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the named monotonic counter by 1.
    #[inline]
    pub fn incr(&self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Increments the named monotonic counter by `by`.
    #[inline]
    pub fn incr_by(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if let Some(v) = inner.counters.get_mut(name) {
                *v += by;
            } else {
                inner.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if let Some(v) = inner.gauges.get_mut(name) {
                *v = value;
            } else {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Adds to the named gauge (starting from 0).
    #[inline]
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if let Some(v) = inner.gauges.get_mut(name) {
                *v += delta;
            } else {
                inner.gauges.insert(name.to_string(), delta);
            }
        }
    }

    /// Records an observation into the named histogram, creating it with
    /// [`TICK_BUCKETS`] on first use.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &TICK_BUCKETS);
    }

    /// Records an observation, creating the histogram with the given
    /// bucket bounds on first use (later calls ignore `buckets`).
    #[inline]
    pub fn observe_with(&self, name: &str, value: f64, buckets: &[f64]) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if let Some(h) = inner.histograms.get_mut(name) {
                h.record(value);
            } else {
                let mut h = FixedHistogram::new(buckets);
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of a counter (0 if never incremented or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().gauges.get(name).copied())
    }

    /// Installs a prebuilt histogram under `name` (merging by replace).
    /// Used by recorders that aggregate outside the registry — e.g. the
    /// per-shard window histograms the sharded kernel fills in plain
    /// arrays — and publish the finished snapshot afterwards.
    pub fn install_histogram(&self, name: &str, histogram: FixedHistogram) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .histograms
                .insert(name.to_string(), histogram);
        }
    }

    /// Snapshot of a histogram.
    pub fn histogram(&self, name: &str) -> Option<FixedHistogram> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().histograms.get(name).cloned())
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map(|i| {
                i.borrow()
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.inner
            .as_ref()
            .map(|i| {
                i.borrow()
                    .gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, FixedHistogram)> {
        self.inner
            .as_ref()
            .map(|i| {
                i.borrow()
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Metric names are sanitized to the exposition charset, label-keyed
    /// series (see [`labeled`]) get proper `{k="v"}` label sets with
    /// escaped values, and a `# TYPE` line is emitted once per metric
    /// name even when many label series share it.
    pub fn render_prometheus(&self) -> String {
        fn type_line(out: &mut String, typed: &mut Option<String>, name: &str, kind: &str) {
            if typed.as_deref() != Some(name) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                *typed = Some(name.to_string());
            }
        }
        let mut out = String::new();
        let mut typed: Option<String> = None;
        for (key, value) in self.counters() {
            let (name, labels) = split_series(&key);
            type_line(&mut out, &mut typed, &name, "counter");
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
        typed = None;
        for (key, value) in self.gauges() {
            let (name, labels) = split_series(&key);
            type_line(&mut out, &mut typed, &name, "gauge");
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
        typed = None;
        for (key, h) in self.histograms() {
            let (name, labels) = split_series(&key);
            type_line(&mut out, &mut typed, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.bucket_counts().iter().enumerate() {
                cumulative += c;
                let le = if i < h.uppers().len() {
                    format!("{}", h.uppers()[i])
                } else {
                    "+Inf".to_string()
                };
                let le_labels = merge_label(&labels, &format!("le=\"{le}\""));
                out.push_str(&format!("{name}_bucket{le_labels} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
        }
        out
    }
}

/// Splits a raw registry key into a sanitized metric name and a rendered
/// label block (`{k="v",...}`, or empty when the key carries no labels).
fn split_series(key: &str) -> (String, String) {
    let (base, labels) = split_labels(key);
    let name = sanitize(base);
    if labels.is_empty() {
        return (name, String::new());
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect();
    (name, format!("{{{}}}", rendered.join(",")))
}

/// Inserts `extra` (an already-rendered `k="v"` pair) into a rendered
/// label block, opening one if the series had no labels.
fn merge_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed have escape sequences; every
/// other character passes through (values are free-form UTF-8).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Sanitizes a metric or label name to `[a-zA-Z0-9_]` (the exposition
/// charset minus the colon, which this codebase never emits); a leading
/// digit gets an underscore prefix so the name stays lexable.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        r.incr("a");
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        assert!(!r.is_enabled());
        assert_eq!(r.counter("a"), 0);
        assert_eq!(r.gauge("g"), None);
        assert!(r.histogram("h").is_none());
        assert!(r.counters().is_empty());
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn counters_are_monotonic_and_shared_across_clones() {
        let r = Registry::enabled();
        let clone = r.clone();
        r.incr("msgs");
        clone.incr_by("msgs", 4);
        assert_eq!(r.counter("msgs"), 5);
        assert_eq!(clone.counter("msgs"), 5);
        assert_eq!(r.counters(), vec![("msgs".to_string(), 5)]);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::enabled();
        r.gauge_set("energy", 2.5);
        r.gauge_add("energy", 1.5);
        r.gauge_add("fresh", 1.0);
        assert_eq!(r.gauge("energy"), Some(4.0));
        assert_eq!(r.gauge("fresh"), Some(1.0));
    }

    #[test]
    fn histogram_bucket_semantics() {
        let mut h = FixedHistogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 10.0, 11.0] {
            h.record(v);
        }
        // le=1: {0.5, 1.0}; le=10: {3, 10}; +Inf: {11}.
        assert_eq!(h.bucket_counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 25.5);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 11.0);
        assert!((h.mean() - 5.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = FixedHistogram::ticks();
        for v in 0..1000 {
            h.record(f64::from(v % 97));
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(q50 >= h.min() && q99 <= h.max());
    }

    #[test]
    fn empty_histogram_percentiles_are_finite_zeros() {
        let h = FixedHistogram::ticks();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        // The whole summary row a report renderer would print is finite.
        assert!(h.quantile(0.5).is_finite());
    }

    #[test]
    fn quantile_tolerates_out_of_range_and_nan_q() {
        let mut h = FixedHistogram::new(&[10.0]);
        h.record(4.0);
        h.record(6.0);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        let q = h.quantile(f64::NAN);
        assert!(q.is_finite());
        assert_eq!(q, h.quantile(0.0));
    }

    #[test]
    fn empty_registry_reads_report_zeros_not_panics() {
        let r = Registry::enabled();
        assert_eq!(r.counter("never.touched"), 0);
        assert_eq!(r.gauge("never.touched"), None);
        assert!(r.histogram("never.touched").is_none());
        assert!(r.counters().is_empty());
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn prometheus_dump_contains_all_kinds() {
        let r = Registry::enabled();
        r.incr("app.messages");
        r.gauge_set("energy.total", 1.25);
        r.observe_with("latency", 3.0, &[1.0, 4.0]);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE app_messages counter"));
        assert!(text.contains("app_messages 1"));
        assert!(text.contains("# TYPE energy_total gauge"));
        assert!(text.contains("energy_total 1.25"));
        assert!(text.contains("latency_bucket{le=\"4\"} 1"));
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_count 1"));
    }

    #[test]
    fn labeled_round_trips_through_split_labels() {
        let key = labeled("shard.events", &[("shard", "3"), ("lane", "a")]);
        assert_eq!(key, "shard.events|shard=3|lane=a");
        let (base, labels) = split_labels(&key);
        assert_eq!(base, "shard.events");
        assert_eq!(labels, vec![("shard", "3"), ("lane", "a")]);
        let (bare, none) = split_labels("plain.metric");
        assert_eq!(bare, "plain.metric");
        assert!(none.is_empty());
    }

    #[test]
    fn prometheus_renders_label_series_under_one_type_line() {
        let r = Registry::enabled();
        r.incr_by(&labeled("shard.events", &[("shard", "0")]), 7);
        r.incr_by(&labeled("shard.events", &[("shard", "1")]), 9);
        r.incr_by(&labeled("shard.events", &[("shard", "global")]), 2);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE shard_events counter").count(), 1);
        assert!(text.contains("shard_events{shard=\"0\"} 7\n"));
        assert!(text.contains("shard_events{shard=\"1\"} 9\n"));
        assert!(text.contains("shard_events{shard=\"global\"} 2\n"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = Registry::enabled();
        r.incr(&labeled("paths", &[("dir", "a\\b\"c\nd")]));
        let text = r.render_prometheus();
        // Exposition format: \ -> \\, " -> \", newline -> the two
        // characters `\n`. Locked byte-for-byte.
        assert!(
            text.contains("paths{dir=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "escaped series missing from:\n{text}"
        );
        assert!(!text.contains('\u{0}'));
        // No raw newline may survive inside a label value: every line
        // must still be a well-formed `name{...} value` or comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn prometheus_sanitizes_metric_and_label_names() {
        let r = Registry::enabled();
        r.gauge_set(&labeled("queue-depth.max", &[("shard-id", "2")]), 5.0);
        r.incr("0weird");
        let text = r.render_prometheus();
        assert!(text.contains("queue_depth_max{shard_id=\"2\"} 5\n"));
        // A leading digit is not a valid metric-name start.
        assert!(text.contains("_0weird 1\n"));
    }

    #[test]
    fn prometheus_merges_le_into_histogram_label_sets() {
        let r = Registry::enabled();
        let key = labeled("shard.window", &[("shard", "1")]);
        r.observe_with(&key, 3.0, &[1.0, 4.0]);
        r.observe_with(&key, 9.0, &[1.0, 4.0]);
        let text = r.render_prometheus();
        assert!(text.contains("shard_window_bucket{shard=\"1\",le=\"4\"} 1\n"));
        assert!(text.contains("shard_window_bucket{shard=\"1\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("shard_window_sum{shard=\"1\"} 12\n"));
        assert!(text.contains("shard_window_count{shard=\"1\"} 2\n"));
    }

    #[test]
    fn install_histogram_publishes_prebuilt_snapshot() {
        let r = Registry::enabled();
        let h = FixedHistogram::from_parts(vec![1.0, 2.0], vec![3, 4, 5], 12, 30.0, 0.5, 9.0);
        r.install_histogram(&labeled("shard.win", &[("shard", "0")]), h.clone());
        assert_eq!(r.histogram("shard.win|shard=0"), Some(h));
        let text = r.render_prometheus();
        assert!(text.contains("shard_win_bucket{shard=\"0\",le=\"2\"} 7\n"));
        assert!(text.contains("shard_win_count{shard=\"0\"} 12\n"));
    }
}
