//! Critical-path extraction over the happens-before DAG.
//!
//! The runtime's causal log chains every exfiltrated result back through
//! the hop sends and merge completions that produced it (see
//! `wsn_sim::causal`). The *critical path* is that cause chain: at each
//! quad-tree merge the runtime chained the latest-arriving (hence
//! critical) input, so walking `cause` links from the final exfiltration
//! to its root traverses exactly the run's latency-determining events.
//!
//! Each consecutive chain pair spans the interval `[prev.time,
//! cur.time]`, so the extracted segments **telescope**: their durations
//! sum to the chain's end-to-end duration with no gaps or overlaps.
//! Against a seeded ideal-link run, that sum equals the measured
//! application span duration *exactly* — the invariant the conformance
//! checker and `netscope critical-path` both assert.
//!
//! Hop segments are split at the recorded delivery instant into *flight*
//! (radio time, paid per the cost model's ticks-per-unit) and *handle*
//! (the receiving node holding the datum before acting), which is the
//! per-hop, per-merge-level attribution §4's latency analysis prices.

use crate::causal::HbDag;
use wsn_sim::{CausalEvent, CausalKind, SimTime};

/// What a critical-path segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A message in the air (send instant to delivery instant).
    Flight,
    /// A delivered datum waiting for the receiver to act on it.
    Handle,
    /// Node-local progress (compute, self-delivery, milestone to milestone).
    Local,
}

impl SegmentKind {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SegmentKind::Flight => "flight",
            SegmentKind::Handle => "handle",
            SegmentKind::Local => "local",
        }
    }
}

/// One interval of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (the chain event that closes it).
    pub end: SimTime,
    /// Node the segment's time is attributed to (the receiving/acting node).
    pub node: usize,
    /// Flight, handle, or local.
    pub kind: SegmentKind,
    /// Label of the chain event that closes the segment.
    pub label: String,
    /// The next milestone this segment feeds (`merge.levelK` or
    /// `app.exfil`) — the per-level attribution bucket.
    pub stage: String,
}

impl PathSegment {
    /// Segment duration in ticks.
    pub fn ticks(&self) -> u64 {
        self.end - self.start
    }
}

/// The extracted critical path: a gap-free partition of the interval from
/// the chain's root to the final exfiltration.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Segments in chain order.
    pub segments: Vec<PathSegment>,
    /// Chain root instant (the paced application start).
    pub start: SimTime,
    /// Final exfiltration instant.
    pub end: SimTime,
}

impl CriticalPath {
    /// End-to-end duration in ticks.
    pub fn total_ticks(&self) -> u64 {
        self.end - self.start
    }

    /// Sum of all segment durations. Telescoping makes this equal
    /// [`CriticalPath::total_ticks`] by construction; callers compare the
    /// *measured* application span against either.
    pub fn segment_sum(&self) -> u64 {
        self.segments.iter().map(PathSegment::ticks).sum()
    }

    /// Number of radio hops on the path (flight segments).
    pub fn hop_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Flight)
            .count()
    }

    /// Ticks per stage (merge level / exfiltration), in chain order.
    pub fn per_stage(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for seg in &self.segments {
            match out.last_mut() {
                Some((stage, ticks)) if *stage == seg.stage => *ticks += seg.ticks(),
                _ => out.push((seg.stage.clone(), seg.ticks())),
            }
        }
        out
    }

    /// ASCII waterfall: one row per segment, bars proportional to time,
    /// followed by the per-stage attribution and the telescoped total.
    pub fn render_waterfall(&self, width: usize) -> String {
        let width = width.max(8);
        let span = self.total_ticks().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} .. {}  ({} ticks, {} hops, {} segments)\n",
            self.start,
            self.end,
            self.total_ticks(),
            self.hop_count(),
            self.segments.len()
        ));
        for seg in &self.segments {
            let off = ((seg.start - self.start) as u128 * width as u128 / span as u128) as usize;
            let mut len = (seg.ticks() as u128 * width as u128 / span as u128) as usize;
            if seg.ticks() > 0 {
                len = len.max(1);
            }
            let len = len.min(width.saturating_sub(off));
            let mut bar = String::new();
            bar.push_str(&".".repeat(off));
            bar.push_str(&"#".repeat(len));
            bar.push_str(&".".repeat(width - off - len));
            out.push_str(&format!(
                "  {:>5}..{:<5} {:>4}t {:<6} n{:<4} |{bar}| {} -> {}\n",
                seg.start.ticks(),
                seg.end.ticks(),
                seg.ticks(),
                seg.kind.name(),
                seg.node,
                seg.label,
                seg.stage,
            ));
        }
        out.push_str("per stage:\n");
        for (stage, ticks) in self.per_stage() {
            out.push_str(&format!("  {stage:<16} {ticks:>5} ticks\n"));
        }
        out.push_str(&format!(
            "total {} ticks (segments sum to {})\n",
            self.total_ticks(),
            self.segment_sum()
        ));
        out
    }
}

/// Extracts the critical path from a run's causal events: builds the
/// validated [`HbDag`], walks the cause chain back from the *last*
/// `app.exfil` event, and splits hop intervals at their recorded delivery
/// instants.
pub fn extract_critical_path(events: &[CausalEvent]) -> Result<CriticalPath, String> {
    let dag = HbDag::build(events.to_vec()).map_err(|e| e.to_string())?;
    let exfil = dag
        .last_labeled("app.exfil")
        .ok_or("no app.exfil event in the causal log (did the application exfiltrate?)")?;
    let chain = dag.chain_to(exfil.seq).expect("exfil event is in the DAG");
    // Stage of each chain position: the next milestone at or after it.
    let mut stages = vec![String::new(); chain.len()];
    let mut next = String::from("app.exfil");
    for (i, ev) in chain.iter().enumerate().rev() {
        if ev.label.starts_with("merge.level") || ev.label == "app.exfil" {
            next = ev.label.clone();
        }
        stages[i] = next.clone();
    }
    let mut segments = Vec::new();
    for (i, pair) in chain.windows(2).enumerate() {
        let (prev, cur) = (pair[0], pair[1]);
        let stage = stages[i + 1].clone();
        if prev.kind == CausalKind::Send {
            if cur.kind == CausalKind::Deliver {
                // The chain event *is* the delivery: pure flight.
                segments.push(PathSegment {
                    start: prev.time,
                    end: cur.time,
                    node: cur.node,
                    kind: SegmentKind::Flight,
                    label: cur.label.clone(),
                    stage,
                });
                continue;
            }
            // Find the delivery pairing this send on the acting node.
            let deliver = dag.events().iter().find(|d| {
                d.kind == CausalKind::Deliver
                    && d.cause == prev.seq
                    && d.node == cur.node
                    && d.time >= prev.time
                    && d.time <= cur.time
            });
            match deliver {
                Some(d) => {
                    segments.push(PathSegment {
                        start: prev.time,
                        end: d.time,
                        node: cur.node,
                        kind: SegmentKind::Flight,
                        label: d.label.clone(),
                        stage: stage.clone(),
                    });
                    segments.push(PathSegment {
                        start: d.time,
                        end: cur.time,
                        node: cur.node,
                        kind: SegmentKind::Handle,
                        label: cur.label.clone(),
                        stage,
                    });
                }
                // Un-mediated sends (local self-messages) record no
                // delivery; the whole interval is node-local.
                None if cur.node == prev.node => segments.push(PathSegment {
                    start: prev.time,
                    end: cur.time,
                    node: cur.node,
                    kind: SegmentKind::Local,
                    label: cur.label.clone(),
                    stage,
                }),
                None => segments.push(PathSegment {
                    start: prev.time,
                    end: cur.time,
                    node: cur.node,
                    kind: SegmentKind::Flight,
                    label: cur.label.clone(),
                    stage,
                }),
            }
        } else {
            segments.push(PathSegment {
                start: prev.time,
                end: cur.time,
                node: cur.node,
                kind: SegmentKind::Local,
                label: cur.label.clone(),
                stage,
            });
        }
    }
    Ok(CriticalPath {
        segments,
        start: chain.first().expect("non-empty chain").time,
        end: exfil.time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::CausalLog;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    /// A two-level quad-tree chain the way the runtime stamps it: merges
    /// chain to the critical input's *send*; deliveries are side records.
    fn runtime_shaped_log() -> Vec<CausalEvent> {
        let mut log = CausalLog::new();
        let root = log.record_local(0, t(5), 0, "app.start");
        let s1 = log.record_send(0, t(5), root, "app.hop", 2);
        log.record_deliver(1, t(7), s1, "app.hop", 2);
        let m1 = log.record_local(1, t(10), s1.seq, "merge.level1");
        let s2 = log.record_send(1, t(10), m1, "app.hop", 5);
        log.record_deliver(2, t(15), s2, "app.hop", 5);
        let s3 = log.record_send(2, t(15), s2.seq, "app.hop", 5);
        log.record_deliver(3, t(20), s3, "app.hop", 5);
        let m2 = log.record_local(3, t(20), s3.seq, "merge.level2");
        log.record_local(3, t(20), m2, "app.exfil");
        log.into_events()
    }

    #[test]
    fn segments_telescope_to_the_chain_duration() {
        let path = extract_critical_path(&runtime_shaped_log()).unwrap();
        assert_eq!(path.start, t(5));
        assert_eq!(path.end, t(20));
        assert_eq!(path.total_ticks(), 15);
        assert_eq!(path.segment_sum(), 15);
        // Gap-free partition: each segment starts where the last ended.
        let mut cursor = path.start;
        for seg in &path.segments {
            assert_eq!(seg.start, cursor);
            cursor = seg.end;
        }
        assert_eq!(cursor, path.end);
    }

    #[test]
    fn hop_intervals_split_into_flight_and_handle() {
        let path = extract_critical_path(&runtime_shaped_log()).unwrap();
        // Segment 0 is the zero-width root->send local; then the first
        // hop: send t5, delivered t7, merged t10.
        assert_eq!(path.segments[0].kind, SegmentKind::Local);
        assert_eq!(path.segments[0].ticks(), 0);
        assert_eq!(path.segments[1].kind, SegmentKind::Flight);
        assert_eq!(path.segments[1].ticks(), 2);
        assert_eq!(path.segments[2].kind, SegmentKind::Handle);
        assert_eq!(path.segments[2].ticks(), 3);
        // Relay hop (send chained to send): deliver at t15 == relay time,
        // so the handle collapses to zero width but stays on the path.
        assert_eq!(path.hop_count(), 3);
    }

    #[test]
    fn stages_attribute_ticks_to_merge_levels() {
        let path = extract_critical_path(&runtime_shaped_log()).unwrap();
        let stages = path.per_stage();
        assert_eq!(
            stages,
            vec![
                ("merge.level1".to_string(), 5),
                ("merge.level2".to_string(), 10),
                ("app.exfil".to_string(), 0),
            ]
        );
        let total: u64 = stages.iter().map(|&(_, ticks)| ticks).sum();
        assert_eq!(total, path.total_ticks());
    }

    #[test]
    fn missing_exfil_is_a_clear_error() {
        let mut log = CausalLog::new();
        log.record_local(0, t(0), 0, "app.start");
        let err = extract_critical_path(log.events()).unwrap_err();
        assert!(err.contains("app.exfil"), "{err}");
    }

    #[test]
    fn self_sends_without_deliveries_become_local_segments() {
        let mut log = CausalLog::new();
        let root = log.record_local(0, t(0), 0, "app.start");
        // A self-send bypasses the medium: no deliver record exists.
        let s = log.record_send(0, t(1), root, "app.self", 5);
        let m = log.record_local(0, t(1), s.seq, "merge.level1");
        log.record_local(0, t(1), m, "app.exfil");
        let path = extract_critical_path(log.events()).unwrap();
        assert_eq!(path.segments[1].kind, SegmentKind::Local);
        assert_eq!(path.segment_sum(), path.total_ticks());
    }

    #[test]
    fn waterfall_renders_every_segment_and_the_totals() {
        let path = extract_critical_path(&runtime_shaped_log()).unwrap();
        let text = path.render_waterfall(32);
        assert!(text.contains("critical path: t=5 .. t=20"));
        assert!(text.contains("flight"));
        assert!(text.contains("handle"));
        assert!(text.contains("merge.level2"));
        assert!(text.contains("total 15 ticks (segments sum to 15)"));
        // One row per segment plus header, per-stage block, and total.
        let rows = text.lines().count();
        assert_eq!(rows, 1 + path.segments.len() + 1 + 3 + 1);
    }
}
